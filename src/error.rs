//! The unified error type of the `qss` pipeline.

use std::fmt;

/// The pipeline stage an error originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Lexing/parsing FlowC source text.
    Parse,
    /// Building and linking the system Petri net.
    Link,
    /// The quasi-static schedule search.
    Schedule,
    /// Sequential-task code generation.
    Generate,
    /// Executing the system on a workload.
    Simulate,
    /// Interpreting a pipeline configuration.
    Config,
    /// Reading or writing files (CLI only).
    Io,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Parse => "parse",
            Stage::Link => "link",
            Stage::Schedule => "schedule",
            Stage::Generate => "generate",
            Stage::Simulate => "simulate",
            Stage::Config => "config",
            Stage::Io => "io",
        })
    }
}

/// One error type for the whole flow: every stage's error converts into
/// `QssError` via `From`, so a full pipeline run needs a single `?`-able
/// signature.
///
/// Source locations survive the wrapping: FlowC lex/parse errors carry
/// their 1-based source line, and [`QssError::stage`] names the pipeline
/// stage, which [`fmt::Display`] prefixes to every message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QssError {
    /// A front-end error (lexing, parsing, linking).
    Flowc(qss_flowc::FlowCError),
    /// A Petri-net kernel error.
    Net(qss_petri::NetError),
    /// A scheduling error.
    Schedule(qss_core::ScheduleError),
    /// A cooperative search budget (step cap, deadline or cancellation —
    /// see [`qss_core::SearchBudget`]) stopped the schedule search.
    /// Split out from [`QssError::Schedule`] so callers can map it to a
    /// retryable/timeout condition without inspecting the inner error.
    BudgetExhausted(qss_core::ScheduleError),
    /// A code-generation error.
    Codegen(qss_codegen::CodegenError),
    /// A simulation error.
    Sim(qss_sim::SimError),
    /// An invalid pipeline configuration.
    Config(String),
    /// A file-system error, with the offending path.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error message.
        message: String,
    },
}

impl QssError {
    /// The pipeline stage the error originated from.
    pub fn stage(&self) -> Stage {
        match self {
            QssError::Flowc(
                qss_flowc::FlowCError::Lex { .. } | qss_flowc::FlowCError::Parse { .. },
            ) => Stage::Parse,
            QssError::Flowc(_) | QssError::Net(_) => Stage::Link,
            QssError::Schedule(_) | QssError::BudgetExhausted(_) => Stage::Schedule,
            QssError::Codegen(_) => Stage::Generate,
            QssError::Sim(_) => Stage::Simulate,
            QssError::Config(_) => Stage::Config,
            QssError::Io { .. } => Stage::Io,
        }
    }

    /// The source line the error points at, if the stage tracks one
    /// (FlowC lex/parse errors do).
    pub fn line(&self) -> Option<usize> {
        match self {
            QssError::Flowc(
                qss_flowc::FlowCError::Lex { line, .. } | qss_flowc::FlowCError::Parse { line, .. },
            ) => Some(*line),
            _ => None,
        }
    }
}

impl fmt::Display for QssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} stage: ", self.stage())?;
        match self {
            QssError::Flowc(e) => e.fmt(f),
            QssError::Net(e) => e.fmt(f),
            QssError::Schedule(e) | QssError::BudgetExhausted(e) => e.fmt(f),
            QssError::Codegen(e) => e.fmt(f),
            QssError::Sim(e) => e.fmt(f),
            QssError::Config(msg) => f.write_str(msg),
            QssError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for QssError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QssError::Flowc(e) => Some(e),
            QssError::Net(e) => Some(e),
            QssError::Schedule(e) | QssError::BudgetExhausted(e) => Some(e),
            QssError::Codegen(e) => Some(e),
            QssError::Sim(e) => Some(e),
            QssError::Config(_) | QssError::Io { .. } => None,
        }
    }
}

impl From<qss_flowc::FlowCError> for QssError {
    fn from(e: qss_flowc::FlowCError) -> Self {
        QssError::Flowc(e)
    }
}

impl From<qss_petri::NetError> for QssError {
    fn from(e: qss_petri::NetError) -> Self {
        QssError::Net(e)
    }
}

impl From<qss_core::ScheduleError> for QssError {
    fn from(e: qss_core::ScheduleError) -> Self {
        if matches!(e, qss_core::ScheduleError::BudgetExhausted { .. }) {
            QssError::BudgetExhausted(e)
        } else {
            QssError::Schedule(e)
        }
    }
}

impl From<qss_codegen::CodegenError> for QssError {
    fn from(e: qss_codegen::CodegenError) -> Self {
        QssError::Codegen(e)
    }
}

impl From<qss_sim::SimError> for QssError {
    fn from(e: qss_sim::SimError) -> Self {
        QssError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_and_lines_are_reported() {
        let e: QssError = qss_flowc::FlowCError::Parse {
            line: 7,
            message: "expected `)`".into(),
        }
        .into();
        assert_eq!(e.stage(), Stage::Parse);
        assert_eq!(e.line(), Some(7));
        assert!(e.to_string().starts_with("parse stage:"));
        assert!(e.to_string().contains("line 7"));

        let e: QssError = qss_flowc::FlowCError::Semantic("dangling port".into()).into();
        assert_eq!(e.stage(), Stage::Link);
        assert_eq!(e.line(), None);

        let e: QssError = qss_core::ScheduleError::NoTInvariants.into();
        assert_eq!(e.stage(), Stage::Schedule);
        assert!(e.to_string().starts_with("schedule stage:"));
    }

    #[test]
    fn budget_exhaustion_gets_its_own_variant() {
        let inner = qss_core::ScheduleError::BudgetExhausted {
            source: qss_petri::TransitionId::new(0),
            stop: qss_core::BudgetStop::Deadline,
            steps: 512,
        };
        let e: QssError = inner.into();
        assert!(matches!(e, QssError::BudgetExhausted(_)));
        assert_eq!(e.stage(), Stage::Schedule);
        assert!(e.to_string().contains("deadline exceeded"));
    }
}
