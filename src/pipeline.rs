//! The staged, typed pipeline API of the `qss` facade.
//!
//! The paper's contribution is a *flow* — FlowC processes → linked Petri
//! net → quasi-static schedules → one sequential task → execution
//! comparison — and this module is that flow as a typed state machine:
//!
//! ```text
//! Pipeline ──link()──▶ LinkedArtifact ──schedule()──▶ ScheduleArtifact
//!     ──generate()──▶ TaskArtifact ──simulate(events)──▶ SimArtifact
//! ```
//!
//! Every stage returns an owned artifact struct that
//!
//! * carries everything later stages need (no re-wiring by the caller),
//! * serializes to JSON ([`to_json`](LinkedArtifact::to_json) /
//!   [`to_json_pretty`](LinkedArtifact::to_json_pretty)) so runs can be
//!   archived, diffed and resumed by services,
//! * renders its domain-specific views (Graphviz DOT for nets and
//!   schedules, C for generated tasks).
//!
//! One [`PipelineConfig`] value parameterizes every stage; the
//! [`ScheduleArtifact`] keeps the per-net [`SearchContext`] so follow-up
//! scheduling requests against the same net skip the structural analyses.

use crate::diagnostics::AnalysisReport;
use crate::error::QssError;
use qss_codegen::{generate_task, CodeCostModel, GeneratedTask};
use qss_core::{
    schedule_system_parallel_profiled, schedule_system_profiled, BudgetConfig, SearchBudget,
    SearchContext, SearchProfile, SystemSchedules,
};
use qss_flowc::{parse_system, LinkedSystem, SystemSpec};
use qss_petri::{NetAnalysis, StructuralLimits};
use qss_sim::{
    run_multitask, run_singletask, CycleCostModel, EnvEvent, MultiTaskConfig, SimReport,
    SingleTaskConfig,
};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::sync::Arc;

pub use qss_codegen::TaskOptions;
pub use qss_core::ScheduleOptions;

/// Cost-model profile: the compiler-optimisation level of the paper's
/// measurements (`pfc`, `pfc-O`, `pfc-O2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostProfile {
    /// Unoptimised compilation (`pfc`).
    Unoptimized,
    /// `-O` compilation (`pfc-O`).
    Optimized,
    /// `-O2` compilation (`pfc-O2`).
    Optimized2,
}

impl CostProfile {
    /// The cycle cost model of this profile.
    pub fn cycle_model(self) -> CycleCostModel {
        match self {
            CostProfile::Unoptimized => CycleCostModel::unoptimized(),
            CostProfile::Optimized => CycleCostModel::optimized(),
            CostProfile::Optimized2 => CycleCostModel::optimized2(),
        }
    }

    /// The code-size cost model of this profile.
    pub fn code_model(self) -> CodeCostModel {
        match self {
            CostProfile::Unoptimized => CodeCostModel::unoptimized(),
            CostProfile::Optimized => CodeCostModel::optimized(),
            CostProfile::Optimized2 => CodeCostModel::optimized2(),
        }
    }

    /// The paper's name for the profile.
    pub fn name(self) -> &'static str {
        self.cycle_model().name
    }

    /// Parses a profile name (`pfc`, `pfc-O`, `pfc-O2`).
    ///
    /// # Errors
    /// Returns [`QssError::Config`] for unknown names.
    pub fn from_name(name: &str) -> Result<Self, QssError> {
        match name {
            "pfc" => Ok(CostProfile::Unoptimized),
            "pfc-O" => Ok(CostProfile::Optimized),
            "pfc-O2" => Ok(CostProfile::Optimized2),
            other => Err(QssError::Config(format!(
                "unknown cost profile `{other}` (expected `pfc`, `pfc-O` or `pfc-O2`)"
            ))),
        }
    }
}

/// Configuration of a whole pipeline run: one value subsumes the
/// scheduler's [`ScheduleOptions`], the code generator's [`TaskOptions`],
/// the executors' configs, the cost-model profile and the cooperative
/// schedule-search [`BudgetConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Schedule-search options.
    pub schedule: ScheduleOptions,
    /// Task-generation options.
    pub task: TaskOptions,
    /// Cost-model profile for simulation and code-size estimation.
    pub profile: CostProfile,
    /// Channel buffer capacity of the multi-task baseline executor
    /// (the x axis of the paper's Figure 20).
    pub multitask_buffer_size: u32,
    /// Safety bound on executor steps (both executors).
    pub max_sim_steps: u64,
    /// Fan the per-source schedule searches out across threads
    /// (identical results, one thread per uncontrollable input).
    pub parallel_schedule: bool,
    /// Cooperative budget for the schedule search (step cap and/or
    /// wall-clock deadline; empty = unlimited, today's behavior).
    pub budget: BudgetConfig,
    /// Serialize the scheduler's [`SearchProfile`] into the
    /// [`ScheduleArtifact`] JSON (as a `search_profile` key). Off by
    /// default so default artifacts stay byte-identical; profiling
    /// counters are collected either way — only the wire format is
    /// opt-in.
    pub emit_search_profile: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            schedule: ScheduleOptions::default(),
            task: TaskOptions::default(),
            profile: CostProfile::Unoptimized,
            multitask_buffer_size: 4,
            max_sim_steps: 200_000_000,
            parallel_schedule: false,
            budget: BudgetConfig::default(),
            emit_search_profile: false,
        }
    }
}

/// Hand-written with a fixed key order, so serializing a parsed config
/// is *canonicalizing*: `{}`, a partial config and a fully spelled-out
/// default all round-trip to the same bytes. A scheduling service that
/// keys in-flight coalescing on the serialized config relies on this —
/// two requests for the same net under configs that differ only in
/// spelling must share one search.
impl Serialize for PipelineConfig {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("schedule".into(), self.schedule.to_value()),
            ("task".into(), self.task.to_value()),
            ("profile".into(), self.profile.to_value()),
            (
                "multitask_buffer_size".into(),
                self.multitask_buffer_size.to_value(),
            ),
            ("max_sim_steps".into(), self.max_sim_steps.to_value()),
            (
                "parallel_schedule".into(),
                self.parallel_schedule.to_value(),
            ),
            ("budget".into(), self.budget.to_value()),
        ];
        // Skip-if-default: configs written before this field existed and
        // configs that never touch it serialize byte-identically, which
        // both the archived-artifact suites and `qssd`'s coalescing key
        // rely on.
        if self.emit_search_profile {
            fields.push((
                "emit_search_profile".into(),
                self.emit_search_profile.to_value(),
            ));
        }
        Value::Object(fields)
    }
}

/// Hand-written and *lenient*: every missing top-level field takes its
/// default, so `{}`, configurations serialized before a field existed
/// (archived artifacts, older clients of a `qssd` service) and a fully
/// spelled-out default all parse to the same value. A field that is
/// present but malformed still errors — leniency covers absence, not
/// invalid input.
impl<'de> Deserialize<'de> for PipelineConfig {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        if value.as_object().is_none() {
            return Err(serde::Error::custom(format!(
                "expected an object for `PipelineConfig`, found {}",
                value.kind()
            )));
        }
        let defaults = PipelineConfig::default();
        fn opt<T: serde::DeserializeOwned>(
            value: &Value,
            name: &str,
            default: T,
        ) -> Result<T, serde::Error> {
            match value.get(name) {
                Some(_) => serde::derive::field(value, "PipelineConfig", name),
                None => Ok(default),
            }
        }
        Ok(PipelineConfig {
            schedule: opt(value, "schedule", defaults.schedule)?,
            task: opt(value, "task", defaults.task)?,
            profile: opt(value, "profile", defaults.profile)?,
            multitask_buffer_size: opt(
                value,
                "multitask_buffer_size",
                defaults.multitask_buffer_size,
            )?,
            max_sim_steps: opt(value, "max_sim_steps", defaults.max_sim_steps)?,
            parallel_schedule: opt(value, "parallel_schedule", defaults.parallel_schedule)?,
            budget: opt(value, "budget", defaults.budget)?,
            emit_search_profile: opt(value, "emit_search_profile", defaults.emit_search_profile)?,
        })
    }
}

impl PipelineConfig {
    /// Replaces the cost profile.
    pub fn with_profile(mut self, profile: CostProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Replaces the schedule-search options.
    pub fn with_schedule_options(mut self, schedule: ScheduleOptions) -> Self {
        self.schedule = schedule;
        self
    }

    fn single_task_config(&self) -> SingleTaskConfig {
        let mut config = SingleTaskConfig::new(self.profile.cycle_model());
        config.max_steps = self.max_sim_steps;
        config
    }

    fn multi_task_config(&self) -> MultiTaskConfig {
        let mut config =
            MultiTaskConfig::new(self.multitask_buffer_size, self.profile.cycle_model());
        config.max_steps = self.max_sim_steps;
        config.inline_communication = self.task.inline_communication;
        config
    }
}

/// Entry point of the flow: a system specification plus a configuration,
/// not yet linked.
///
/// ```
/// use qss::{Pipeline, QssError};
///
/// let sim = Pipeline::from_source(r#"
///     PROCESS echo (In DPORT a, Out DPORT b) {
///         int x;
///         while (1) { READ_DATA(a, x, 1); WRITE_DATA(b, x * 2, 1); }
///     }
/// "#)?
/// .link()?
/// .schedule()?
/// .generate()?
/// .simulate(&[qss::EnvEvent::new("echo", "a", 21)])?;
/// assert_eq!(sim.single.output("echo", "b"), &[42]);
/// # Ok::<(), QssError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pipeline {
    spec: SystemSpec,
    config: PipelineConfig,
}

impl Pipeline {
    /// Starts a pipeline from an already-built specification.
    pub fn new(spec: SystemSpec) -> Self {
        Pipeline {
            spec,
            config: PipelineConfig::default(),
        }
    }

    /// Starts a pipeline by parsing whole-system FlowC source text
    /// (see [`qss_flowc::parse_system`] for the accepted format).
    ///
    /// # Errors
    /// Returns a parse- or link-stage [`QssError`] for malformed source.
    pub fn from_source(source: &str) -> Result<Self, QssError> {
        Ok(Pipeline::new(parse_system(source)?))
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut PipelineConfig {
        &mut self.config
    }

    /// The system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Stage 1: validates the specification and links the per-process
    /// nets into the system Petri net.
    ///
    /// # Errors
    /// Returns a link-stage [`QssError`] for inconsistent networks.
    pub fn link(self) -> Result<LinkedArtifact, QssError> {
        let system = qss_flowc::link(&self.spec)?;
        Ok(LinkedArtifact {
            spec: self.spec,
            system,
            config: self.config,
        })
    }
}

/// Stage-1 artifact: the linked system Petri net plus its metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkedArtifact {
    /// The specification the system was linked from.
    pub spec: SystemSpec,
    /// The linked system (net, channels, environment ports, code).
    pub system: LinkedSystem,
    /// The run configuration, carried through every stage.
    pub config: PipelineConfig,
}

impl LinkedArtifact {
    /// Structural analysis of the linked net (degrees, choice structure).
    pub fn analysis(&self) -> NetAnalysis {
        NetAnalysis::of(&self.system.net)
    }

    /// The stable, order-independent content fingerprint of the linked
    /// net (see [`qss_petri::net_fingerprint`]): the cache key a
    /// scheduling service uses to share one [`SearchContext`] across all
    /// requests that carry the same net. Pair it with
    /// [`LinkedArtifact::ordered_digest`] before actually reusing
    /// id-indexed derived state.
    pub fn fingerprint(&self) -> u64 {
        qss_petri::net_fingerprint(&self.system.net)
    }

    /// The order-*sensitive* companion digest of
    /// [`LinkedArtifact::fingerprint`] (see
    /// [`qss_petri::net_ordered_digest`]): equal fingerprint + equal
    /// digest means the net's id assignment matches too, so cached
    /// id-indexed analyses ([`SearchContext`]) are safe to reuse.
    pub fn ordered_digest(&self) -> u64 {
        qss_petri::net_ordered_digest(&self.system.net)
    }

    /// The linked net as Graphviz DOT.
    pub fn net_dot(&self) -> String {
        qss_petri::dot::to_dot(&self.system.net)
    }

    /// Runs the structural static analyzer over the linked net and
    /// renders its findings as compiler-style diagnostics (see
    /// [`crate::diagnostics`] for the code table). The report is
    /// deterministic for a given net and does not consume the artifact —
    /// it is a side analysis, not a stage transition.
    pub fn analyze(&self) -> AnalysisReport {
        let net = &self.system.net;
        let limits = StructuralLimits::default();
        let structural = qss_petri::structural_report(net, &limits);
        let has_t = !qss_petri::t_invariant_basis(net, limits.row_cap).is_empty();
        AnalysisReport::build(net, structural, has_t)
    }

    /// A [`SearchContext`] armed with the structural facts of `report`:
    /// provably unbounded or dead nets fast-reject with a typed
    /// [`ScheduleError`](qss_core::ScheduleError) before any search, and
    /// proven place bounds pre-arm the marking-slab sizing. Pass it to
    /// [`LinkedArtifact::schedule_with_context`]; the plain
    /// [`LinkedArtifact::schedule`] stays analysis-free.
    pub fn analyzed_context(&self, report: &AnalysisReport) -> SearchContext {
        SearchContext::with_structural(&self.system.net, &report.structural)
    }

    /// Compact JSON rendering of the artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialization is infallible")
    }

    /// Pretty-printed JSON rendering of the artifact.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serialization is infallible")
    }

    /// Rebuilds an artifact from its JSON rendering.
    ///
    /// # Errors
    /// Returns [`QssError::Config`] if the text is not a valid artifact.
    pub fn from_json(text: &str) -> Result<Self, QssError> {
        serde_json::from_str(text)
            .map_err(|e| QssError::Config(format!("invalid LinkedArtifact JSON: {e}")))
    }

    /// Stage 2: computes one quasi-static schedule per uncontrollable
    /// input and the static channel bounds, precomputing a reusable
    /// [`SearchContext`].
    ///
    /// # Errors
    /// Returns a schedule-stage [`QssError`] if some input has no
    /// single-source schedule (or the search budget runs out).
    pub fn schedule(self) -> Result<ScheduleArtifact, QssError> {
        let context = Arc::new(SearchContext::new(&self.system.net));
        self.schedule_with_context(context)
    }

    /// Stage 2 with a caller-provided [`SearchContext`] — the warm path
    /// of a scheduling service whose context cache (keyed by
    /// [`LinkedArtifact::fingerprint`], guarded by
    /// [`LinkedArtifact::ordered_digest`]) already holds the per-net
    /// analyses. `context` **must** have been computed from a net equal
    /// to `self.system.net` id-for-id; the result is identical to
    /// [`LinkedArtifact::schedule`], just without re-deriving the ECS
    /// partition and T-invariant basis.
    ///
    /// # Errors
    /// Same contract as [`LinkedArtifact::schedule`].
    pub fn schedule_with_context(
        self,
        context: Arc<SearchContext>,
    ) -> Result<ScheduleArtifact, QssError> {
        let budget = self.config.budget.to_budget();
        self.schedule_with_context_budgeted(context, &budget)
    }

    /// Stage 2 under an explicit runtime [`SearchBudget`] — how a service
    /// combines the configuration's own [`BudgetConfig`] with a
    /// per-request deadline or cancellation flag (see
    /// [`SearchBudget::and_deadline`]). The budget passed here *replaces*
    /// the one implied by `config.budget`; arm it with
    /// `config.budget.to_budget()` first to combine both.
    ///
    /// # Errors
    /// The contract of [`LinkedArtifact::schedule`] plus
    /// [`QssError::BudgetExhausted`] when the budget runs out.
    pub fn schedule_with_context_budgeted(
        self,
        context: Arc<SearchContext>,
        budget: &SearchBudget,
    ) -> Result<ScheduleArtifact, QssError> {
        let (schedules, profile) = if self.config.parallel_schedule {
            schedule_system_parallel_profiled(
                &self.system,
                &context,
                &self.config.schedule,
                budget,
            )?
        } else {
            schedule_system_profiled(&self.system, &context, &self.config.schedule, budget)?
        };
        Ok(self
            .attach_schedules(schedules, context)
            .with_search_profile(profile))
    }

    /// Builds the stage-2 artifact from schedules computed elsewhere —
    /// how `qssd` attaches the result of a *coalesced* search (one search
    /// shared by every concurrent request for the same net and config) to
    /// each request's own artifact.
    ///
    /// The caller is responsible for consistency: `schedules` must be the
    /// result of scheduling `self.system` under `self.config.schedule`,
    /// and `context` must stem from a net equal to `self.system.net`
    /// id-for-id. Artifacts assembled from mismatched parts serialize
    /// fine but are semantically meaningless.
    pub fn attach_schedules(
        self,
        schedules: SystemSchedules,
        context: Arc<SearchContext>,
    ) -> ScheduleArtifact {
        ScheduleArtifact {
            spec: self.spec,
            system: self.system,
            config: self.config,
            schedules,
            context,
            profile: None,
        }
    }
}

/// The environment port (`process.port`) a schedule serves, shared by
/// [`ScheduleArtifact::source_port`] and the report/CLI file names so
/// they can never drift apart.
fn source_port_name(system: &LinkedSystem, schedule: &qss_core::Schedule) -> String {
    system
        .env_inputs
        .iter()
        .find(|e| e.source == schedule.source())
        .map(|e| format!("{}.{}", e.process, e.port))
        .unwrap_or_else(|| system.net.transition(schedule.source()).name.clone())
}

/// Stage-2 artifact: the schedules of every uncontrollable input, the
/// static channel bounds, and the reusable per-net [`SearchContext`].
#[derive(Debug, Clone)]
pub struct ScheduleArtifact {
    /// The specification the system was linked from.
    pub spec: SystemSpec,
    /// The linked system.
    pub system: LinkedSystem,
    /// The run configuration.
    pub config: PipelineConfig,
    /// One schedule per uncontrollable input, with bounds and stats.
    pub schedules: SystemSchedules,
    /// The per-net analyses, reusable for further scheduling requests
    /// against the same net (rebuilt on deserialization). Behind an
    /// [`Arc`] so a service can share one context between its cache and
    /// any number of artifacts without cloning the analyses.
    context: Arc<SearchContext>,
    /// Aggregated work profile of the search that produced `schedules`
    /// (`None` for artifacts assembled from externally computed schedules
    /// or deserialized without one).
    profile: Option<SearchProfile>,
}

impl ScheduleArtifact {
    /// The reusable per-net search context.
    pub fn context(&self) -> &SearchContext {
        &self.context
    }

    /// The aggregated search profile, when the artifact's schedules were
    /// computed (not attached) and the profile survived serialization.
    pub fn search_profile(&self) -> Option<&SearchProfile> {
        self.profile.as_ref()
    }

    /// Attaches (or clears) the search profile — the complement of
    /// [`LinkedArtifact::attach_schedules`] for services that ran the
    /// search themselves and kept its profile.
    pub fn with_search_profile(mut self, profile: SearchProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// The search context as a shareable handle (what a scheduling
    /// service stores in its fingerprint-keyed cache).
    pub fn shared_context(&self) -> Arc<SearchContext> {
        Arc::clone(&self.context)
    }

    /// The environment port name (`process.port`) a schedule serves.
    pub fn source_port(&self, schedule: &qss_core::Schedule) -> String {
        source_port_name(&self.system, schedule)
    }

    /// The schedule at `index` as Graphviz DOT.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn schedule_dot(&self, index: usize) -> String {
        self.schedules.schedules[index].to_dot(&self.system.net)
    }

    /// Compact JSON rendering of the artifact (without the context, which
    /// is derived data).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialization is infallible")
    }

    /// Pretty-printed JSON rendering of the artifact.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serialization is infallible")
    }

    /// Rebuilds an artifact from its JSON rendering, recomputing the
    /// [`SearchContext`] from the embedded net.
    ///
    /// # Errors
    /// Returns [`QssError::Config`] if the text is not a valid artifact.
    pub fn from_json(text: &str) -> Result<Self, QssError> {
        serde_json::from_str(text)
            .map_err(|e| QssError::Config(format!("invalid ScheduleArtifact JSON: {e}")))
    }

    /// Stage 3: decomposes every schedule into code segments and emits
    /// one sequential C task per uncontrollable input.
    ///
    /// # Errors
    /// Returns a generate-stage [`QssError`] if a schedule and the system
    /// are inconsistent.
    pub fn generate(self) -> Result<TaskArtifact, QssError> {
        let tasks = self
            .schedules
            .schedules
            .iter()
            .map(|schedule| {
                generate_task(
                    &self.system,
                    schedule,
                    &self.schedules.channel_bounds,
                    &self.config.task,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TaskArtifact {
            spec: self.spec,
            system: self.system,
            config: self.config,
            schedules: self.schedules,
            tasks,
        })
    }
}

/// The serialized form of a [`ScheduleArtifact`] skips the derived
/// [`SearchContext`]; deserialization recomputes it from the net.
impl Serialize for ScheduleArtifact {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("spec".into(), self.spec.to_value()),
            ("system".into(), self.system.to_value()),
            ("config".into(), self.config.to_value()),
            ("schedules".into(), self.schedules.to_value()),
        ];
        // The profile key is doubly gated: the search must have produced
        // one *and* the config must ask for it on the wire. Artifacts
        // under a default config stay byte-identical to pre-profiling
        // builds.
        if self.config.emit_search_profile {
            if let Some(profile) = &self.profile {
                fields.push(("search_profile".into(), profile.to_value()));
            }
        }
        Value::Object(fields)
    }
}

impl<'de> Deserialize<'de> for ScheduleArtifact {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let system: LinkedSystem = serde::derive::field(value, "ScheduleArtifact", "system")?;
        let context = Arc::new(SearchContext::new(&system.net));
        let profile = match value.get("search_profile") {
            Some(_) => Some(serde::derive::field(
                value,
                "ScheduleArtifact",
                "search_profile",
            )?),
            None => None,
        };
        Ok(ScheduleArtifact {
            spec: serde::derive::field(value, "ScheduleArtifact", "spec")?,
            config: serde::derive::field(value, "ScheduleArtifact", "config")?,
            schedules: serde::derive::field(value, "ScheduleArtifact", "schedules")?,
            system,
            context,
            profile,
        })
    }
}

/// Stage-3 artifact: the generated sequential tasks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskArtifact {
    /// The specification the system was linked from.
    pub spec: SystemSpec,
    /// The linked system.
    pub system: LinkedSystem,
    /// The run configuration.
    pub config: PipelineConfig,
    /// The schedules the tasks were generated from.
    pub schedules: SystemSchedules,
    /// One generated task per uncontrollable input, in schedule order.
    pub tasks: Vec<GeneratedTask>,
}

impl TaskArtifact {
    /// The environment port name (`process.port`) a schedule serves —
    /// the same naming the report and the CLI's artifact files use.
    pub fn source_port(&self, schedule: &qss_core::Schedule) -> String {
        source_port_name(&self.system, schedule)
    }

    /// The emitted C source of every task, concatenated.
    pub fn c_code(&self) -> String {
        let mut out = String::new();
        for task in &self.tasks {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&task.code);
        }
        out
    }

    /// Compact JSON rendering of the artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialization is infallible")
    }

    /// Pretty-printed JSON rendering of the artifact.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serialization is infallible")
    }

    /// Rebuilds an artifact from its JSON rendering.
    ///
    /// # Errors
    /// Returns [`QssError::Config`] if the text is not a valid artifact.
    pub fn from_json(text: &str) -> Result<Self, QssError> {
        serde_json::from_str(text)
            .map_err(|e| QssError::Config(format!("invalid TaskArtifact JSON: {e}")))
    }

    /// Stage 4: executes the workload on both implementations — the
    /// generated single task(s) driven by the schedules, and the
    /// one-task-per-process RTOS baseline — and compares them.
    ///
    /// Borrows `self` so one task artifact can serve many workloads.
    ///
    /// # Errors
    /// Returns a simulate-stage [`QssError`] on deadlock, unknown event
    /// ports or step-budget exhaustion.
    pub fn simulate(&self, events: &[EnvEvent]) -> Result<SimArtifact, QssError> {
        let single = run_singletask(
            &self.system,
            &self.schedules.schedules,
            events,
            &self.config.single_task_config(),
        )?;
        let multi = run_multitask(&self.system, events, &self.config.multi_task_config())?;
        let outputs_match = single.outputs == multi.outputs;
        let speedup = if single.cycles > 0 {
            multi.cycles as f64 / single.cycles as f64
        } else {
            0.0
        };
        Ok(SimArtifact {
            config: self.config.clone(),
            events: events.to_vec(),
            single,
            multi,
            speedup,
            outputs_match,
        })
    }

    /// The machine-readable run summary (the CLI's `--report`).
    pub fn report(&self, simulation: Option<&SimArtifact>) -> PipelineReport {
        let code_model = self.config.profile.code_model();
        let schedules = self
            .schedules
            .schedules
            .iter()
            .zip(&self.schedules.stats)
            .map(|(schedule, stats)| ScheduleSummary {
                source: source_port_name(&self.system, schedule),
                nodes: schedule.num_nodes(),
                edges: schedule.num_edges(),
                await_nodes: schedule.await_nodes(&self.system.net).len(),
                nodes_explored: stats.nodes_created,
            })
            .collect();
        let channel_bounds = self
            .system
            .channels
            .iter()
            .map(|c| {
                (
                    c.name.clone(),
                    self.schedules
                        .channel_bounds
                        .get(&c.place)
                        .copied()
                        .unwrap_or(0),
                )
            })
            .collect();
        let tasks = self
            .tasks
            .iter()
            .map(|task| TaskSummary {
                name: task.name.clone(),
                segments: task.stats.num_segments,
                threads: task.stats.num_threads,
                state_variables: task.stats.num_state_variables,
                code_bytes: qss_codegen::estimate_code_size(&task.stats, &code_model),
            })
            .collect();
        PipelineReport {
            system: self.spec.name().to_string(),
            profile: self.config.profile.name().to_string(),
            processes: self.system.process_names.clone(),
            places: self.system.net.num_places(),
            transitions: self.system.net.num_transitions(),
            schedules,
            channel_bounds,
            tasks,
            simulation: simulation.map(SimArtifact::summary),
        }
    }
}

/// Stage-4 artifact: both execution reports and their comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimArtifact {
    /// The run configuration.
    pub config: PipelineConfig,
    /// The workload that was executed.
    pub events: Vec<EnvEvent>,
    /// Report of the generated single task(s).
    pub single: SimReport,
    /// Report of the one-task-per-process RTOS baseline.
    pub multi: SimReport,
    /// `multi.cycles / single.cycles` (the paper's headline ratio).
    pub speedup: f64,
    /// Whether both implementations wrote identical output sequences
    /// (the role VCC simulation played in the paper).
    pub outputs_match: bool,
}

impl SimArtifact {
    /// Compact JSON rendering of the artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialization is infallible")
    }

    /// Pretty-printed JSON rendering of the artifact.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serialization is infallible")
    }

    /// Rebuilds an artifact from its JSON rendering.
    ///
    /// # Errors
    /// Returns [`QssError::Config`] if the text is not a valid artifact.
    pub fn from_json(text: &str) -> Result<Self, QssError> {
        serde_json::from_str(text)
            .map_err(|e| QssError::Config(format!("invalid SimArtifact JSON: {e}")))
    }

    /// The condensed comparison used inside [`PipelineReport`].
    pub fn summary(&self) -> SimSummary {
        SimSummary {
            events: self.events.len(),
            single_cycles: self.single.cycles,
            multi_cycles: self.multi.cycles,
            speedup: (self.speedup * 1000.0).round() / 1000.0,
            context_switches: self.multi.context_switches,
            outputs_match: self.outputs_match,
        }
    }
}

/// Per-schedule entry of a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleSummary {
    /// The environment port (`process.port`) the schedule serves.
    pub source: String,
    /// Nodes in the schedule graph.
    pub nodes: usize,
    /// Edges in the schedule graph.
    pub edges: usize,
    /// Await nodes (environment synchronization points).
    pub await_nodes: usize,
    /// Search-tree nodes explored to find the schedule.
    pub nodes_explored: usize,
}

/// Per-task entry of a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSummary {
    /// Task name (derived from the environment port it serves).
    pub name: String,
    /// Code segments (labels) in the task.
    pub segments: usize,
    /// Threads (reactions between await nodes).
    pub threads: usize,
    /// State variables of the task.
    pub state_variables: usize,
    /// Estimated object-code size under the configured profile.
    pub code_bytes: u64,
}

/// Condensed execution comparison inside a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Number of environment events executed.
    pub events: usize,
    /// Cycles of the generated single task(s).
    pub single_cycles: u64,
    /// Cycles of the multi-task baseline.
    pub multi_cycles: u64,
    /// `multi / single`, rounded to three decimals.
    pub speedup: f64,
    /// Context switches of the baseline (the single task needs none).
    pub context_switches: u64,
    /// Whether both implementations produced identical outputs.
    pub outputs_match: bool,
}

/// Machine-readable summary of a pipeline run: what `qssc --report`
/// emits, deterministic and diffable against golden files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// System name.
    pub system: String,
    /// Cost profile name (`pfc`, `pfc-O`, `pfc-O2`).
    pub profile: String,
    /// Process names, in specification order.
    pub processes: Vec<String>,
    /// Places of the linked net.
    pub places: usize,
    /// Transitions of the linked net.
    pub transitions: usize,
    /// One summary per schedule, in environment-input order.
    pub schedules: Vec<ScheduleSummary>,
    /// Static buffer bound of every channel, in specification order.
    pub channel_bounds: Vec<(String, u32)>,
    /// One summary per generated task.
    pub tasks: Vec<TaskSummary>,
    /// The execution comparison, when a workload was simulated.
    pub simulation: Option<SimSummary>,
}

impl PipelineReport {
    /// Pretty-printed JSON rendering (with a trailing newline, so the
    /// file diffs cleanly).
    pub fn to_json_pretty(&self) -> String {
        let mut text =
            serde_json::to_string_pretty(self).expect("report serialization is infallible");
        text.push('\n');
        text
    }

    /// Parses a report back from JSON text.
    ///
    /// # Errors
    /// Returns [`QssError::Config`] if the text is not a valid report.
    pub fn from_json(text: &str) -> Result<Self, QssError> {
        serde_json::from_str(text)
            .map_err(|e| QssError::Config(format!("invalid PipelineReport JSON: {e}")))
    }
}
