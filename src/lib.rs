//! Facade crate for the quasi-static scheduling workspace.
//!
//! Re-exports the sub-crates so the root-level integration tests and
//! examples can reach everything through one dependency, and so downstream
//! users can depend on a single `qss` crate:
//!
//! * [`petri`] — Petri-net kernel (markings, ECS, reachability, invariants),
//! * [`flowc`] — FlowC front end (parsing, compilation to nets, linking),
//! * [`core`] — the EP/EP_ECS quasi-static scheduler,
//! * [`codegen`] — sequential task generation (C emission),
//! * [`sim`] — execution substrate and the PFC case study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qss_codegen as codegen;
pub use qss_core as core;
pub use qss_flowc as flowc;
pub use qss_petri as petri;
pub use qss_sim as sim;
