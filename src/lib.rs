//! `qss` — quasi-static scheduling of mixed data-control embedded
//! software (Cortadella et al., DAC 2000), as one typed pipeline.
//!
//! The paper's flow — FlowC processes → linked Petri net → quasi-static
//! schedules → one sequential task → execution comparison — is exposed as
//! a staged API in which every stage returns a serializable artifact:
//!
//! ```
//! use qss::{EnvEvent, Pipeline, QssError};
//!
//! let events: Vec<EnvEvent> = (1..=3).map(|i| EnvEvent::new("echo", "a", i)).collect();
//! let task = Pipeline::from_source(r#"
//!     PROCESS echo (In DPORT a, Out DPORT b) {
//!         int x;
//!         while (1) { READ_DATA(a, x, 1); WRITE_DATA(b, x * 2, 1); }
//!     }
//! "#)?
//! .link()?       // LinkedArtifact: the system Petri net
//! .schedule()?   // ScheduleArtifact: schedules + channel bounds + SearchContext
//! .generate()?;  // TaskArtifact: the sequential C task(s)
//! let sim = task.simulate(&events)?; // SimArtifact: both executions compared
//! assert!(sim.outputs_match);
//! println!("{}", task.report(Some(&sim)).to_json_pretty());
//! # Ok::<(), QssError>(())
//! ```
//!
//! The same flow is available from the command line through the `qssc`
//! binary (`qssc build system.flowc --emit c,json,dot --report -`), and
//! as a long-running service through `qssd` (crate `qss_server`), whose
//! newline-delimited JSON wire protocol and client live in [`remote`].
//!
//! The sub-crates remain reachable as modules for power users:
//!
//! * [`petri`] — Petri-net kernel (markings, ECS, reachability, invariants),
//! * [`flowc`] — FlowC front end (parsing, compilation to nets, linking),
//! * [`core`] — the EP/EP_ECS quasi-static scheduler,
//! * [`codegen`] — sequential task generation (C emission),
//! * [`sim`] — execution substrate and the PFC case study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qss_codegen as codegen;
pub use qss_core as core;
pub use qss_flowc as flowc;
pub use qss_petri as petri;
pub use qss_sim as sim;

pub mod diagnostics;
mod error;
mod pipeline;
pub mod remote;

pub use diagnostics::{AnalysisReport, Diagnostic, Severity, Subject};
pub use error::{QssError, Stage};
pub use pipeline::{
    CostProfile, LinkedArtifact, Pipeline, PipelineConfig, PipelineReport, ScheduleArtifact,
    ScheduleSummary, SimArtifact, SimSummary, TaskArtifact, TaskSummary,
};

// The working vocabulary of the flow, flattened so that one `use qss::…`
// import covers a full pipeline run and the common escape hatches.
pub use qss_codegen::{generate_task, GeneratedTask, TaskOptions, TaskStats};
pub use qss_core::{
    find_schedule, schedule_system, schedule_system_parallel, BudgetConfig, BudgetStop, Schedule,
    ScheduleError, ScheduleOptions, SearchBudget, SearchContext, SearchProfile, SystemSchedules,
};
pub use qss_flowc::{
    link, parse_process, parse_system, FlowCError, LinkedSystem, PortClass, SystemSpec,
};
pub use qss_sim::{
    run_multitask, run_singletask, CycleCostModel, EnvEvent, MultiTaskConfig, SimError, SimReport,
    SingleTaskConfig,
};

/// Renders a Petri net as Graphviz DOT (re-exported from
/// [`qss_petri::dot::to_dot`] so debugging output needs no sub-crate
/// imports; schedules render through [`Schedule::to_dot`]).
pub use qss_petri::dot::to_dot as net_to_dot;
