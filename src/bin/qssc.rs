//! `qssc` — the quasi-static scheduling compiler, on the command line.
//!
//! Runs the whole `qss` pipeline on a whole-system FlowC file (any number
//! of `PROCESS` definitions plus an optional `SYSTEM` manifest block, see
//! [`qss::parse_system`]) and emits the stage artifacts:
//!
//! ```text
//! qssc build system.flowc --emit c,json,dot --out out/ \
//!      --events source.trigger=6,7,8,9 --report out/report.json
//! qssc check system.flowc
//! ```
//!
//! * `--emit c` writes one `<system>.<task>.c` file per generated task,
//! * `--emit json` writes `<system>.pipeline.json` (the serialized
//!   [`TaskArtifact`]) and, when events were given,
//!   `<system>.sim.json`,
//! * `--emit dot` writes `<system>.net.dot` plus one
//!   `<system>.<port>.schedule.dot` per schedule,
//! * `--report PATH` writes the deterministic run summary
//!   ([`PipelineReport`](qss::PipelineReport)); `-` prints it to stdout.

use qss::remote::{Client, ClientError};
use qss::{
    AnalysisReport, CostProfile, EnvEvent, Pipeline, PipelineConfig, QssError, ScheduleOptions,
    SimArtifact, TaskArtifact,
};
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
qssc — quasi-static scheduling compiler (Cortadella et al., DAC 2000)

USAGE:
    qssc build <FILE> [OPTIONS]    run the pipeline and emit artifacts
    qssc check <FILE> [--deny warnings]
                                   parse, link and analyze; print a summary
    qssc analyze <FILE> [--deny warnings]
                                   structural static analysis: JSON report on
                                   stdout, compiler-style diagnostics on stderr
    qssc remote <ADDR> <COMMAND>   run against a running qssd service
    qssc --help                    show this help

`check` and `analyze` exit 1 when the analyzer reports an error
(QSS-Exxx), or any diagnostic at all under `--deny warnings`. The
diagnostic codes are documented in the README (\"Static analysis\").

`<FILE>` may be `-` to read FlowC source from stdin (pipe parity with
the service path).

BUILD OPTIONS:
    --emit KINDS          comma-separated artifacts: c, json, dot (default: c)
    --out DIR             output directory (default: .)
    --report PATH         write the JSON run summary to PATH (`-` = stdout)
    --events P.PORT=V,..  simulate a workload: one flag per input port,
                          values are delivered in flag order (repeatable)
    --profile NAME        cost profile: pfc, pfc-O, pfc-O2 (default: pfc)
    --buffer N            multi-task baseline buffer capacity (default: 4)
    --place-bound N       prune with uniform place bounds instead of the
                          irrelevant-marking criterion
    --no-heuristics       disable the search-ordering heuristics
    --parallel            schedule the uncontrollable inputs on threads
    --search-profile      print the search work profile (nodes expanded,
                          backtracks, pruning cuts, per-phase times) to
                          stderr after the build, and include it in the
                          serialized artifacts (local builds only)

REMOTE COMMANDS (driving a warm `qssd`, see PROTOCOL.md):
    remote <ADDR> build <FILE> [BUILD OPTIONS]
                          run the pipeline on the server (reusing its
                          per-net context cache), emit artifacts locally
    remote <ADDR> check <FILE>     parse and link on the server
    remote <ADDR> analyze <FILE> [--deny warnings]
                          structural analysis on the server (cached by net
                          fingerprint); output byte-identical to `qssc analyze`
    remote <ADDR> stats            print the server's counters
    remote <ADDR> metrics          print the server's full observability
                          snapshot: every counter plus p50/p95/p99 request
                          latency per request kind (see PROTOCOL.md)
    remote <ADDR> shutdown         drain the server and stop it
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Exit::Usage(message)) => {
            eprintln!("qssc: {message}");
            eprintln!("run `qssc --help` for usage");
            ExitCode::from(2)
        }
        Err(Exit::Pipeline(e)) => {
            eprintln!("qssc: {e}");
            ExitCode::FAILURE
        }
        Err(Exit::Remote(e)) => {
            eprintln!("qssc: remote {e}");
            ExitCode::FAILURE
        }
        Err(Exit::Analysis(message)) => {
            eprintln!("qssc: {message}");
            ExitCode::FAILURE
        }
    }
}

enum Exit {
    /// A command-line problem (exit code 2).
    Usage(String),
    /// A pipeline or I/O failure (exit code 1).
    Pipeline(QssError),
    /// A failure reported by (or while talking to) a qssd server
    /// (exit code 1).
    Remote(ClientError),
    /// The structural analyzer rejected the net — errors present, or
    /// warnings present under `--deny warnings` (exit code 1; the
    /// diagnostics themselves were already printed to stderr).
    Analysis(String),
}

impl From<QssError> for Exit {
    fn from(e: QssError) -> Self {
        Exit::Pipeline(e)
    }
}

impl From<ClientError> for Exit {
    fn from(e: ClientError) -> Self {
        Exit::Remote(e)
    }
}

fn run(args: &[String]) -> Result<(), Exit> {
    match args.first().map(String::as_str) {
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("build") => build(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("remote") => remote(&args[1..]),
        Some(other) => Err(Exit::Usage(format!("unknown command `{other}`"))),
        None => Err(Exit::Usage("missing command".into())),
    }
}

/// Options collected from the `build` argument list.
struct BuildArgs {
    input: PathBuf,
    emit_c: bool,
    emit_json: bool,
    emit_dot: bool,
    out_dir: PathBuf,
    report: Option<String>,
    events: Vec<(String, String, Vec<i64>)>,
    config: PipelineConfig,
    search_profile: bool,
}

fn parse_build_args(args: &[String]) -> Result<BuildArgs, Exit> {
    let mut input: Option<PathBuf> = None;
    let mut emit = "c".to_string();
    let mut out_dir = PathBuf::from(".");
    let mut report = None;
    let mut events = Vec::new();
    let mut config = PipelineConfig::default();
    let mut i = 0;
    let next_value = |args: &[String], i: &mut usize, flag: &str| {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| Exit::Usage(format!("`{flag}` needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--emit" => emit = next_value(args, &mut i, "--emit")?,
            "--out" => out_dir = PathBuf::from(next_value(args, &mut i, "--out")?),
            "--report" => report = Some(next_value(args, &mut i, "--report")?),
            "--events" => {
                let spec = next_value(args, &mut i, "--events")?;
                events.push(parse_events_spec(&spec)?);
            }
            "--profile" => {
                let name = next_value(args, &mut i, "--profile")?;
                config.profile = CostProfile::from_name(&name)?;
            }
            "--buffer" => {
                let value = next_value(args, &mut i, "--buffer")?;
                config.multitask_buffer_size = value
                    .parse()
                    .map_err(|_| Exit::Usage(format!("invalid `--buffer` value `{value}`")))?;
            }
            "--place-bound" => {
                let value = next_value(args, &mut i, "--place-bound")?;
                let bound: u32 = value
                    .parse()
                    .map_err(|_| Exit::Usage(format!("invalid `--place-bound` value `{value}`")))?;
                config.schedule = ScheduleOptions {
                    termination: qss::core::TerminationKind::PlaceBounds { default: bound },
                    ..config.schedule
                };
            }
            "--no-heuristics" => config.schedule = config.schedule.without_heuristics(),
            "--parallel" => config.parallel_schedule = true,
            "--search-profile" => config.emit_search_profile = true,
            // A bare `-` is the stdin pseudo-path, not a flag.
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(Exit::Usage(format!("unknown option `{flag}`")))
            }
            path if input.is_none() => input = Some(PathBuf::from(path)),
            extra => return Err(Exit::Usage(format!("unexpected argument `{extra}`"))),
        }
        i += 1;
    }
    let input = input.ok_or_else(|| Exit::Usage("missing input file".into()))?;
    let search_profile = config.emit_search_profile;
    let mut build = BuildArgs {
        input,
        emit_c: false,
        emit_json: false,
        emit_dot: false,
        out_dir,
        report,
        events,
        config,
        search_profile,
    };
    for kind in emit.split(',').filter(|k| !k.is_empty()) {
        match kind.trim() {
            "c" => build.emit_c = true,
            "json" => build.emit_json = true,
            "dot" => build.emit_dot = true,
            other => return Err(Exit::Usage(format!("unknown `--emit` kind `{other}`"))),
        }
    }
    Ok(build)
}

/// Parses `process.port=v1,v2,...` into per-port event values.
fn parse_events_spec(spec: &str) -> Result<(String, String, Vec<i64>), Exit> {
    let bad = || {
        Exit::Usage(format!(
            "invalid `--events` spec `{spec}` (expected `process.port=v1,v2,...`)"
        ))
    };
    let (port_ref, values) = spec.split_once('=').ok_or_else(bad)?;
    let (process, port) = port_ref.split_once('.').ok_or_else(bad)?;
    if process.is_empty() || port.is_empty() {
        return Err(bad());
    }
    let values = values
        .split(',')
        .map(|v| v.trim().parse::<i64>().map_err(|_| bad()))
        .collect::<Result<Vec<i64>, Exit>>()?;
    if values.is_empty() {
        return Err(bad());
    }
    Ok((process.to_string(), port.to_string(), values))
}

/// Reads FlowC source from `path`, or from stdin when `path` is `-` —
/// service/pipe parity: `cat sys.flowc | qssc build - --emit c`.
fn read_source(path: &Path) -> Result<String, QssError> {
    if path == Path::new("-") {
        let mut source = String::new();
        return std::io::stdin()
            .read_to_string(&mut source)
            .map(|_| source)
            .map_err(|e| QssError::Io {
                path: "<stdin>".to_string(),
                message: e.to_string(),
            });
    }
    std::fs::read_to_string(path).map_err(|e| QssError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

fn write_file(path: &Path, contents: &str) -> Result<(), QssError> {
    std::fs::write(path, contents).map_err(|e| QssError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Expands the parsed `--events` flags into the simulation workload.
fn collect_events(args: &BuildArgs) -> Vec<EnvEvent> {
    args.events
        .iter()
        .flat_map(|(process, port, values)| {
            values
                .iter()
                .map(|v| EnvEvent::new(process.clone(), port.clone(), *v))
        })
        .collect()
}

fn build(args: &[String]) -> Result<(), Exit> {
    let args = parse_build_args(args)?;
    let source = read_source(&args.input)?;

    let pipeline = Pipeline::from_source(&source)?.with_config(args.config.clone());
    let scheduled = pipeline.link()?.schedule()?;
    let profile = args
        .search_profile
        .then(|| scheduled.search_profile().cloned())
        .flatten();
    let task = scheduled.generate()?;
    let events = collect_events(&args);
    let sim = if events.is_empty() {
        None
    } else {
        Some(task.simulate(&events)?)
    };
    emit_outputs(&args, &task, sim.as_ref())?;
    if let Some(profile) = profile {
        eprint!("{}", render_search_profile(&profile));
    }
    Ok(())
}

/// Renders the aggregated [`qss::SearchProfile`] as an aligned label/value
/// table (the `qssc build --search-profile` output, on stderr so stdout
/// stays reserved for reports and artifacts).
fn render_search_profile(profile: &qss::SearchProfile) -> String {
    let rows = profile.rows();
    let label_width = rows.iter().map(|(label, _)| label.len()).max().unwrap_or(0);
    let value_width = rows
        .iter()
        .map(|(_, value)| value.to_string().len())
        .max()
        .unwrap_or(0);
    let mut out = String::from("qssc: search profile\n");
    for (label, value) in rows {
        out.push_str(&format!("  {label:<label_width$}  {value:>value_width$}\n"));
    }
    out
}

/// Writes every requested artifact of a finished pipeline run. The
/// [`TaskArtifact`] carries the linked system and the schedules, so both
/// the local `build` and `remote build` paths (which receives the
/// artifact over the wire) emit through this one function and can never
/// drift apart.
fn emit_outputs(
    args: &BuildArgs,
    task: &TaskArtifact,
    sim: Option<&SimArtifact>,
) -> Result<(), Exit> {
    let system_name = task.spec.name().to_string();
    if args.emit_c || args.emit_json || args.emit_dot {
        std::fs::create_dir_all(&args.out_dir).map_err(|e| QssError::Io {
            path: args.out_dir.display().to_string(),
            message: e.to_string(),
        })?;
    }
    let out = |file_name: String| args.out_dir.join(file_name);
    if args.emit_c {
        for generated in &task.tasks {
            let path = out(format!("{system_name}.{}.c", generated.name));
            write_file(&path, &generated.code)?;
            eprintln!("qssc: wrote {}", path.display());
        }
    }
    if args.emit_json {
        let path = out(format!("{system_name}.pipeline.json"));
        write_file(&path, &task.to_json_pretty())?;
        eprintln!("qssc: wrote {}", path.display());
        if let Some(sim) = sim {
            let path = out(format!("{system_name}.sim.json"));
            write_file(&path, &sim.to_json_pretty())?;
            eprintln!("qssc: wrote {}", path.display());
        }
    }
    if args.emit_dot {
        let path = out(format!("{system_name}.net.dot"));
        write_file(&path, &qss::net_to_dot(&task.system.net))?;
        eprintln!("qssc: wrote {}", path.display());
        for schedule in &task.schedules.schedules {
            let port = task.source_port(schedule).replace('.', "_");
            let path = out(format!("{system_name}.{port}.schedule.dot"));
            write_file(&path, &schedule.to_dot(&task.system.net))?;
            eprintln!("qssc: wrote {}", path.display());
        }
    }

    let report = task.report(sim).to_json_pretty();
    match args.report.as_deref() {
        Some("-") => print!("{report}"),
        Some(path) => {
            let path = Path::new(path);
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).map_err(|e| QssError::Io {
                    path: parent.display().to_string(),
                    message: e.to_string(),
                })?;
            }
            write_file(path, &report)?;
            eprintln!("qssc: wrote {}", path.display());
        }
        None => {}
    }
    Ok(())
}

/// `qssc remote <ADDR> <COMMAND> ...` — the same pipeline, served by a
/// warm `qssd` whose per-net analyses are cached across requests.
fn remote(args: &[String]) -> Result<(), Exit> {
    let Some((addr, rest)) = args.split_first() else {
        return Err(Exit::Usage("`remote` needs a server address".into()));
    };
    match rest.first().map(String::as_str) {
        Some("build") => remote_build(addr, &rest[1..]),
        Some("check") => remote_check(addr, &rest[1..]),
        Some("analyze") => remote_analyze(addr, &rest[1..]),
        Some("stats") => remote_stats(addr),
        Some("metrics") => remote_metrics(addr),
        Some("shutdown") => remote_shutdown(addr),
        Some(other) => Err(Exit::Usage(format!("unknown remote command `{other}`"))),
        None => Err(Exit::Usage("missing remote command".into())),
    }
}

fn connect(addr: &str) -> Result<Client, Exit> {
    Client::connect(addr)
        .map_err(|e| Exit::Remote(ClientError::Io(format!("cannot connect to {addr}: {e}"))))
}

/// Runs `build` on the server: the artifacts come back over the wire
/// byte-identical to a local run, and are emitted through the same
/// [`emit_outputs`] as `qssc build`.
fn remote_build(addr: &str, args: &[String]) -> Result<(), Exit> {
    let args = parse_build_args(args)?;
    if args.search_profile {
        // The wire TaskArtifact does not carry a profile; the server's
        // aggregate search work is visible via `remote ADDR metrics`.
        return Err(Exit::Usage(
            "`--search-profile` is only available on local builds \
             (use `qssc remote ADDR metrics` for server-side search counters)"
                .into(),
        ));
    }
    let source = read_source(&args.input)?;
    let mut client = connect(addr)?;

    let events = collect_events(&args);
    // One request either way: with events, `simulate` embeds the
    // TaskArtifact (`include_task`) so the server runs the pipeline
    // once instead of once for `generate` and again for `simulate`.
    // The reply Values are decoded in place — no clones, no
    // JSON-string round-trips of the largest payloads in the program.
    let decode_error = |what: &str, e: serde::Error| {
        Exit::Remote(ClientError::Protocol(format!("malformed {what}: {e}")))
    };
    let (fingerprint, cached, task_value, sim) = if events.is_empty() {
        let reply = client.generate(&source, Some(&args.config))?;
        (reply.fingerprint, reply.cached, reply.artifact, None)
    } else {
        let reply = client.simulate_with_task(&source, Some(&args.config), &events)?;
        let task_value = reply
            .task
            .expect("simulate_with_task guarantees the task payload");
        let sim: SimArtifact =
            serde_json::from_value(reply.artifact).map_err(|e| decode_error("SimArtifact", e))?;
        (reply.fingerprint, reply.cached, task_value, Some(sim))
    };
    let task: TaskArtifact =
        serde_json::from_value(task_value).map_err(|e| decode_error("TaskArtifact", e))?;
    eprintln!(
        "qssc: remote build of net {fingerprint} ({})",
        if cached {
            "warm context cache"
        } else {
            "cold context cache"
        }
    );
    emit_outputs(&args, &task, sim.as_ref())
}

fn remote_check(addr: &str, args: &[String]) -> Result<(), Exit> {
    let [path] = args else {
        return Err(Exit::Usage(
            "`remote ADDR check` takes exactly one input file".into(),
        ));
    };
    let source = read_source(Path::new(path))?;
    let summary = connect(addr)?.check(&source)?;
    println!(
        "{}: {} process(es), {} channel(s), net of {} places / {} transitions, \
         {} uncontrollable input(s), {} choice place(s), fingerprint {}",
        summary.system,
        summary.processes,
        summary.channels,
        summary.places,
        summary.transitions,
        summary.uncontrollable_inputs,
        summary.choice_places,
        summary.fingerprint,
    );
    Ok(())
}

/// `qssc remote ADDR analyze` — the analyzer runs on the server (cached
/// by net fingerprint), but stdout/stderr and the exit status are
/// byte-identical to a local `qssc analyze`.
fn remote_analyze(addr: &str, args: &[String]) -> Result<(), Exit> {
    let (path, deny_warnings) = parse_analysis_args(args, "remote ADDR analyze")?;
    let source = read_source(&path)?;
    let reply = connect(addr)?.analyze(&source)?;
    let report: AnalysisReport = serde_json::from_value(reply.artifact).map_err(|e| {
        Exit::Remote(ClientError::Protocol(format!(
            "malformed AnalysisReport: {e}"
        )))
    })?;
    print!("{}", report.to_json_pretty());
    eprint!("{}", report.render_human());
    finish_analysis(&report, deny_warnings)
}

fn remote_stats(addr: &str) -> Result<(), Exit> {
    let stats = connect(addr)?.stats()?;
    let text = serde_json::to_string_pretty(&stats).expect("stats serialization is infallible");
    println!("{text}");
    Ok(())
}

fn remote_metrics(addr: &str) -> Result<(), Exit> {
    let metrics = connect(addr)?.metrics()?;
    let text = serde_json::to_string_pretty(&metrics).expect("metrics serialization is infallible");
    println!("{text}");
    Ok(())
}

fn remote_shutdown(addr: &str) -> Result<(), Exit> {
    connect(addr)?.shutdown()?;
    eprintln!("qssc: server at {addr} is draining and will exit");
    Ok(())
}

/// Parses `<FILE> [--deny warnings]` — the shared argument shape of
/// `check` and `analyze`.
fn parse_analysis_args(args: &[String], command: &str) -> Result<(PathBuf, bool), Exit> {
    let mut input: Option<PathBuf> = None;
    let mut deny_warnings = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("warnings") => deny_warnings = true,
                    Some(other) => {
                        return Err(Exit::Usage(format!(
                            "unknown `--deny` lint class `{other}` (only `warnings` is supported)"
                        )))
                    }
                    None => return Err(Exit::Usage("`--deny` needs a value".into())),
                }
            }
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(Exit::Usage(format!("unknown option `{flag}`")))
            }
            path if input.is_none() => input = Some(PathBuf::from(path)),
            extra => return Err(Exit::Usage(format!("unexpected argument `{extra}`"))),
        }
        i += 1;
    }
    let input = input.ok_or_else(|| Exit::Usage(format!("`{command}` needs an input file")))?;
    Ok((input, deny_warnings))
}

/// Turns an [`AnalysisReport`] into the command's exit status: clean
/// (under the deny policy) is success, anything else is exit 1.
fn finish_analysis(report: &AnalysisReport, deny_warnings: bool) -> Result<(), Exit> {
    if report.passes(deny_warnings) {
        return Ok(());
    }
    let denied = deny_warnings && !report.has_errors();
    Err(Exit::Analysis(format!(
        "analysis of `{}` failed{}: {} error(s), {} warning(s)",
        report.system,
        if denied {
            " under `--deny warnings`"
        } else {
            ""
        },
        report.error_count(),
        report.warning_count(),
    )))
}

fn check(args: &[String]) -> Result<(), Exit> {
    let (path, deny_warnings) = parse_analysis_args(args, "check")?;
    let source = read_source(&path)?;
    let linked = Pipeline::from_source(&source)?.link()?;
    let analysis = linked.analysis();
    println!(
        "{}: {} process(es), {} channel(s), net of {} places / {} transitions, \
         {} uncontrollable input(s), {} choice place(s)",
        linked.spec.name(),
        linked.system.process_names.len(),
        linked.system.channels.len(),
        analysis.num_places,
        analysis.num_transitions,
        analysis.num_uncontrollable_sources,
        analysis.num_choice_places,
    );
    let report = linked.analyze();
    eprint!("{}", report.render_human());
    finish_analysis(&report, deny_warnings)
}

fn analyze(args: &[String]) -> Result<(), Exit> {
    let (path, deny_warnings) = parse_analysis_args(args, "analyze")?;
    let source = read_source(&path)?;
    let report = Pipeline::from_source(&source)?.link()?.analyze();
    print!("{}", report.to_json_pretty());
    eprint!("{}", report.render_human());
    finish_analysis(&report, deny_warnings)
}
