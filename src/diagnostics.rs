//! Compiler-style diagnostics derived from the structural pre-pass.
//!
//! [`LinkedArtifact::analyze`](crate::LinkedArtifact::analyze) runs the
//! structural analyzer of [`qss_petri::structural`] over the linked net
//! and renders its findings as a typed [`AnalysisReport`]: a list of
//! [`Diagnostic`]s with *stable codes* (`QSS-W001`, `QSS-E002`, …) plus
//! the raw [`StructuralReport`] for tooling that wants the underlying
//! facts. The report is what `qssc analyze` prints, what
//! `qssc check --deny warnings` gates on, and what `qssd` caches by net
//! fingerprint.
//!
//! # Diagnostic codes
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `QSS-W001` | warning | dead transition: it can never fire |
//! | `QSS-W002` | warning | never-marked place: it can never carry a token |
//! | `QSS-W003` | warning | unmarked minimal siphon: its consumers die once it drains |
//! | `QSS-W004` | warning | equal-conflict violation: a choice the scheduler cannot resolve uniformly |
//! | `QSS-E002` | error | structurally unbounded place under internal transitions alone |
//! | `QSS-E003` | error | no T-invariants: no cyclic schedule exists |
//!
//! Codes are stable across releases: tools may match on them. Severity
//! reflects schedulability: *errors* are conditions under which the
//! quasi-static search provably cannot succeed (the [`SearchContext`]
//! built via [`LinkedArtifact::analyzed_context`] fast-rejects them
//! before searching); *warnings* are structural defects that usually
//! indicate a modelling bug but do not by themselves rule out a
//! schedule.
//!
//! [`SearchContext`]: qss_core::SearchContext
//! [`LinkedArtifact::analyzed_context`]: crate::LinkedArtifact::analyzed_context

use crate::error::QssError;
use qss_petri::{PetriNet, PlaceId, StructuralReport, TransitionId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable diagnostic code: dead transition (warning).
pub const CODE_DEAD_TRANSITION: &str = "QSS-W001";
/// Stable diagnostic code: never-marked place (warning).
pub const CODE_NEVER_MARKED_PLACE: &str = "QSS-W002";
/// Stable diagnostic code: unmarked minimal siphon (warning).
pub const CODE_UNMARKED_SIPHON: &str = "QSS-W003";
/// Stable diagnostic code: equal-conflict violation (warning).
pub const CODE_FREE_CHOICE_VIOLATION: &str = "QSS-W004";
/// Stable diagnostic code: structurally unbounded place (error).
pub const CODE_UNBOUNDED_PLACE: &str = "QSS-E002";
/// Stable diagnostic code: no T-invariants (error).
pub const CODE_NO_T_INVARIANTS: &str = "QSS-E003";

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// A structural defect that does not by itself preclude scheduling.
    Warning,
    /// A condition under which the quasi-static search provably fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The net element a diagnostic is about.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Subject {
    /// A single place (by id).
    Place(PlaceId),
    /// A single transition (by id).
    Transition(TransitionId),
    /// A set of places (e.g. a siphon), in id order.
    Places(Vec<PlaceId>),
    /// The net as a whole.
    Net,
}

/// One finding of the structural analyzer, with a stable code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable machine-matchable code (`QSS-W001`, `QSS-E002`, …).
    pub code: String,
    /// Severity class.
    pub severity: Severity,
    /// The net element the finding is about.
    pub subject: Subject,
    /// Human-readable one-line description, with element names resolved.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// The artifact of the `analyze` stage: net identity, the raw
/// [`StructuralReport`], and the derived compiler-style diagnostics.
///
/// Serialization is deterministic for a given net (all vectors are in
/// id order, diagnostics are emitted errors-first in id order), so the
/// JSON rendering is byte-identical whether produced locally or by a
/// `qssd` cache hit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Name of the analyzed system/net.
    pub system: String,
    /// Order-independent net fingerprint, as 16 lowercase hex digits
    /// (the `qssd` cache key).
    pub fingerprint: String,
    /// Number of places in the net.
    pub places: usize,
    /// Number of transitions in the net.
    pub transitions: usize,
    /// The raw structural facts the diagnostics were derived from.
    pub structural: StructuralReport,
    /// `true` when the net has a non-empty T-invariant basis (a
    /// necessary condition for cyclic schedules, Sec. 5.5.2).
    pub has_t_invariants: bool,
    /// The findings, errors first, each group in subject-id order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Builds the report for `net`, deriving diagnostics from the given
    /// structural facts. `has_t_invariants` comes from the caller (the
    /// facade computes it via [`qss_petri::t_invariant_basis`]).
    pub fn build(net: &PetriNet, structural: StructuralReport, has_t_invariants: bool) -> Self {
        let diagnostics = derive_diagnostics(net, &structural, has_t_invariants);
        AnalysisReport {
            system: net.name().to_string(),
            fingerprint: format!("{:016x}", qss_petri::net_fingerprint(net)),
            places: net.num_places(),
            transitions: net.num_transitions(),
            structural,
            has_t_invariants,
            diagnostics,
        }
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when the report contains at least one error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// `true` when the report is clean under the given policy: no
    /// errors, and — when `deny_warnings` — no warnings either.
    pub fn passes(&self, deny_warnings: bool) -> bool {
        if self.has_errors() {
            return false;
        }
        !deny_warnings || self.warning_count() == 0
    }

    /// Renders every diagnostic plus a trailing summary line, the way
    /// `qssc analyze` prints to stderr. Empty string when clean.
    pub fn render_human(&self) -> String {
        if self.diagnostics.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let (e, w) = (self.error_count(), self.warning_count());
        out.push_str(&format!(
            "analysis of `{}`: {} error(s), {} warning(s)\n",
            self.system, e, w
        ));
        out
    }

    /// Compact JSON rendering of the report.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialization is infallible")
    }

    /// Pretty-printed JSON rendering, newline-terminated (this is the
    /// exact byte stream `qssc analyze` writes to stdout).
    pub fn to_json_pretty(&self) -> String {
        let mut text =
            serde_json::to_string_pretty(self).expect("artifact serialization is infallible");
        text.push('\n');
        text
    }

    /// Rebuilds a report from its JSON rendering.
    ///
    /// # Errors
    /// Returns [`QssError::Config`] if the text is not a valid report.
    pub fn from_json(text: &str) -> Result<Self, QssError> {
        serde_json::from_str(text)
            .map_err(|e| QssError::Config(format!("invalid AnalysisReport JSON: {e}")))
    }
}

/// Derives the diagnostic list: errors first, each group in id order.
fn derive_diagnostics(
    net: &PetriNet,
    structural: &StructuralReport,
    has_t_invariants: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    for p in structural.unbounded_places() {
        out.push(Diagnostic {
            code: CODE_UNBOUNDED_PLACE.to_string(),
            severity: Severity::Error,
            subject: Subject::Place(p),
            message: format!(
                "place `{}` ({p}) is structurally unbounded: internal transitions alone \
                 can grow it without limit, so no finite schedule covers it",
                net.place(p).name
            ),
        });
    }

    if !has_t_invariants && net.num_transitions() > 0 {
        out.push(Diagnostic {
            code: CODE_NO_T_INVARIANTS.to_string(),
            severity: Severity::Error,
            subject: Subject::Net,
            message: "the net has no T-invariants, so no cyclic schedule exists".to_string(),
        });
    }

    for &t in &structural.dead_transitions {
        out.push(Diagnostic {
            code: CODE_DEAD_TRANSITION.to_string(),
            severity: Severity::Warning,
            subject: Subject::Transition(t),
            message: format!(
                "transition `{}` ({t}) is dead: it can never fire from the initial marking",
                net.transition(t).name
            ),
        });
    }

    for &p in &structural.never_marked_places {
        out.push(Diagnostic {
            code: CODE_NEVER_MARKED_PLACE.to_string(),
            severity: Severity::Warning,
            subject: Subject::Place(p),
            message: format!(
                "place `{}` ({p}) can never carry a token",
                net.place(p).name
            ),
        });
    }

    for siphon in structural.unmarked_siphons() {
        let names: Vec<String> = siphon
            .places
            .iter()
            .map(|&p| format!("`{}`", net.place(p).name))
            .collect();
        out.push(Diagnostic {
            code: CODE_UNMARKED_SIPHON.to_string(),
            severity: Severity::Warning,
            subject: Subject::Places(siphon.places.clone()),
            message: format!(
                "siphon {{{}}} carries no initial token: every transition consuming \
                 from it is permanently disabled",
                names.join(", ")
            ),
        });
    }

    for &p in &structural.free_choice_violations {
        out.push(Diagnostic {
            code: CODE_FREE_CHOICE_VIOLATION.to_string(),
            severity: Severity::Warning,
            subject: Subject::Place(p),
            message: format!(
                "place `{}` ({p}) violates the equal-conflict condition: its successor \
                 transitions have differing presets",
                net.place(p).name
            ),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_petri::{structural_report, NetBuilder, StructuralLimits, TransitionKind};

    fn dead_cycle_net() -> PetriNet {
        // a → t1 → b → t2 → a with no initial tokens: both transitions
        // are dead, {a, b} is an unmarked siphon.
        let mut b = NetBuilder::new("dead-cycle");
        let pa = b.place("a", 0);
        let pb = b.place("b", 0);
        let t1 = b.transition("t1", TransitionKind::Internal);
        let t2 = b.transition("t2", TransitionKind::Internal);
        b.arc_p2t(pa, t1, 1);
        b.arc_t2p(t1, pb, 1);
        b.arc_p2t(pb, t2, 1);
        b.arc_t2p(t2, pa, 1);
        b.build().unwrap()
    }

    #[test]
    fn dead_cycle_yields_warnings_and_stable_codes() {
        let net = dead_cycle_net();
        let structural = structural_report(&net, &StructuralLimits::default());
        let has_t = !qss_petri::t_invariant_basis(&net, 50_000).is_empty();
        let report = AnalysisReport::build(&net, structural, has_t);

        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&CODE_DEAD_TRANSITION));
        assert!(codes.contains(&CODE_UNMARKED_SIPHON));
        assert!(report.warning_count() >= 3); // 2 dead transitions + siphon
        assert!(report.passes(false));
        assert!(!report.passes(true));
    }

    #[test]
    fn errors_sort_before_warnings() {
        // Pump p → t → 2p under an internal transition with a token:
        // structurally unbounded (error), and the pump has T-invariants?
        // t alone has nonzero delta, so no T-invariant: two errors.
        let mut b = NetBuilder::new("pump");
        let p = b.place("p", 1);
        let t = b.transition("t", TransitionKind::Internal);
        b.arc_p2t(p, t, 1);
        b.arc_t2p(t, p, 2);
        let net = b.build().unwrap();
        let structural = structural_report(&net, &StructuralLimits::default());
        let has_t = !qss_petri::t_invariant_basis(&net, 50_000).is_empty();
        let report = AnalysisReport::build(&net, structural, has_t);

        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
        assert_eq!(report.diagnostics[0].code, CODE_UNBOUNDED_PLACE);
        assert!(report
            .diagnostics
            .windows(2)
            .all(|w| w[0].severity >= w[1].severity));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let net = dead_cycle_net();
        let structural = structural_report(&net, &StructuralLimits::default());
        let report = AnalysisReport::build(&net, structural, true);
        let back = AnalysisReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
        assert!(report.to_json_pretty().ends_with('\n'));
    }

    #[test]
    fn human_rendering_has_compiler_shape() {
        let net = dead_cycle_net();
        let structural = structural_report(&net, &StructuralLimits::default());
        let has_t = !qss_petri::t_invariant_basis(&net, 50_000).is_empty();
        let report = AnalysisReport::build(&net, structural, has_t);
        let text = report.render_human();
        assert!(text.contains("warning[QSS-W001]"));
        assert!(text.contains("error(s)"));
    }
}
