//! The `qssd` wire protocol and its client.
//!
//! `qssd` (the long-running scheduling service in `crates/server`) speaks
//! a **newline-delimited JSON** protocol over TCP: every request is one
//! JSON object on one line, every response is one JSON object on one
//! line. By default (protocol version 1) responses are written in
//! request order per connection; a request carrying `"version": 2` opts
//! its connection into **out-of-order delivery**, where every response
//! is written the moment it completes and is correlated by the echoed
//! `id` ([`Client::send_many`] drives this pipelined mode). The full
//! format, with one worked example per request kind, is documented in
//! `PROTOCOL.md` at the repository root.
//!
//! This module owns everything both endpoints share — the parsed
//! [`Request`], the typed [`WireError`]/[`ErrorKind`], the bounded line
//! reader, the response encoding — plus the [`Client`]. It lives in the
//! `qss` facade (rather than the server crate) so the `qssc` CLI can
//! drive a warm server without depending on `qss_server`, which itself
//! depends on this crate; `qss_server` re-exports [`Client`] as
//! `qss_server::Client`.
//!
//! ```no_run
//! use qss::remote::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7700")?;
//! let reply = client.generate("PROCESS copy (In DPORT a, Out DPORT b) { \
//!     int x; while (1) { READ_DATA(a, x, 1); WRITE_DATA(b, x, 1); } }", None)?;
//! println!("net {} cached={}", reply.fingerprint, reply.cached);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{EnvEvent, PipelineConfig, QssError, Stage};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Default cap on one *request* line, enforced by the server. Oversized
/// lines are drained and answered with an [`ErrorKind::TooLarge`] error
/// without dropping the connection.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Cap on one *response* line, enforced by the client. Responses embed
/// whole artifacts (serialized nets, schedules, generated C), so the
/// bound is far above the request cap.
pub const CLIENT_MAX_LINE_BYTES: usize = 256 << 20;

// ---------------------------------------------------------------- errors

/// The typed error classes of the wire protocol.
///
/// The first group is produced by the protocol layer itself; the second
/// mirrors [`Stage`], so a pipeline failure on the server reports the
/// same stage it would report locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The request line was not a JSON object of the documented shape.
    Protocol,
    /// The request line exceeded the server's line limit.
    TooLarge,
    /// The `kind` field named no known request kind.
    UnknownKind,
    /// The worker queue was full — back off and retry.
    Busy,
    /// A deadline ran out: the request's schedule-search budget expired,
    /// the request waited in the queue past its deadline, or a coalesced
    /// follower's wait timed out.
    Timeout,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// An unexpected server-side failure (a bug, not a bad request).
    Internal,
    /// FlowC lexing/parsing failed.
    Parse,
    /// Building or linking the system Petri net failed.
    Link,
    /// The quasi-static schedule search failed.
    Schedule,
    /// Sequential-task code generation failed.
    Generate,
    /// Executing the workload failed.
    Simulate,
    /// The embedded `config` object was invalid.
    Config,
    /// A file-system error (server-side I/O).
    Io,
}

impl ErrorKind {
    /// The wire name of the kind (`"busy"`, `"too_large"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::UnknownKind => "unknown_kind",
            ErrorKind::Busy => "busy",
            ErrorKind::Timeout => "timeout",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
            ErrorKind::Parse => "parse",
            ErrorKind::Link => "link",
            ErrorKind::Schedule => "schedule",
            ErrorKind::Generate => "generate",
            ErrorKind::Simulate => "simulate",
            ErrorKind::Config => "config",
            ErrorKind::Io => "io",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "protocol" => ErrorKind::Protocol,
            "too_large" => ErrorKind::TooLarge,
            "unknown_kind" => ErrorKind::UnknownKind,
            "busy" => ErrorKind::Busy,
            "timeout" => ErrorKind::Timeout,
            "shutting_down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            "parse" => ErrorKind::Parse,
            "link" => ErrorKind::Link,
            "schedule" => ErrorKind::Schedule,
            "generate" => ErrorKind::Generate,
            "simulate" => ErrorKind::Simulate,
            "config" => ErrorKind::Config,
            "io" => ErrorKind::Io,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed protocol-level error: what the `error` object of a failed
/// response carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The error class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error of the given kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
        }
    }

    /// A malformed-request error.
    pub fn protocol(message: impl Into<String>) -> Self {
        WireError::new(ErrorKind::Protocol, message)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for WireError {}

impl From<QssError> for WireError {
    fn from(e: QssError) -> Self {
        // A blown search budget is a deadline condition, not a property
        // of the net — it maps to `timeout`, never `schedule`.
        if matches!(e, QssError::BudgetExhausted(_)) {
            return WireError::new(ErrorKind::Timeout, e.to_string());
        }
        let kind = match e.stage() {
            Stage::Parse => ErrorKind::Parse,
            Stage::Link => ErrorKind::Link,
            Stage::Schedule => ErrorKind::Schedule,
            Stage::Generate => ErrorKind::Generate,
            Stage::Simulate => ErrorKind::Simulate,
            Stage::Config => ErrorKind::Config,
            Stage::Io => ErrorKind::Io,
        };
        WireError::new(kind, e.to_string())
    }
}

// -------------------------------------------------------------- requests

/// The request kinds of the protocol, mirroring the pipeline stages plus
/// the two control requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Parse and link only; returns the summary `qssc check` prints.
    Check,
    /// Parse, link and run the structural static analyzer; returns the
    /// `AnalysisReport` (cached server-side by net fingerprint).
    Analyze,
    /// Run stage 1 and return the `LinkedArtifact` with its fingerprint.
    Link,
    /// Run through stage 2 and return the `ScheduleArtifact`.
    Schedule,
    /// Run through stage 3 and return the `TaskArtifact`.
    Generate,
    /// Run through stage 4 on the supplied events; returns the
    /// `SimArtifact`.
    Simulate,
    /// Report server/cache/coalescing counters (handled out-of-queue).
    Stats,
    /// Report the full metrics registry — every counter plus per-kind
    /// latency histogram quantiles (handled out-of-queue).
    Metrics,
    /// Graceful shutdown: drain in-flight work, then exit
    /// (handled out-of-queue).
    Shutdown,
}

impl RequestKind {
    /// The wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Check => "check",
            RequestKind::Analyze => "analyze",
            RequestKind::Link => "link",
            RequestKind::Schedule => "schedule",
            RequestKind::Generate => "generate",
            RequestKind::Simulate => "simulate",
            RequestKind::Stats => "stats",
            RequestKind::Metrics => "metrics",
            RequestKind::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "check" => RequestKind::Check,
            "analyze" => RequestKind::Analyze,
            "link" => RequestKind::Link,
            "schedule" => RequestKind::Schedule,
            "generate" => RequestKind::Generate,
            "simulate" => RequestKind::Simulate,
            "stats" => RequestKind::Stats,
            "metrics" => RequestKind::Metrics,
            "shutdown" => RequestKind::Shutdown,
            _ => return None,
        })
    }

    /// Whether requests of this kind must carry FlowC `source` text.
    pub fn needs_source(self) -> bool {
        !matches!(
            self,
            RequestKind::Stats | RequestKind::Metrics | RequestKind::Shutdown
        )
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Newest protocol version a `qssd` understands. Version 1 (the
/// default) delivers responses in request order per connection; version
/// 2 delivers each response as soon as it completes, correlated by `id`.
pub const PROTOCOL_VERSION_MAX: u32 = 2;

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Protocol version this request speaks: `None` or `Some(1)` keeps
    /// the connection on in-order delivery, `Some(2)` switches it to
    /// out-of-order delivery (sticky for the rest of the connection).
    pub version: Option<u32>,
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// What to do.
    pub kind: RequestKind,
    /// Whole-system FlowC source text (required unless
    /// [`RequestKind::needs_source`] is false). `qssc remote` forwards
    /// file or stdin content here unchanged.
    pub source: Option<String>,
    /// Pipeline configuration; the server uses
    /// [`PipelineConfig::default`] when absent.
    pub config: Option<PipelineConfig>,
    /// Environment events for `simulate`.
    pub events: Vec<EnvEvent>,
    /// `simulate` only: also embed the stage-3 `TaskArtifact` in the
    /// result (as a sibling `task` field), so a caller that wants both
    /// the generated tasks and the execution comparison — `qssc remote
    /// build --events` — needs one request instead of running the whole
    /// pipeline twice on the server.
    pub include_task: bool,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    /// [`ErrorKind::Protocol`] for non-JSON input or a malformed shape,
    /// [`ErrorKind::UnknownKind`] for an unrecognized `kind`, and
    /// [`ErrorKind::Config`] for an invalid embedded `config`.
    pub fn parse_line(line: &str) -> Result<Request, WireError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| WireError::protocol(format!("invalid JSON: {e}")))?;
        Request::from_value(&value)
    }

    /// Parses a request from an already-decoded JSON value.
    ///
    /// # Errors
    /// Same contract as [`Request::parse_line`].
    pub fn from_value(value: &Value) -> Result<Request, WireError> {
        let object = value
            .as_object()
            .ok_or_else(|| WireError::protocol("request must be a JSON object"))?;
        for (key, _) in object {
            if !matches!(
                key.as_str(),
                "version" | "id" | "kind" | "source" | "config" | "events" | "include_task"
            ) {
                return Err(WireError::protocol(format!("unknown field `{key}`")));
            }
        }
        let version = match value.get("version") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let version = v
                    .as_u64()
                    .ok_or_else(|| WireError::protocol("`version` must be an unsigned integer"))?;
                if !(1..=u64::from(PROTOCOL_VERSION_MAX)).contains(&version) {
                    return Err(WireError::protocol(format!(
                        "unsupported protocol `version` {version} (this server speaks 1..={PROTOCOL_VERSION_MAX})"
                    )));
                }
                Some(version as u32)
            }
        };
        let id = match value.get("id") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| WireError::protocol("`id` must be an unsigned integer"))?,
            ),
        };
        let kind_name = value
            .get("kind")
            .ok_or_else(|| WireError::protocol("missing `kind`"))?
            .as_str()
            .ok_or_else(|| WireError::protocol("`kind` must be a string"))?;
        let kind = RequestKind::from_name(kind_name).ok_or_else(|| {
            WireError::new(
                ErrorKind::UnknownKind,
                format!("unknown request kind `{kind_name}`"),
            )
        })?;
        let source = match value.get("source") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| WireError::protocol("`source` must be a string"))?
                    .to_string(),
            ),
        };
        if kind.needs_source() && source.is_none() {
            return Err(WireError::protocol(format!(
                "request kind `{kind}` needs a `source` field"
            )));
        }
        let config =
            match value.get("config") {
                None | Some(Value::Null) => None,
                Some(v) => Some(serde_json::from_value::<PipelineConfig>(v.clone()).map_err(
                    |e| WireError::new(ErrorKind::Config, format!("invalid `config`: {e}")),
                )?),
            };
        let events = match value.get("events") {
            None | Some(Value::Null) => Vec::new(),
            Some(v) => serde_json::from_value::<Vec<EnvEvent>>(v.clone()).map_err(|e| {
                WireError::protocol(format!(
                    "`events` must be an array of {{process, port, values}} objects: {e}"
                ))
            })?,
        };
        let include_task = match value.get("include_task") {
            None | Some(Value::Null) => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| WireError::protocol("`include_task` must be a boolean"))?,
        };
        Ok(Request {
            version,
            id,
            kind,
            source,
            config,
            events,
            include_task,
        })
    }

    /// Encodes the request as a JSON value (the client side of
    /// [`Request::from_value`]).
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = Vec::new();
        if let Some(version) = self.version {
            pairs.push(("version".into(), Value::Number(u64::from(version).into())));
        }
        if let Some(id) = self.id {
            pairs.push(("id".into(), Value::Number(id.into())));
        }
        pairs.push(("kind".into(), Value::String(self.kind.name().into())));
        if let Some(source) = &self.source {
            pairs.push(("source".into(), Value::String(source.clone())));
        }
        if let Some(config) = &self.config {
            pairs.push(("config".into(), config.to_value()));
        }
        if !self.events.is_empty() {
            pairs.push(("events".into(), self.events.to_value()));
        }
        if self.include_task {
            pairs.push(("include_task".into(), Value::Bool(true)));
        }
        Value::Object(pairs)
    }
}

// ------------------------------------------------------------- responses

/// Encodes a success response (without the trailing newline). Takes the
/// payload by value — it can be a whole artifact, and cloning it per
/// response would be the most expensive line of the server.
pub fn response_ok(id: Option<u64>, result: Value) -> String {
    let id_value = match id {
        Some(id) => Value::Number(id.into()),
        None => Value::Null,
    };
    let response = Value::Object(vec![
        ("id".into(), id_value),
        ("ok".into(), Value::Bool(true)),
        ("result".into(), result),
    ]);
    serde_json::to_string(&response).expect("response serialization is infallible")
}

/// Encodes an error response (without the trailing newline).
pub fn response_error(id: Option<u64>, error: &WireError) -> String {
    let id_value = match id {
        Some(id) => Value::Number(id.into()),
        None => Value::Null,
    };
    let response = Value::Object(vec![
        ("id".into(), id_value),
        ("ok".into(), Value::Bool(false)),
        (
            "error".into(),
            Value::Object(vec![
                ("kind".into(), Value::String(error.kind.name().into())),
                ("message".into(), Value::String(error.message.clone())),
            ]),
        ),
    ]);
    serde_json::to_string(&response).expect("response serialization is infallible")
}

/// Decodes one response line into `(echoed id, result-or-error)`.
///
/// # Errors
/// Returns a message when the line is not a response-shaped JSON object
/// (the *transport* failed, as opposed to the request having failed).
#[allow(clippy::type_complexity)]
pub fn parse_response(line: &str) -> Result<(Option<u64>, Result<Value, WireError>), String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("response is not valid JSON: {e}"))?;
    let id = value.get("id").and_then(Value::as_u64);
    let ok = value
        .get("ok")
        .and_then(Value::as_bool)
        .ok_or("response has no boolean `ok` field")?;
    if ok {
        // Move the payload out instead of cloning it: responses embed
        // whole artifacts, and this sits on every request's return path.
        let result = take_field(value, "result").ok_or("ok response has no `result`")?;
        Ok((id, Ok(result)))
    } else {
        let error = value.get("error").ok_or("error response has no `error`")?;
        let kind = error
            .get("kind")
            .and_then(Value::as_str)
            .and_then(ErrorKind::from_name)
            .unwrap_or(ErrorKind::Internal);
        let message = error
            .get("message")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        Ok((id, Err(WireError::new(kind, message))))
    }
}

/// Moves field `key` out of an object value (no tree clone).
fn take_field(value: Value, key: &str) -> Option<Value> {
    match value {
        Value::Object(pairs) => pairs.into_iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

// --------------------------------------------------------------- line IO

/// Outcome of one bounded line read.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the terminating `\n`).
    Line(String),
    /// The line exceeded the byte limit; the rest of it was drained so
    /// the stream is positioned at the next line.
    TooLarge,
    /// End of stream before any byte of a new line.
    Eof,
    /// A deadline expired while waiting for (the rest of) the line —
    /// only produced by [`read_line_bounded_with_tick`] when its tick
    /// callback gives up.
    TimedOut,
}

/// Reads one `\n`-terminated line of at most `max` bytes.
///
/// Oversized lines are consumed to their end and reported as
/// [`LineRead::TooLarge`], keeping the stream usable for the next
/// request — the protocol's way of surviving a hostile or buggy client
/// without dropping the connection.
///
/// # Errors
/// Propagates transport errors from the underlying reader.
pub fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> io::Result<LineRead> {
    read_line_inner(reader, max, None)
}

/// Like [`read_line_bounded`], on a reader whose `fill_buf` can time out
/// (a `TcpStream` with a read timeout). Every time the underlying read
/// times out, `tick` is called with whether a line is in progress (some
/// bytes arrived but no `\n` yet); returning `false` abandons the read
/// as [`LineRead::TimedOut`], returning `true` keeps waiting.
///
/// This is how the server implements both its idle reaper (no line in
/// progress for too long) and its slowloris guard (a line dribbling in
/// for too long) with one blocking thread and no timer wheel.
///
/// # Errors
/// Propagates transport errors other than the timeout kinds.
pub fn read_line_bounded_with_tick(
    reader: &mut impl BufRead,
    max: usize,
    tick: &mut dyn FnMut(bool) -> bool,
) -> io::Result<LineRead> {
    read_line_inner(reader, max, Some(tick))
}

fn read_line_inner(
    reader: &mut impl BufRead,
    max: usize,
    mut tick: Option<&mut dyn FnMut(bool) -> bool>,
) -> io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let (consumed, terminated, at_eof) = {
            let available = match reader.fill_buf() {
                Ok(available) => available,
                // A read timeout surfaces as `WouldBlock` or `TimedOut`
                // depending on the platform.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) && tick.is_some() =>
                {
                    let started = !line.is_empty() || oversized;
                    let keep_waiting = tick.as_mut().map(|tick| tick(started)).unwrap_or(false);
                    if keep_waiting {
                        continue;
                    }
                    return Ok(LineRead::TimedOut);
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                (0, false, true)
            } else {
                match available.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        if !oversized {
                            line.extend_from_slice(&available[..i]);
                        }
                        (i + 1, true, false)
                    }
                    None => {
                        if !oversized {
                            line.extend_from_slice(available);
                        }
                        (available.len(), false, false)
                    }
                }
            }
        };
        reader.consume(consumed);
        // The limit counts content bytes only (the `\n` is excluded).
        if line.len() > max {
            oversized = true;
            line.clear();
        }
        if terminated || at_eof {
            if oversized {
                // At EOF the oversized tail was fully drained too.
                return Ok(LineRead::TooLarge);
            }
            if at_eof && line.is_empty() {
                return Ok(LineRead::Eof);
            }
            // EOF with a partial unterminated line surfaces it as a line,
            // so `printf '...' | nc`-style clients without trailing
            // newlines still work.
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()));
        }
    }
}

// ------------------------------------------------------------ statistics

/// Counters of the server's `ContextCache`, inside [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests served with a cached `SearchContext`.
    pub hits: u64,
    /// Requests that had to build their `SearchContext`.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Fingerprint matches rejected by the ordered-digest guard (counted
    /// as misses too).
    pub collisions: u64,
    /// Live entries.
    pub entries: u64,
    /// Configured capacity.
    pub capacity: u64,
}

/// The result payload of a `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests parsed (including ones answered with an error).
    pub requests: u64,
    /// Error responses written.
    pub errors: u64,
    /// Requests rejected with `busy` because the queue was full.
    pub busy_rejections: u64,
    /// Schedule searches that attached to another request's in-flight
    /// search instead of running their own.
    pub coalesced: u64,
    /// `timeout` responses written (expired deadlines, blown search
    /// budgets, coalesced waits that timed out).
    pub timeouts: u64,
    /// Schedule searches a leader gave up on because a deadline or
    /// budget cancelled them mid-search.
    pub cancelled: u64,
    /// Schedule searches actually spawned (coalesced followers share
    /// their leader's search, so under duplicate-heavy load this stays
    /// far below the schedule-bearing request count).
    pub searches: u64,
    /// Worker threads (also the bound on concurrently running schedule
    /// searches).
    pub workers: u64,
    /// Bound of the job queue.
    pub queue_capacity: u64,
    /// Context-cache counters.
    pub cache: CacheStats,
}

/// The result payload of a `check` request (the remote counterpart of
/// `qssc check`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckSummary {
    /// Net fingerprint, as 16 lowercase hex digits.
    pub fingerprint: String,
    /// System name.
    pub system: String,
    /// Number of processes.
    pub processes: u64,
    /// Number of channels.
    pub channels: u64,
    /// Places of the linked net.
    pub places: u64,
    /// Transitions of the linked net.
    pub transitions: u64,
    /// Uncontrollable environment inputs.
    pub uncontrollable_inputs: u64,
    /// Choice places.
    pub choice_places: u64,
}

/// Formats a fingerprint the way the wire protocol carries it.
pub fn fingerprint_hex(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

// ---------------------------------------------------------------- client

/// A client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The TCP transport failed (connect, write, read, EOF mid-response).
    Io(String),
    /// The server's bytes did not decode as a protocol response.
    Protocol(String),
    /// The server answered with a typed error.
    Server(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "transport: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// An artifact-bearing reply (`link`, `schedule`, `generate`,
/// `simulate`).
#[derive(Debug, Clone)]
pub struct RemoteArtifact {
    /// The linked net's fingerprint, as 16 hex digits.
    pub fingerprint: String,
    /// Whether the server reused a cached `SearchContext` for this net
    /// (always `false` for `link`, which needs no context).
    pub cached: bool,
    /// The artifact itself, byte-for-byte the JSON the corresponding
    /// local pipeline stage would serialize (re-encode with
    /// [`RemoteArtifact::artifact_json`] to compare or archive it, or
    /// decode it with the artifact type's `from_json`/`Deserialize`).
    pub artifact: Value,
    /// The sibling `TaskArtifact` of a `simulate` reply, present only
    /// when the request set `include_task`
    /// ([`Client::simulate_with_task`]).
    pub task: Option<Value>,
}

impl RemoteArtifact {
    /// The artifact as compact JSON — identical bytes to the local
    /// stage's `to_json()`.
    pub fn artifact_json(&self) -> String {
        serde_json::to_string(&self.artifact).expect("value serialization is infallible")
    }

    fn from_result(result: Value) -> Result<Self, ClientError> {
        let Value::Object(pairs) = result else {
            return Err(ClientError::Protocol("result is not an object".into()));
        };
        let mut fingerprint = None;
        let mut cached = false;
        let mut artifact = None;
        let mut task = None;
        for (key, value) in pairs {
            match key.as_str() {
                "fingerprint" => fingerprint = value.as_str().map(str::to_string),
                "cached" => cached = value.as_bool().unwrap_or(false),
                "artifact" => artifact = Some(value),
                "task" => task = Some(value),
                _ => {}
            }
        }
        Ok(RemoteArtifact {
            fingerprint: fingerprint
                .ok_or_else(|| ClientError::Protocol("result has no `fingerprint`".into()))?,
            cached,
            artifact: artifact
                .ok_or_else(|| ClientError::Protocol("result has no `artifact`".into()))?,
            task,
        })
    }
}

/// A connection to a running `qssd`, issuing one request at a time.
///
/// Connections are cheap and long-lived; the server keeps them open
/// across any number of requests, including failed ones.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

/// Default bound on how long [`Client::connect`] waits for one address —
/// long enough for any healthy network, short enough that a blackholed
/// server fails the caller fast instead of pinning it for minutes.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

impl Client {
    /// Connects to a `qssd` at `addr`, bounded by
    /// [`DEFAULT_CONNECT_TIMEOUT`].
    ///
    /// # Errors
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with_timeout(addr, DEFAULT_CONNECT_TIMEOUT)
    }

    /// Connects to a `qssd` at `addr`, waiting at most `timeout` per
    /// resolved address.
    ///
    /// # Errors
    /// Propagates connection errors; if `addr` resolves to several
    /// addresses the error of the last attempt is reported.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let mut last_error = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Client {
                        reader,
                        writer: stream,
                        next_id: 1,
                    });
                }
                Err(e) => last_error = Some(e),
            }
        }
        Err(last_error.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Sends one raw line (newline appended if missing) and returns the
    /// raw response line. The escape hatch for tests and protocol fuzzing
    /// — normal callers use the typed methods.
    ///
    /// # Errors
    /// Fails on transport errors or if the server closes the connection.
    pub fn raw_line(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        match read_line_bounded(&mut self.reader, CLIENT_MAX_LINE_BYTES)? {
            LineRead::Line(line) => Ok(line),
            LineRead::TooLarge => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response exceeded the client line limit",
            )),
            LineRead::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            // The client reads without a tick callback, so a timeout can
            // only come from a read timeout the caller set on the socket.
            LineRead::TimedOut => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out waiting for the response",
            )),
        }
    }

    fn call(&mut self, request: Request) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id: Some(id),
            ..request
        };
        let line = serde_json::to_string(&request.to_value())
            .expect("request serialization is infallible");
        let response = self.raw_line(&line)?;
        let (echoed, result) = parse_response(&response).map_err(ClientError::Protocol)?;
        // An error with no echoed id is still *our* error: the server
        // answers `id: null` when it could not parse the request far
        // enough to know the id (e.g. `too_large`), and requests are
        // strictly request/response-paired per connection. Surfacing the
        // typed error beats a confusing id-mismatch report.
        if let (Err(error), None) = (&result, echoed) {
            return Err(ClientError::Server(error.clone()));
        }
        if echoed != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id {echoed:?} does not match request id {id}"
            )));
        }
        result.map_err(ClientError::Server)
    }

    fn pipeline_request(
        &mut self,
        kind: RequestKind,
        source: &str,
        config: Option<&PipelineConfig>,
        events: &[EnvEvent],
        include_task: bool,
    ) -> Result<Value, ClientError> {
        self.call(Request {
            version: None,
            id: None,
            kind,
            source: Some(source.to_string()),
            config: config.cloned(),
            events: events.to_vec(),
            include_task,
        })
    }

    /// Writes one request without waiting for its response, switching
    /// the connection to protocol version 2 (out-of-order delivery). The
    /// request's `id` is overwritten with a fresh connection-unique one
    /// and returned — match it against [`Client::recv`].
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn send(&mut self, request: &Request) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            version: Some(2),
            id: Some(id),
            ..request.clone()
        };
        let line = serde_json::to_string(&request.to_value())
            .expect("request serialization is infallible");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Reads the next response in *arrival* order — on a version-2
    /// connection that is completion order, not request order. Returns
    /// the echoed id and the typed result.
    ///
    /// # Errors
    /// [`ClientError::Io`] on transport failure, [`ClientError::Protocol`]
    /// when the line does not decode as a response or carries no id (a
    /// pipelined connection cannot correlate an id-less response).
    pub fn recv(&mut self) -> Result<(u64, Result<Value, WireError>), ClientError> {
        let line = match read_line_bounded(&mut self.reader, CLIENT_MAX_LINE_BYTES)
            .map_err(ClientError::from)?
        {
            LineRead::Line(line) => line,
            LineRead::TooLarge => {
                return Err(ClientError::Protocol(
                    "response exceeded the client line limit".into(),
                ))
            }
            LineRead::Eof => {
                return Err(ClientError::Io("server closed the connection".into()));
            }
            LineRead::TimedOut => {
                return Err(ClientError::Io("timed out waiting for a response".into()));
            }
        };
        let (id, result) = parse_response(&line).map_err(ClientError::Protocol)?;
        match id {
            Some(id) => Ok((id, result)),
            // An id-less response can still be a typed error for a
            // request the server could not attribute; surface it.
            None => match result {
                Err(error) => Err(ClientError::Server(error)),
                Ok(_) => Err(ClientError::Protocol(
                    "pipelined response carries no id".into(),
                )),
            },
        }
    }

    /// Pipelines `requests` on this connection (protocol version 2):
    /// writes every line up front, then reads until each request has its
    /// response, demultiplexing by echoed id. The results come back in
    /// *request* order regardless of the order the server completed them
    /// in — out-of-order completion is the entire point: a slow
    /// `schedule` no longer blocks the `check`s queued behind it.
    ///
    /// # Errors
    /// Fails on transport errors, on a response whose id matches no
    /// outstanding request, and on duplicated response ids. Per-request
    /// failures are returned in-band as `Err(WireError)` entries.
    #[allow(clippy::type_complexity)]
    pub fn send_many(
        &mut self,
        requests: &[Request],
    ) -> Result<Vec<Result<Value, WireError>>, ClientError> {
        let mut ids = Vec::with_capacity(requests.len());
        for request in requests {
            ids.push(self.send(request)?);
        }
        let mut results: Vec<Option<Result<Value, WireError>>> = vec![None; requests.len()];
        for _ in 0..requests.len() {
            let (id, result) = self.recv()?;
            let slot = ids.iter().position(|&sent| sent == id).ok_or_else(|| {
                ClientError::Protocol(format!("response id {id} matches no pipelined request"))
            })?;
            if results[slot].is_some() {
                return Err(ClientError::Protocol(format!(
                    "server answered request id {id} twice"
                )));
            }
            results[slot] = Some(result);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every slot was filled by the read loop"))
            .collect())
    }

    /// Parses and links `source` remotely; returns the summary.
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn check(&mut self, source: &str) -> Result<CheckSummary, ClientError> {
        let result = self.pipeline_request(RequestKind::Check, source, None, &[], false)?;
        serde_json::from_value(result)
            .map_err(|e| ClientError::Protocol(format!("malformed check summary: {e}")))
    }

    /// Runs the structural static analyzer remotely; the artifact is an
    /// `AnalysisReport`, byte-identical to the one `qssc analyze`
    /// computes locally (the server caches it by net fingerprint —
    /// [`RemoteArtifact::cached`] reports a hit).
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn analyze(&mut self, source: &str) -> Result<RemoteArtifact, ClientError> {
        let result = self.pipeline_request(RequestKind::Analyze, source, None, &[], false)?;
        RemoteArtifact::from_result(result)
    }

    /// Runs stage 1 remotely; the artifact is a `LinkedArtifact`.
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn link(
        &mut self,
        source: &str,
        config: Option<&PipelineConfig>,
    ) -> Result<RemoteArtifact, ClientError> {
        let result = self.pipeline_request(RequestKind::Link, source, config, &[], false)?;
        RemoteArtifact::from_result(result)
    }

    /// Runs through stage 2 remotely; the artifact is a
    /// `ScheduleArtifact`.
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn schedule(
        &mut self,
        source: &str,
        config: Option<&PipelineConfig>,
    ) -> Result<RemoteArtifact, ClientError> {
        let result = self.pipeline_request(RequestKind::Schedule, source, config, &[], false)?;
        RemoteArtifact::from_result(result)
    }

    /// Runs through stage 3 remotely; the artifact is a `TaskArtifact`.
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn generate(
        &mut self,
        source: &str,
        config: Option<&PipelineConfig>,
    ) -> Result<RemoteArtifact, ClientError> {
        let result = self.pipeline_request(RequestKind::Generate, source, config, &[], false)?;
        RemoteArtifact::from_result(result)
    }

    /// Runs through stage 4 remotely on `events`; the artifact is a
    /// `SimArtifact`.
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn simulate(
        &mut self,
        source: &str,
        config: Option<&PipelineConfig>,
        events: &[EnvEvent],
    ) -> Result<RemoteArtifact, ClientError> {
        let result = self.pipeline_request(RequestKind::Simulate, source, config, events, false)?;
        RemoteArtifact::from_result(result)
    }

    /// Like [`Client::simulate`], but also asks the server to embed the
    /// stage-3 `TaskArtifact` in the reply
    /// ([`RemoteArtifact::task`]) — one request where `generate` +
    /// `simulate` would run the pipeline twice. `qssc remote build
    /// --events` uses this.
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn simulate_with_task(
        &mut self,
        source: &str,
        config: Option<&PipelineConfig>,
        events: &[EnvEvent],
    ) -> Result<RemoteArtifact, ClientError> {
        let result = self.pipeline_request(RequestKind::Simulate, source, config, events, true)?;
        let reply = RemoteArtifact::from_result(result)?;
        if reply.task.is_none() {
            return Err(ClientError::Protocol(
                "server did not honour `include_task`".into(),
            ));
        }
        Ok(reply)
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let result = self.call(Request {
            version: None,
            id: None,
            kind: RequestKind::Stats,
            source: None,
            config: None,
            events: Vec::new(),
            include_task: false,
        })?;
        serde_json::from_value(result)
            .map_err(|e| ClientError::Protocol(format!("malformed stats: {e}")))
    }

    /// Fetches the server's full metrics registry — every counter plus
    /// the per-kind latency histograms — as the raw JSON snapshot the
    /// `metrics` protocol kind returns (see `PROTOCOL.md`).
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.call(Request {
            version: None,
            id: None,
            kind: RequestKind::Metrics,
            source: None,
            config: None,
            events: Vec::new(),
            include_task: false,
        })
    }

    /// Asks the server to drain in-flight work and exit.
    ///
    /// # Errors
    /// [`ClientError::Server`] carries the typed wire error.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Request {
            version: None,
            id: None,
            kind: RequestKind::Shutdown,
            source: None,
            config: None,
            events: Vec::new(),
            include_task: false,
        })?;
        Ok(())
    }
}

// ----------------------------------------------------------------- retry

impl ClientError {
    /// Whether retrying the same request against the same server can
    /// plausibly succeed: `busy` (the queue was momentarily full) and
    /// transport failures (connection refused during a restart, a broken
    /// pipe from a server that died mid-request). Typed server errors
    /// other than `busy` are deterministic — the same request will fail
    /// the same way — and protocol decode failures mean the peer is not
    /// speaking our protocol at all.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Server(e) => e.kind == ErrorKind::Busy,
            ClientError::Protocol(_) => false,
        }
    }
}

/// Retry schedule for [`with_retry`]: truncated exponential backoff with
/// deterministic jitter. The jitter stream is a pure function of `seed`,
/// so a fleet of clients spreads its retries while every individual run
/// replays exactly (the property the e2e suite pins down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first one included (`0` is treated as `1`).
    pub max_attempts: u32,
    /// Delay budget of the first retry (before jitter).
    pub base_delay: Duration,
    /// Cap on the per-retry delay budget.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
    /// Overall wall-clock bound across all attempts and sleeps; `None`
    /// bounds the run by `max_attempts` alone.
    pub overall_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0,
            overall_deadline: Some(Duration::from_secs(30)),
        }
    }
}

impl RetryPolicy {
    /// The backoff state machine of this policy.
    pub fn backoff(&self) -> Backoff {
        Backoff {
            policy: *self,
            attempt: 0,
            rng: self.seed,
        }
    }
}

/// Iterator-like backoff state: one [`Backoff::next_delay`] call per
/// failed attempt.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// The sleep before the next attempt, or `None` once the policy's
    /// attempts are used up. The delay before retry *k* (1-based) is
    /// drawn from `[budget/2, budget]` where
    /// `budget = min(base_delay · 2^(k-1), max_delay)` — "equal jitter",
    /// which decorrelates clients without ever collapsing to zero sleep.
    pub fn next_delay(&mut self) -> Option<Duration> {
        self.attempt += 1;
        if self.attempt >= self.policy.max_attempts.max(1) {
            return None;
        }
        let exp = self.attempt.saturating_sub(1).min(32);
        let budget = self
            .policy
            .base_delay
            .saturating_mul(1u32 << exp.min(31))
            .min(self.policy.max_delay);
        let budget_ms = budget.as_millis() as u64;
        let half = budget_ms / 2;
        let jitter = if budget_ms > half {
            splitmix64(&mut self.rng) % (budget_ms - half + 1)
        } else {
            0
        };
        Some(Duration::from_millis(half + jitter))
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

/// The splitmix64 step: passes through every 64-bit state exactly once,
/// good enough jitter, zero dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `op` against a [`Client`] for `addr`, retrying per `policy` on
/// [retryable](ClientError::is_retryable) failures. The connection is
/// established lazily and re-established after any transport error (the
/// old stream may hold a half-written request). Non-retryable errors,
/// exhausted attempts and the overall deadline all surface the *last*
/// error.
///
/// # Errors
/// The last [`ClientError`] once the policy gives up.
pub fn with_retry<T>(
    addr: impl ToSocketAddrs,
    policy: &RetryPolicy,
    mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let started = Instant::now();
    let mut backoff = policy.backoff();
    let mut client: Option<Client> = None;
    loop {
        let result = match &mut client {
            Some(c) => op(c),
            None => match Client::connect_with_timeout(&addr, DEFAULT_CONNECT_TIMEOUT) {
                Ok(c) => op(client.insert(c)),
                Err(e) => Err(ClientError::from(e)),
            },
        };
        let error = match result {
            Ok(value) => return Ok(value),
            Err(e) => e,
        };
        if matches!(error, ClientError::Io(_)) {
            // The stream state is unknown after a transport error;
            // reconnect rather than desynchronize the protocol.
            client = None;
        }
        if !error.is_retryable() {
            return Err(error);
        }
        let Some(delay) = backoff.next_delay() else {
            return Err(error);
        };
        if let Some(overall) = policy.overall_deadline {
            if started.elapsed() + delay > overall {
                return Err(error);
            }
        }
        std::thread::sleep(delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let request = Request {
            version: Some(2),
            id: Some(7),
            kind: RequestKind::Simulate,
            source: Some("PROCESS p () {}".into()),
            config: Some(PipelineConfig::default()),
            events: vec![EnvEvent::new("p", "a", 3)],
            include_task: true,
        };
        let line = serde_json::to_string(&request.to_value()).unwrap();
        let back = Request::parse_line(&line).unwrap();
        assert_eq!(back.version, Some(2));
        assert_eq!(back.id, Some(7));
        assert_eq!(back.kind, RequestKind::Simulate);
        assert_eq!(back.source, request.source);
        assert_eq!(back.config, request.config);
        assert_eq!(back.events, request.events);
        assert!(back.include_task);
    }

    #[test]
    fn typed_parse_errors() {
        let kind = |line: &str| Request::parse_line(line).unwrap_err().kind;
        assert_eq!(kind("not json"), ErrorKind::Protocol);
        assert_eq!(kind("[1,2]"), ErrorKind::Protocol);
        assert_eq!(kind("{\"kind\": \"frobnicate\"}"), ErrorKind::UnknownKind);
        assert_eq!(kind("{\"kind\": \"check\"}"), ErrorKind::Protocol); // no source
        assert_eq!(kind("{\"source\": \"x\"}"), ErrorKind::Protocol); // no kind
        assert_eq!(
            kind("{\"kind\": \"check\", \"source\": \"x\", \"bogus\": 1}"),
            ErrorKind::Protocol
        );
        assert_eq!(
            kind("{\"kind\": \"schedule\", \"source\": \"x\", \"config\": {\"profile\": 9}}"),
            ErrorKind::Config
        );
        // Control requests need no source.
        assert!(Request::parse_line("{\"kind\": \"stats\"}").is_ok());
        assert!(Request::parse_line("{\"kind\": \"shutdown\"}").is_ok());
    }

    #[test]
    fn version_field_is_validated() {
        let parse = |line: &str| Request::parse_line(line);
        let ok = parse("{\"version\": 1, \"kind\": \"stats\"}").unwrap();
        assert_eq!(ok.version, Some(1));
        let ok = parse("{\"version\": 2, \"kind\": \"stats\"}").unwrap();
        assert_eq!(ok.version, Some(2));
        assert_eq!(parse("{\"kind\": \"stats\"}").unwrap().version, None);
        for bad in [
            "{\"version\": 0, \"kind\": \"stats\"}",
            "{\"version\": 3, \"kind\": \"stats\"}",
            "{\"version\": \"two\", \"kind\": \"stats\"}",
        ] {
            assert_eq!(parse(bad).unwrap_err().kind, ErrorKind::Protocol, "{bad}");
        }
    }

    #[test]
    fn response_round_trip() {
        let ok = response_ok(Some(3), Value::Bool(true));
        let (id, result) = parse_response(&ok).unwrap();
        assert_eq!(id, Some(3));
        assert_eq!(result.unwrap(), Value::Bool(true));

        let err = response_error(None, &WireError::new(ErrorKind::Busy, "queue full"));
        let (id, result) = parse_response(&err).unwrap();
        assert_eq!(id, None);
        let e = result.unwrap_err();
        assert_eq!(e.kind, ErrorKind::Busy);
        assert_eq!(e.message, "queue full");
    }

    #[test]
    fn bounded_reader_recovers_from_oversized_lines() {
        let text = format!("short\n{}\nafter\nlast", "x".repeat(100));
        let mut reader = std::io::BufReader::with_capacity(16, text.as_bytes());
        assert!(matches!(
            read_line_bounded(&mut reader, 32).unwrap(),
            LineRead::Line(l) if l == "short"
        ));
        assert!(matches!(
            read_line_bounded(&mut reader, 32).unwrap(),
            LineRead::TooLarge
        ));
        assert!(matches!(
            read_line_bounded(&mut reader, 32).unwrap(),
            LineRead::Line(l) if l == "after"
        ));
        // Unterminated trailing line still arrives.
        assert!(matches!(
            read_line_bounded(&mut reader, 32).unwrap(),
            LineRead::Line(l) if l == "last"
        ));
        assert!(matches!(
            read_line_bounded(&mut reader, 32).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn exact_limit_lines_pass() {
        let text = format!("{}\n", "y".repeat(32));
        let mut reader = std::io::BufReader::new(text.as_bytes());
        assert!(matches!(
            read_line_bounded(&mut reader, 32).unwrap(),
            LineRead::Line(l) if l.len() == 32
        ));
    }

    #[test]
    fn timeout_kind_has_a_wire_name() {
        assert_eq!(ErrorKind::Timeout.name(), "timeout");
        assert_eq!(ErrorKind::from_name("timeout"), Some(ErrorKind::Timeout));
    }

    #[test]
    fn budget_exhaustion_crosses_the_wire_as_timeout() {
        let inner = crate::core::ScheduleError::BudgetExhausted {
            source: crate::petri::TransitionId::new(0),
            stop: crate::BudgetStop::Deadline,
            steps: 1024,
        };
        let wire = WireError::from(QssError::from(inner));
        assert_eq!(wire.kind, ErrorKind::Timeout);
        assert!(wire.message.contains("deadline exceeded"));
    }

    /// A reader that yields `WouldBlock` before each chunk, like a socket
    /// with a read timeout and a dribbling peer.
    struct ChunkyReader {
        chunks: Vec<Vec<u8>>,
        next: usize,
        ready: bool,
        consumed_in_chunk: usize,
    }

    impl ChunkyReader {
        fn new(chunks: &[&[u8]]) -> Self {
            ChunkyReader {
                chunks: chunks.iter().map(|c| c.to_vec()).collect(),
                next: 0,
                ready: false,
                consumed_in_chunk: 0,
            }
        }
    }

    impl std::io::Read for ChunkyReader {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            unreachable!("read_line_inner uses fill_buf/consume only")
        }
    }

    impl BufRead for ChunkyReader {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.next >= self.chunks.len() {
                return Ok(&[]);
            }
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timed out"));
            }
            Ok(&self.chunks[self.next][self.consumed_in_chunk..])
        }

        fn consume(&mut self, amt: usize) {
            self.consumed_in_chunk += amt;
            if self.consumed_in_chunk >= self.chunks[self.next].len() {
                self.next += 1;
                self.consumed_in_chunk = 0;
                self.ready = false;
            }
        }
    }

    #[test]
    fn tick_reader_reports_line_progress_and_gives_up_on_demand() {
        // Patient tick: observes one not-started tick, then in-progress
        // ticks once bytes arrived.
        let mut reader = ChunkyReader::new(&[b"par", b"tial\n"]);
        let mut observed = Vec::new();
        let mut tick = |started: bool| {
            observed.push(started);
            true
        };
        let read = read_line_bounded_with_tick(&mut reader, 64, &mut tick).unwrap();
        assert!(matches!(read, LineRead::Line(l) if l == "partial"));
        assert_eq!(observed, vec![false, true]);

        // Impatient tick: gives up immediately.
        let mut reader = ChunkyReader::new(&[b"never\n"]);
        let mut give_up = |_started: bool| false;
        assert!(matches!(
            read_line_bounded_with_tick(&mut reader, 64, &mut give_up).unwrap(),
            LineRead::TimedOut
        ));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(40),
            max_delay: Duration::from_millis(200),
            seed: 42,
            overall_deadline: None,
        };
        let mut a = policy.backoff();
        let mut b = policy.backoff();
        let seq_a: Vec<_> = std::iter::from_fn(|| a.next_delay()).collect();
        let seq_b: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same schedule");
        assert_eq!(seq_a.len(), 5, "max_attempts - 1 sleeps");
        for (k, delay) in seq_a.iter().enumerate() {
            let budget = Duration::from_millis(40)
                .saturating_mul(1 << k as u32)
                .min(Duration::from_millis(200));
            assert!(
                *delay >= budget / 2 && *delay <= budget,
                "attempt {k}: {delay:?}"
            );
        }
        let mut other = RetryPolicy { seed: 43, ..policy }.backoff();
        let seq_c: Vec<_> = std::iter::from_fn(|| other.next_delay()).collect();
        assert_ne!(seq_a, seq_c, "different seeds decorrelate");
    }

    #[test]
    fn retryability_is_typed() {
        assert!(ClientError::Io("broken pipe".into()).is_retryable());
        assert!(ClientError::Server(WireError::new(ErrorKind::Busy, "full")).is_retryable());
        assert!(!ClientError::Server(WireError::new(ErrorKind::Timeout, "late")).is_retryable());
        assert!(!ClientError::Server(WireError::protocol("bad")).is_retryable());
        assert!(!ClientError::Protocol("not json".into()).is_retryable());
    }
}
