//! Fuzz-style robustness tests of the FlowC front end: mutated and
//! truncated variants of the checked-in `samples/pipeline.flowc` must
//! never panic the parser — every outcome is either a parsed system or a
//! structured [`FlowCError`], and lexical/syntax errors must carry a
//! plausible source line.
//!
//! Mutations are driven by the deterministic [`TestRng`] of the proptest
//! shim, so any failure reproduces identically run to run.

use proptest::TestRng;
use qss_flowc::{parse_system, FlowCError};

fn sample() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/samples/pipeline.flowc");
    std::fs::read_to_string(path).expect("checked-in sample exists")
}

/// Parses `source` and asserts the error contract: no panic (a panic
/// fails the test on its own), and lex/parse errors point at a line that
/// exists (1-based, at most one past the last line for end-of-input
/// errors).
fn assert_error_contract(source: &str, what: &str) {
    let num_lines = source.lines().count();
    match parse_system(source) {
        Ok(_) => {}
        Err(FlowCError::Lex { line, message } | FlowCError::Parse { line, message }) => {
            assert!(line >= 1, "{what}: error line must be 1-based, got {line}");
            assert!(
                line <= num_lines + 1,
                "{what}: error line {line} beyond the {num_lines}-line input"
            );
            assert!(!message.is_empty(), "{what}: empty error message");
        }
        Err(FlowCError::Semantic(message) | FlowCError::Net(message)) => {
            assert!(!message.is_empty(), "{what}: empty error message");
        }
    }
}

/// Every prefix of the sample parses or fails cleanly. Truncation in the
/// middle of a token, a comment, a string of punctuation — all of it.
#[test]
fn truncations_never_panic() {
    let source = sample();
    for end in 0..=source.len() {
        if !source.is_char_boundary(end) {
            continue;
        }
        assert_error_contract(&source[..end], &format!("truncation at byte {end}"));
    }
}

/// Single-character substitutions drawn from a hostile alphabet.
#[test]
fn substitutions_never_panic() {
    let source = sample();
    let alphabet: Vec<char> = "{}()[];,.->=<>!%&|*+-/ \t\n\0\u{7f}éПROCESSxq0123456789\""
        .chars()
        .collect();
    let mut rng = TestRng::new("parser-fuzz-substitutions");
    for case in 0..600 {
        let mut chars: Vec<char> = source.chars().collect();
        let pos = (rng.next_u64() as usize) % chars.len();
        let replacement = alphabet[(rng.next_u64() as usize) % alphabet.len()];
        chars[pos] = replacement;
        let mutated: String = chars.into_iter().collect();
        assert_error_contract(
            &mutated,
            &format!("substitution case {case} at char {pos} with {replacement:?}"),
        );
    }
}

/// Random slice deletions (dropping whole spans of tokens, braces,
/// manifest lines).
#[test]
fn deletions_never_panic() {
    let source = sample();
    let mut rng = TestRng::new("parser-fuzz-deletions");
    for case in 0..400 {
        let chars: Vec<char> = source.chars().collect();
        let start = (rng.next_u64() as usize) % chars.len();
        let len = 1 + (rng.next_u64() as usize) % 80;
        let mutated: String = chars[..start]
            .iter()
            .chain(chars[(start + len).min(chars.len())..].iter())
            .collect();
        assert_error_contract(&mutated, &format!("deletion case {case} at {start}+{len}"));
    }
}

/// Random token insertions, including keywords in wrong positions and
/// unbalanced delimiters.
#[test]
fn insertions_never_panic() {
    let source = sample();
    let fragments = [
        "PROCESS",
        "SYSTEM",
        "CHANNEL",
        "}",
        "{",
        "(",
        ")",
        ";",
        "->",
        ".",
        "INPUT",
        "UNCONTROLLABLE",
        "while",
        "if",
        "else",
        "int",
        "READ_DATA",
        "SELECT",
        "0xg",
        "\"",
        "/*",
        "//",
        "9999999999999999999999",
        "RATE",
    ];
    let mut rng = TestRng::new("parser-fuzz-insertions");
    for case in 0..400 {
        let chars: Vec<char> = source.chars().collect();
        let pos = (rng.next_u64() as usize) % (chars.len() + 1);
        let fragment = fragments[(rng.next_u64() as usize) % fragments.len()];
        let mutated: String = chars[..pos].iter().collect::<String>()
            + fragment
            + &chars[pos..].iter().collect::<String>();
        assert_error_contract(&mutated, &format!("insertion case {case} of {fragment:?}"));
    }
}

/// Whole-line deletions and duplications (manifest lines, braces, port
/// declarations).
#[test]
fn line_level_mutations_never_panic() {
    let source = sample();
    let lines: Vec<&str> = source.lines().collect();
    for i in 0..lines.len() {
        let without: String = lines
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, l)| *l)
            .collect::<Vec<_>>()
            .join("\n");
        assert_error_contract(&without, &format!("deleted line {}", i + 1));
        let mut doubled: Vec<&str> = lines.clone();
        doubled.insert(i, lines[i]);
        assert_error_contract(&doubled.join("\n"), &format!("doubled line {}", i + 1));
    }
}

/// Pathological inputs that commonly crash hand-written lexers.
#[test]
fn pathological_inputs_never_panic() {
    let cases = [
        String::new(),
        "\u{feff}SYSTEM x {}".to_string(),
        "PROCESS".to_string(),
        "PROCESS p".to_string(),
        "PROCESS p (".to_string(),
        "PROCESS p (In DPORT a) {".to_string(),
        "SYSTEM {".to_string(),
        "SYSTEM s { CHANNEL a.b -> ; }".to_string(),
        "SYSTEM s { CHANNEL a.b -> c.d [99999999999999999999]; }".to_string(),
        "/*".to_string(),
        "\"unterminated".to_string(),
        "{".repeat(2000),
        "(".repeat(2000),
        "PROCESS p (In DPORT a) { ".to_string() + &"if (1) ".repeat(400) + ";}",
        "\n".repeat(5000) + "PROCESS",
        "PROCESS p (In DPORT a) { int x; x = 2147483648999999; }".to_string(),
    ];
    for (i, case) in cases.iter().enumerate() {
        assert_error_contract(case, &format!("pathological case {i}"));
    }
}

/// Deep nesting must come back as a parse error (the recursion guard),
/// never as a stack overflow — and long *chains*, which are legal and
/// parse fine, must not blow the stack when the AST is dropped.
#[test]
fn deep_nesting_errors_and_long_chains_drop_safely() {
    let deep_parens = format!(
        "PROCESS p (In DPORT a) {{ int x; x = {}1{}; }}",
        "(".repeat(20_000),
        ")".repeat(20_000)
    );
    assert!(matches!(
        parse_system(&deep_parens),
        Err(FlowCError::Parse { .. })
    ));
    let deep_ifs = format!(
        "PROCESS p (In DPORT a) {{ {} ; {} }}",
        "if (1) {".repeat(20_000),
        "}".repeat(20_000)
    );
    assert!(matches!(
        parse_system(&deep_ifs),
        Err(FlowCError::Parse { .. })
    ));
    // An `else if` cascade recurses once per arm without re-entering the
    // block parser — it must count against the same guard.
    let else_if_chain = format!(
        "PROCESS p (In DPORT a) {{ if (1) ; {} else ; }}",
        "else if (1) ; ".repeat(100_000)
    );
    assert!(matches!(
        parse_system(&else_if_chain),
        Err(FlowCError::Parse { .. })
    ));
    let deep_unary = format!(
        "PROCESS p (In DPORT a) {{ int x; x = {}1; }}",
        "-".repeat(20_000)
    );
    assert!(matches!(
        parse_system(&deep_unary),
        Err(FlowCError::Parse { .. })
    ));
    // A 100k-term sum is a *chain*, not nesting: it parses, and dropping
    // the AST exercises the iterative `Drop` for `Expr`.
    let long_chain = format!(
        "PROCESS p (In DPORT a) {{ int x; x = 1{}; }}",
        "+1".repeat(100_000)
    );
    assert!(parse_system(&long_chain).is_ok());
}
