//! Serde JSON round-trip tests for the pipeline's serializable types:
//! schedules, generated tasks, simulation reports, and the stage
//! artifacts of the `qss` facade (through the offline serde shims).

use qss::{
    CostProfile, EnvEvent, LinkedArtifact, Pipeline, PipelineConfig, QssError, ScheduleArtifact,
    ScheduleOptions, SimArtifact, SimReport, TaskArtifact,
};
use qss_core::{Schedule, ScheduleNode, SystemSchedules};
use serde::{Deserialize, Serialize};

const SOURCE: &str = include_str!("../samples/pipeline.flowc");

fn task_artifact() -> TaskArtifact {
    Pipeline::from_source(SOURCE)
        .unwrap()
        .link()
        .unwrap()
        .schedule()
        .unwrap()
        .generate()
        .unwrap()
}

fn events() -> Vec<EnvEvent> {
    [6i64, 7, 8, 9]
        .into_iter()
        .map(|v| EnvEvent::new("source", "trigger", v))
        .collect()
}

#[test]
fn schedule_round_trips() {
    let task = task_artifact();
    let schedule = &task.schedules.schedules[0];
    let json = serde_json::to_string(schedule).unwrap();
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, schedule);
    // And the whole system-schedules bundle (schedules + bounds + stats).
    let json = serde_json::to_string(&task.schedules).unwrap();
    let back: SystemSchedules = serde_json::from_str(&json).unwrap();
    assert_eq!(back, task.schedules);
}

/// The naively derived serialization of a schedule's exchange
/// representation — exactly what `Schedule` serialized as before markings
/// were interned onto the flat slab. The manual `Serialize` impl promises
/// to keep this wire format.
#[derive(Serialize, Deserialize)]
struct WireSchedule {
    source: qss_petri::TransitionId,
    nodes: Vec<ScheduleNode>,
}

#[test]
fn schedule_wire_format_is_byte_identical_to_the_pre_slab_exchange_form() {
    let task = task_artifact();
    for schedule in &task.schedules.schedules {
        let mirror = WireSchedule {
            source: schedule.source(),
            nodes: schedule
                .node_ids()
                .map(|id| ScheduleNode {
                    marking: schedule.marking_owned(id),
                    edges: schedule.edges(id).to_vec(),
                })
                .collect(),
        };
        // Byte-identical in both renderings: the flat-slab refactor (and
        // interning before it) never touched the JSON wire format.
        assert_eq!(
            serde_json::to_string(schedule).unwrap(),
            serde_json::to_string(&mirror).unwrap()
        );
        assert_eq!(
            serde_json::to_string_pretty(schedule).unwrap(),
            serde_json::to_string_pretty(&mirror).unwrap()
        );
        // And the derived mirror parses back into an equal Schedule.
        let back: Schedule =
            serde_json::from_str(&serde_json::to_string(&mirror).unwrap()).unwrap();
        assert_eq!(&back, schedule);
    }
}

#[test]
fn generated_task_round_trips() {
    let task = task_artifact();
    let json = serde_json::to_string(&task.tasks[0]).unwrap();
    let back: qss::GeneratedTask = serde_json::from_str(&json).unwrap();
    assert_eq!(back, task.tasks[0]);
    assert!(json.contains("\"code\""));
}

#[test]
fn sim_report_round_trips() {
    let task = task_artifact();
    let sim = task.simulate(&events()).unwrap();
    let json = serde_json::to_string(&sim.single).unwrap();
    let back: SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, sim.single);
    // Output maps keep their `process.port` keys as JSON object keys.
    assert!(json.contains("\"sink.result\""));
}

#[test]
fn pipeline_config_round_trips() {
    let config = PipelineConfig {
        profile: CostProfile::Optimized2,
        multitask_buffer_size: 17,
        parallel_schedule: true,
        schedule: ScheduleOptions::with_place_bounds(9),
        ..PipelineConfig::default()
    };
    let json = serde_json::to_string(&config).unwrap();
    let back: PipelineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);
}

#[test]
fn pipeline_config_parsing_is_lenient_and_canonicalizing() {
    // `{}` is a valid config: every missing field takes its default.
    let empty: PipelineConfig = serde_json::from_str("{}").unwrap();
    assert_eq!(empty, PipelineConfig::default());
    // A partial config defaults only what it omits.
    let partial: PipelineConfig = serde_json::from_str("{\"multitask_buffer_size\": 17}").unwrap();
    assert_eq!(partial.multitask_buffer_size, 17);
    assert_eq!(
        partial.max_sim_steps,
        PipelineConfig::default().max_sim_steps
    );
    // Canonicalization: `{}` and the fully spelled-out default serialize
    // to identical bytes — the property the server's coalescing key
    // relies on.
    let spelled_out = serde_json::to_string(&PipelineConfig::default()).unwrap();
    let reparsed: PipelineConfig = serde_json::from_str(&spelled_out).unwrap();
    assert_eq!(
        serde_json::to_string(&empty).unwrap(),
        serde_json::to_string(&reparsed).unwrap()
    );
    // Leniency covers absence, not invalid input.
    assert!(serde_json::from_str::<PipelineConfig>("{\"profile\": 9}").is_err());
    assert!(serde_json::from_str::<PipelineConfig>("5").is_err());
}

#[test]
fn linked_artifact_round_trips() {
    let linked = Pipeline::from_source(SOURCE).unwrap().link().unwrap();
    let back = LinkedArtifact::from_json(&linked.to_json()).unwrap();
    // The artifact types embed the full net, which has no PartialEq;
    // compare the canonical JSON renderings instead.
    assert_eq!(back.to_json(), linked.to_json());
    assert_eq!(back.spec, linked.spec);
    assert_eq!(back.system.net.num_places(), linked.system.net.num_places());
    // The rebuilt net still links/schedules: run the next stage on it.
    let scheduled = back.schedule().unwrap();
    assert_eq!(scheduled.schedules.schedules.len(), 1);
}

#[test]
fn schedule_artifact_round_trips_and_rebuilds_its_context() {
    let scheduled = Pipeline::from_source(SOURCE)
        .unwrap()
        .link()
        .unwrap()
        .schedule()
        .unwrap();
    let back = ScheduleArtifact::from_json(&scheduled.to_json_pretty()).unwrap();
    assert_eq!(back.to_json(), scheduled.to_json());
    assert_eq!(back.schedules, scheduled.schedules);
    // The SearchContext is derived data: it is not serialized, but the
    // deserialized artifact has a working one (same ECS partition).
    let source = back.system.uncontrollable_sources()[0];
    let schedule = back
        .context()
        .find_schedule(&back.system.net, source, &ScheduleOptions::default())
        .unwrap();
    assert_eq!(schedule, scheduled.schedules.schedules[0]);
    // And the rebuilt artifact continues through the remaining stages.
    let task = back.generate().unwrap();
    assert!(task.simulate(&events()).unwrap().outputs_match);
}

#[test]
fn task_and_sim_artifacts_round_trip() {
    let task = task_artifact();
    let back = TaskArtifact::from_json(&task.to_json()).unwrap();
    assert_eq!(back.to_json(), task.to_json());
    assert_eq!(back.tasks, task.tasks);
    let sim = task.simulate(&events()).unwrap();
    let back = SimArtifact::from_json(&sim.to_json_pretty()).unwrap();
    assert_eq!(back.to_json(), sim.to_json());
    assert_eq!(back.single, sim.single);
    assert_eq!(back.events, sim.events);
    assert!(back.outputs_match);
}

#[test]
fn ragged_marking_widths_are_a_deserialization_error_not_a_panic() {
    // Corrupted wire input where two nodes disagree on the place count:
    // the fixed-stride marking store can never hold this, so it must be
    // rejected before interning (previously it deserialized and failed
    // validate(); aborting the process is never acceptable for JSON).
    let ragged = r#"{
        "source": 0,
        "nodes": [
            {"marking": {"counts": [0, 0]}, "edges": [[0, 1]]},
            {"marking": {"counts": [1, 0, 0]}, "edges": [[1, 0]]}
        ]
    }"#;
    let result: Result<Schedule, _> = serde_json::from_str(ragged);
    assert!(result.is_err());
}

#[test]
fn malformed_artifact_json_is_rejected() {
    assert!(matches!(
        TaskArtifact::from_json("{\"nope\": 1}"),
        Err(QssError::Config(_))
    ));
    assert!(matches!(
        ScheduleArtifact::from_json("not json at all"),
        Err(QssError::Config(_))
    ));
    assert!(LinkedArtifact::from_json("[1, 2, 3]").is_err());
}

#[test]
fn json_values_cover_the_corner_cases() {
    // Escapes, unicode, negative numbers, floats, nesting.
    let value = serde_json::Value::Object(vec![
        (
            "tab\"quote\\".into(),
            serde_json::Value::String("π 😀 \n".into()),
        ),
        (
            "numbers".into(),
            serde_json::Value::Array(vec![
                serde_json::to_value(&-42i64).unwrap(),
                serde_json::to_value(&u64::MAX).unwrap(),
                serde_json::to_value(&1.25f64).unwrap(),
            ]),
        ),
    ]);
    let compact = serde_json::to_string(&value).unwrap();
    let pretty = serde_json::to_string_pretty(&value).unwrap();
    assert_eq!(
        serde_json::from_str::<serde_json::Value>(&compact).unwrap(),
        value
    );
    assert_eq!(
        serde_json::from_str::<serde_json::Value>(&pretty).unwrap(),
        value
    );
    // u64::MAX survives (no float detour).
    let n: u64 = serde_json::from_str(&serde_json::to_string(&u64::MAX).unwrap()).unwrap();
    assert_eq!(n, u64::MAX);
}
