//! End-to-end integration tests spanning every crate of the workspace:
//! FlowC parsing → linking → quasi-static scheduling → code generation →
//! execution on both the multi-task baseline and the generated task.

use qss_codegen::{generate_task, SegmentGraph, TaskOptions};
use qss_core::{execute_run, schedule_system, ScheduleOptions};
use qss_flowc::{link, parse_process, PortClass, SystemSpec};
use qss_sim::{
    pfc_events, pfc_expected_outputs, pfc_system, run_multitask, run_singletask, size_report,
    CycleCostModel, EnvEvent, MultiTaskConfig, PfcParams, SingleTaskConfig,
};

/// A three-stage pipeline with a data-dependent branch in the middle stage.
fn branching_pipeline() -> qss_flowc::LinkedSystem {
    let source = parse_process(
        "PROCESS source (In DPORT trigger, Out DPORT raw) {
             int t;
             while (1) {
                 READ_DATA(trigger, t, 1);
                 WRITE_DATA(raw, t, 1);
             }
         }",
    )
    .unwrap();
    let stage = parse_process(
        "PROCESS stage (In DPORT raw, Out DPORT cooked) {
             int x;
             while (1) {
                 READ_DATA(raw, x, 1);
                 if (x % 2 == 0)
                     WRITE_DATA(cooked, x / 2, 1);
                 else
                     WRITE_DATA(cooked, 3 * x + 1, 1);
             }
         }",
    )
    .unwrap();
    let sink = parse_process(
        "PROCESS sink (In DPORT cooked, Out DPORT result) {
             int y;
             while (1) {
                 READ_DATA(cooked, y, 1);
                 WRITE_DATA(result, y, 1);
             }
         }",
    )
    .unwrap();
    let spec = SystemSpec::new("collatz_pipeline")
        .with_process(source)
        .with_process(stage)
        .with_process(sink)
        .with_channel("source.raw", "stage.raw", None)
        .unwrap()
        .with_channel("stage.cooked", "sink.cooked", None)
        .unwrap()
        .with_input_port_class("source.trigger", PortClass::Uncontrollable);
    link(&spec).unwrap()
}

#[test]
fn full_flow_on_branching_pipeline() {
    let system = branching_pipeline();
    // Schedule and validate against the five defining properties.
    let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
    assert_eq!(schedules.schedules.len(), 1);
    let schedule = &schedules.schedules[0];
    schedule.validate(&system.net).unwrap();
    assert!(schedule.is_single_source(&system.net));
    // The data-dependent branch appears as a two-edge node.
    assert!(schedule.node_ids().any(|id| schedule.edges(id).len() == 2));
    // All channel buffers are unit size.
    for channel in &system.channels {
        assert_eq!(schedules.bound(channel.place), 1, "{}", channel.name);
    }
    // Code generation succeeds and emits both guard branches.
    let graph = SegmentGraph::build(schedule, &system.net).unwrap();
    assert!(!graph.segments.is_empty());
    let task = generate_task(
        &system,
        schedule,
        &schedules.channel_bounds,
        &TaskOptions::default(),
    )
    .unwrap();
    assert!(task.code.contains("if ("));
    assert!(task.code.contains("WRITE_DATA(result"));

    // Execute the Collatz-style branch on both implementations.
    let events: Vec<EnvEvent> = [6i64, 7, 8, 9]
        .into_iter()
        .map(|v| EnvEvent::new("source", "trigger", v))
        .collect();
    let single = run_singletask(
        &system,
        &schedules.schedules,
        &events,
        &SingleTaskConfig::new(CycleCostModel::unoptimized()),
    )
    .unwrap();
    let multi = run_multitask(
        &system,
        &events,
        &MultiTaskConfig::new(2, CycleCostModel::unoptimized()),
    )
    .unwrap();
    assert_eq!(single.output("sink", "result"), &[3, 22, 4, 28]);
    assert_eq!(single.outputs, multi.outputs);
    assert!(multi.cycles > single.cycles);

    // The abstract run machinery of the core crate agrees with the net.
    let source = system.uncontrollable_sources()[0];
    let trace = execute_run(
        &system.net,
        &schedules.schedules,
        &[source, source],
        |_, _, _| 0,
    )
    .unwrap();
    assert!(!trace.fired.is_empty());
}

#[test]
fn pfc_end_to_end_matches_reference_and_paper_shape() {
    let params = PfcParams::tiny();
    let system = pfc_system(&params).unwrap();
    let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
    let schedule = &schedules.schedules[0];
    schedule.validate(&system.net).unwrap();
    // The paper: a single task with all channels of unit size.
    for channel in &system.channels {
        assert_eq!(schedules.bound(channel.place), 1, "{}", channel.name);
    }
    let task = generate_task(
        &system,
        schedule,
        &schedules.channel_bounds,
        &TaskOptions::default(),
    )
    .unwrap();
    assert!(task.stats.num_segments >= 2);

    let events = pfc_events(6);
    let single = run_singletask(
        &system,
        &schedules.schedules,
        &events,
        &SingleTaskConfig::new(CycleCostModel::optimized()),
    )
    .unwrap();
    let multi = run_multitask(
        &system,
        &events,
        &MultiTaskConfig::new(100, CycleCostModel::optimized()),
    )
    .unwrap();
    // Functional equivalence (the role of VCC simulation in the paper).
    assert_eq!(
        single.output("consumer", "out"),
        pfc_expected_outputs(&params, 6).as_slice()
    );
    assert_eq!(single.outputs, multi.outputs);
    // Performance shape: single task wins by a clear factor, and the
    // advantage grows when buffers shrink.
    assert!(multi.cycles as f64 / single.cycles as f64 > 2.0);
    let multi_small = run_multitask(
        &system,
        &events,
        &MultiTaskConfig::new(1, CycleCostModel::optimized()),
    )
    .unwrap();
    assert!(multi_small.cycles > multi.cycles);

    // Code size shape of Table 2: the single task is several times smaller.
    let spec = qss_sim::pfc_spec(&params);
    let report = size_report(
        &system,
        spec.processes(),
        &task,
        &qss_codegen::CodeCostModel::optimized(),
        true,
    );
    assert!(report.ratio > 3.0);
}

#[test]
fn divisors_task_computes_divisors_end_to_end() {
    let process = parse_process(qss_flowc::examples::DIVISORS).unwrap();
    let spec = SystemSpec::new("divisors_system").with_process(process);
    let system = link(&spec).unwrap();
    let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
    schedules.schedules[0].validate(&system.net).unwrap();
    let events: Vec<EnvEvent> = [12i64, 30]
        .into_iter()
        .map(|n| EnvEvent::new("divisors", "in", n))
        .collect();
    let single = run_singletask(
        &system,
        &schedules.schedules,
        &events,
        &SingleTaskConfig::new(CycleCostModel::unoptimized()),
    )
    .unwrap();
    assert_eq!(single.output("divisors", "max"), &[6, 15]);
    assert_eq!(
        single.output("divisors", "all"),
        &[6, 4, 3, 2, 1, 15, 10, 6, 5, 3, 2, 1]
    );
    // The multi-task implementation (a single process here) agrees.
    let multi = run_multitask(
        &system,
        &events,
        &MultiTaskConfig::new(4, CycleCostModel::unoptimized()),
    )
    .unwrap();
    assert_eq!(single.outputs, multi.outputs);
}

#[test]
fn controllable_inputs_are_excluded_from_task_generation() {
    // A system where one input is controllable: only the uncontrollable
    // port gets a task/schedule.
    let worker = parse_process(
        "PROCESS worker (In DPORT job, In DPORT param, Out DPORT done) {
             int j, p;
             while (1) {
                 READ_DATA(job, j, 1);
                 READ_DATA(param, p, 1);
                 WRITE_DATA(done, j + p, 1);
             }
         }",
    )
    .unwrap();
    let spec = SystemSpec::new("mixed_inputs")
        .with_process(worker)
        .with_input_port_class("worker.param", PortClass::Controllable);
    let system = link(&spec).unwrap();
    assert_eq!(system.uncontrollable_sources().len(), 1);
    let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
    assert_eq!(schedules.schedules.len(), 1);
    let schedule = &schedules.schedules[0];
    schedule.validate(&system.net).unwrap();
    // The controllable source is involved in the schedule (the system
    // requests the parameter itself), which is allowed for SS schedules.
    let controllable = system
        .env_inputs
        .iter()
        .find(|e| e.class == PortClass::Controllable)
        .unwrap()
        .source;
    assert!(schedule.involved_transitions().contains(&controllable));
}
