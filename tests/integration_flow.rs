//! End-to-end integration tests spanning every crate of the workspace,
//! written against the staged `Pipeline` API of the `qss` facade:
//! FlowC parsing → linking → quasi-static scheduling → code generation →
//! execution on both the multi-task baseline and the generated task.

use qss::{
    schedule_system, schedule_system_parallel, CostProfile, EnvEvent, Pipeline, PipelineConfig,
    PortClass, QssError, ScheduleOptions, SystemSpec, TaskArtifact,
};
use qss_codegen::SegmentGraph;
use qss_core::execute_run;
use qss_sim::{pfc_events, pfc_expected_outputs, pfc_spec, size_report, PfcParams};

/// A three-stage pipeline with a data-dependent branch in the middle
/// stage, as a whole-system FlowC source file (the same system that is
/// checked in as `samples/pipeline.flowc` for the CLI).
const COLLATZ_PIPELINE: &str = include_str!("../samples/pipeline.flowc");

fn collatz_task() -> Result<TaskArtifact, QssError> {
    Pipeline::from_source(COLLATZ_PIPELINE)?
        .link()?
        .schedule()?
        .generate()
}

#[test]
fn full_flow_on_branching_pipeline() {
    let task = collatz_task().unwrap();
    let system = &task.system;
    // Schedule and validate against the five defining properties.
    assert_eq!(task.schedules.schedules.len(), 1);
    let schedule = &task.schedules.schedules[0];
    schedule.validate(&system.net).unwrap();
    assert!(schedule.is_single_source(&system.net));
    // The data-dependent branch appears as a two-edge node.
    assert!(schedule.node_ids().any(|id| schedule.edges(id).len() == 2));
    // All channel buffers are unit size.
    for channel in &system.channels {
        assert_eq!(task.schedules.bound(channel.place), 1, "{}", channel.name);
    }
    // Code generation succeeded and emitted both guard branches.
    let graph = SegmentGraph::build(schedule, &system.net).unwrap();
    assert!(!graph.segments.is_empty());
    assert!(task.c_code().contains("if ("));
    assert!(task.c_code().contains("WRITE_DATA(result"));

    // Execute the Collatz-style branch on both implementations.
    let events: Vec<EnvEvent> = [6i64, 7, 8, 9]
        .into_iter()
        .map(|v| EnvEvent::new("source", "trigger", v))
        .collect();
    let sim = task.simulate(&events).unwrap();
    assert_eq!(sim.single.output("sink", "result"), &[3, 22, 4, 28]);
    assert!(sim.outputs_match);
    assert!(sim.multi.cycles > sim.single.cycles);
    assert!(sim.speedup > 1.0);

    // The abstract run machinery of the core crate agrees with the net.
    let source = system.uncontrollable_sources()[0];
    let trace = execute_run(
        &system.net,
        &task.schedules.schedules,
        &[source, source],
        |_, _, _| 0,
    )
    .unwrap();
    assert!(!trace.fired.is_empty());
}

#[test]
fn pipeline_report_summarizes_the_run() {
    let task = collatz_task().unwrap();
    let events: Vec<EnvEvent> = [6i64, 7, 8, 9]
        .into_iter()
        .map(|v| EnvEvent::new("source", "trigger", v))
        .collect();
    let sim = task.simulate(&events).unwrap();
    let report = task.report(Some(&sim));
    assert_eq!(report.system, "collatz");
    assert_eq!(report.processes, vec!["source", "stage", "sink"]);
    assert_eq!(report.schedules.len(), 1);
    assert_eq!(report.schedules[0].source, "source.trigger");
    assert_eq!(report.channel_bounds.len(), 2);
    assert!(report.channel_bounds.iter().all(|(_, b)| *b == 1));
    let summary = report.simulation.as_ref().unwrap();
    assert!(summary.outputs_match);
    assert!(summary.speedup > 1.0);
    // The report round-trips through its JSON rendering.
    let back = qss::PipelineReport::from_json(&report.to_json_pretty()).unwrap();
    assert_eq!(back, report);
}

#[test]
fn pfc_end_to_end_matches_reference_and_paper_shape() {
    let params = PfcParams::tiny();
    let config = PipelineConfig {
        profile: CostProfile::Optimized,
        multitask_buffer_size: 100,
        ..PipelineConfig::default()
    };
    let task = Pipeline::new(pfc_spec(&params))
        .with_config(config)
        .link()
        .unwrap()
        .schedule()
        .unwrap()
        .generate()
        .unwrap();
    let system = &task.system;
    let schedule = &task.schedules.schedules[0];
    schedule.validate(&system.net).unwrap();
    // The paper: a single task with all channels of unit size.
    for channel in &system.channels {
        assert_eq!(task.schedules.bound(channel.place), 1, "{}", channel.name);
    }
    assert!(task.tasks[0].stats.num_segments >= 2);

    let events = pfc_events(6);
    let sim = task.simulate(&events).unwrap();
    // Functional equivalence (the role of VCC simulation in the paper).
    assert_eq!(
        sim.single.output("consumer", "out"),
        pfc_expected_outputs(&params, 6).as_slice()
    );
    assert!(sim.outputs_match);
    // Performance shape: single task wins by a clear factor, and the
    // advantage grows when buffers shrink.
    assert!(sim.speedup > 2.0);
    let mut small = task.clone();
    small.config.multitask_buffer_size = 1;
    let sim_small = small.simulate(&events).unwrap();
    assert!(sim_small.multi.cycles > sim.multi.cycles);

    // Code size shape of Table 2: the single task is several times smaller.
    let spec = pfc_spec(&params);
    let report = size_report(
        system,
        spec.processes(),
        &task.tasks[0],
        &CostProfile::Optimized.code_model(),
        true,
    );
    assert!(report.ratio > 3.0);
}

#[test]
fn divisors_task_computes_divisors_end_to_end() {
    let spec = SystemSpec::new("divisors_system")
        .with_process(qss::parse_process(qss_flowc::examples::DIVISORS).unwrap());
    let task = Pipeline::new(spec)
        .link()
        .unwrap()
        .schedule()
        .unwrap()
        .generate()
        .unwrap();
    task.schedules.schedules[0]
        .validate(&task.system.net)
        .unwrap();
    let events: Vec<EnvEvent> = [12i64, 30]
        .into_iter()
        .map(|n| EnvEvent::new("divisors", "in", n))
        .collect();
    let sim = task.simulate(&events).unwrap();
    assert_eq!(sim.single.output("divisors", "max"), &[6, 15]);
    assert_eq!(
        sim.single.output("divisors", "all"),
        &[6, 4, 3, 2, 1, 15, 10, 6, 5, 3, 2, 1]
    );
    // The multi-task implementation (a single process here) agrees.
    assert!(sim.outputs_match);
}

#[test]
fn controllable_inputs_are_excluded_from_task_generation() {
    // A system where one input is controllable: only the uncontrollable
    // port gets a task/schedule. The whole-system parser declares the
    // class in the SYSTEM manifest.
    let scheduled = Pipeline::from_source(
        "SYSTEM mixed_inputs {
             INPUT worker.param CONTROLLABLE;
         }
         PROCESS worker (In DPORT job, In DPORT param, Out DPORT done) {
             int j, p;
             while (1) {
                 READ_DATA(job, j, 1);
                 READ_DATA(param, p, 1);
                 WRITE_DATA(done, j + p, 1);
             }
         }",
    )
    .unwrap()
    .link()
    .unwrap()
    .schedule()
    .unwrap();
    let system = &scheduled.system;
    assert_eq!(system.uncontrollable_sources().len(), 1);
    assert_eq!(scheduled.schedules.schedules.len(), 1);
    let schedule = &scheduled.schedules.schedules[0];
    schedule.validate(&system.net).unwrap();
    assert_eq!(scheduled.source_port(schedule), "worker.job");
    // The controllable source is involved in the schedule (the system
    // requests the parameter itself), which is allowed for SS schedules.
    let controllable = system
        .env_inputs
        .iter()
        .find(|e| e.class == PortClass::Controllable)
        .unwrap()
        .source;
    assert!(schedule.involved_transitions().contains(&controllable));
}

/// Two independent producer/consumer pairs: two uncontrollable inputs,
/// so the parallel scheduler actually fans out.
fn two_pair_system() -> qss_flowc::LinkedSystem {
    qss::link(
        &qss::parse_system(
            "SYSTEM two_pairs {
                 CHANNEL left.out -> left_sink.data;
                 CHANNEL right.out -> right_sink.data;
             }
             PROCESS left (In DPORT go, Out DPORT out) {
                 int x;
                 while (1) { READ_DATA(go, x, 1); WRITE_DATA(out, x + 1, 1); }
             }
             PROCESS left_sink (In DPORT data, Out DPORT res) {
                 int y;
                 while (1) { READ_DATA(data, y, 1); WRITE_DATA(res, y, 1); }
             }
             PROCESS right (In DPORT go, Out DPORT out) {
                 int x;
                 while (1) { READ_DATA(go, x, 1); WRITE_DATA(out, 2 * x, 1); }
             }
             PROCESS right_sink (In DPORT data, Out DPORT res) {
                 int y;
                 while (1) { READ_DATA(data, y, 1); WRITE_DATA(res, y, 1); }
             }",
        )
        .unwrap(),
    )
    .unwrap()
}

#[test]
fn parallel_scheduling_matches_sequential_results() {
    let system = two_pair_system();
    assert_eq!(system.uncontrollable_sources().len(), 2);
    let options = ScheduleOptions::default();
    let sequential = schedule_system(&system, &options).unwrap();
    let parallel = schedule_system_parallel(&system, &options).unwrap();
    assert_eq!(parallel.schedules, sequential.schedules);
    assert_eq!(parallel.channel_bounds, sequential.channel_bounds);
    assert_eq!(parallel.stats, sequential.stats);

    // The pipeline flag drives the same code path.
    let spec = qss::parse_system(
        "SYSTEM pair { CHANNEL a.out -> b.data; }
         PROCESS a (In DPORT go, Out DPORT out) {
             int x;
             while (1) { READ_DATA(go, x, 1); WRITE_DATA(out, x, 1); }
         }
         PROCESS b (In DPORT data, Out DPORT res) {
             int y;
             while (1) { READ_DATA(data, y, 1); WRITE_DATA(res, y, 1); }
         }",
    )
    .unwrap();
    let config = PipelineConfig {
        parallel_schedule: true,
        ..PipelineConfig::default()
    };
    let scheduled = Pipeline::new(spec.clone())
        .with_config(config)
        .link()
        .unwrap()
        .schedule()
        .unwrap();
    let baseline = Pipeline::new(spec).link().unwrap().schedule().unwrap();
    assert_eq!(scheduled.schedules.schedules, baseline.schedules.schedules);
}

#[test]
fn parallel_scheduling_reports_the_earliest_failure() {
    // Two uncontrollable sources feeding one synchronising transition:
    // no single-source schedule exists for either (Figure 4(b)). The
    // parallel path must report the same error as the sequential one.
    let spec = qss::parse_system(
        "SYSTEM sync {
             CHANNEL a.out -> join.ina;
             CHANNEL b.out -> join.inb;
         }
         PROCESS a (In DPORT go, Out DPORT out) {
             int x;
             while (1) { READ_DATA(go, x, 1); WRITE_DATA(out, x, 1); }
         }
         PROCESS b (In DPORT go, Out DPORT out) {
             int x;
             while (1) { READ_DATA(go, x, 1); WRITE_DATA(out, x, 1); }
         }
         PROCESS join (In DPORT ina, In DPORT inb, Out DPORT res) {
             int p, q;
             while (1) {
                 READ_DATA(ina, p, 1);
                 READ_DATA(inb, q, 1);
                 WRITE_DATA(res, p + q, 1);
             }
         }",
    )
    .unwrap();
    let system = qss::link(&spec).unwrap();
    let options = ScheduleOptions::default();
    let sequential = schedule_system(&system, &options).unwrap_err();
    let parallel = schedule_system_parallel(&system, &options).unwrap_err();
    assert_eq!(parallel, sequential);
}
