//! End-to-end tests of the `qssc` CLI binary: builds the checked-in
//! FlowC sample, checks every emitted artifact, and diffs the JSON
//! report against the golden file CI also compares against.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_file(relative: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(relative)
}

fn qssc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qssc"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qssc-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn build_emits_c_json_dot_and_the_golden_report() {
    let out = temp_dir("build");
    let report_path = out.join("report.json");
    let status = qssc()
        .args([
            "build",
            repo_file("samples/pipeline.flowc").to_str().unwrap(),
            "--emit",
            "c,json,dot",
            "--out",
            out.to_str().unwrap(),
            "--events",
            "source.trigger=6,7,8,9",
            "--report",
            report_path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());

    // All three artifact kinds exist and look like themselves.
    let c = std::fs::read_to_string(out.join("collatz.task_source_trigger.c")).unwrap();
    assert!(c.contains("void task_source_trigger_run(void)"));
    assert!(c.contains("goto "));
    // The DOT artifacts match their checked-in goldens byte for byte
    // (CI re-checks both with `diff`), like the JSON report below.
    let net_dot = std::fs::read_to_string(out.join("collatz.net.dot")).unwrap();
    let net_golden = std::fs::read_to_string(repo_file("samples/pipeline.net.golden.dot")).unwrap();
    assert_eq!(net_dot, net_golden, "net dot drifted from the golden file");
    let schedule_dot =
        std::fs::read_to_string(out.join("collatz.source_trigger.schedule.dot")).unwrap();
    let schedule_golden = std::fs::read_to_string(repo_file(
        "samples/pipeline.source_trigger.schedule.golden.dot",
    ))
    .unwrap();
    assert_eq!(
        schedule_dot, schedule_golden,
        "schedule dot drifted from the golden file"
    );
    let pipeline_json = std::fs::read_to_string(out.join("collatz.pipeline.json")).unwrap();
    let task = qss::TaskArtifact::from_json(&pipeline_json).unwrap();
    assert_eq!(task.spec.name(), "collatz");
    let sim_json = std::fs::read_to_string(out.join("collatz.sim.json")).unwrap();
    let sim = qss::SimArtifact::from_json(&sim_json).unwrap();
    assert!(sim.outputs_match);

    // The report matches the golden file byte for byte (CI re-checks
    // this with `diff` so the CLI path cannot rot).
    let report = std::fs::read_to_string(&report_path).unwrap();
    let golden = std::fs::read_to_string(repo_file("samples/pipeline.report.golden.json")).unwrap();
    assert_eq!(report, golden, "report drifted from the golden file");

    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn check_prints_a_summary_and_rejects_malformed_input() {
    let output = qssc()
        .args([
            "check",
            repo_file("samples/pipeline.flowc").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("collatz"));
    assert!(stdout.contains("3 process(es)"));

    // A malformed file fails with a parse-stage error on stderr.
    let dir = temp_dir("check");
    let bad = dir.join("bad.flowc");
    std::fs::write(&bad, "PROCESS broken (In DPORT a { }").unwrap();
    let output = qssc()
        .args(["check", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("parse stage"), "stderr was: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_matches_the_golden_report_and_deny_warnings_gates() {
    // Clean sample: valid JSON on stdout, no diagnostics on stderr,
    // exit 0 even under `--deny warnings`.
    let output = qssc()
        .args([
            "analyze",
            repo_file("samples/pipeline.flowc").to_str().unwrap(),
            "--deny",
            "warnings",
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let report = qss::AnalysisReport::from_json(&stdout).unwrap();
    assert!(report.diagnostics.is_empty(), "clean sample has findings");
    assert!(output.stderr.is_empty());

    // Deadlocked cycle: the JSON report matches the golden file byte
    // for byte, diagnostics go to stderr, and warnings alone still
    // exit 0.
    let output = qssc()
        .args([
            "analyze",
            repo_file("samples/deadcycle.flowc").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let golden =
        std::fs::read_to_string(repo_file("samples/deadcycle.analysis.golden.json")).unwrap();
    assert_eq!(stdout, golden, "analysis drifted from the golden file");
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("warning[QSS-W001]"), "stderr: {stderr}");
    assert!(stderr.contains("warning[QSS-W003]"), "stderr: {stderr}");

    // `--deny warnings` turns those warnings into exit 1.
    let output = qssc()
        .args([
            "analyze",
            repo_file("samples/deadcycle.flowc").to_str().unwrap(),
            "--deny",
            "warnings",
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("--deny warnings"), "stderr: {stderr}");

    // Unknown deny classes are usage errors.
    let output = qssc()
        .args([
            "analyze",
            repo_file("samples/deadcycle.flowc").to_str().unwrap(),
            "--deny",
            "everything",
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn check_emits_diagnostics_and_deny_warnings_fails_dead_nets() {
    // `check` on a net with dead transitions prints the warnings but
    // still exits 0 — the summary path stays usable in scripts.
    let output = qssc()
        .args([
            "check",
            repo_file("samples/deadcycle.flowc").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("deadcycle"), "stdout: {stdout}");
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("warning[QSS-W001]"), "stderr: {stderr}");

    // Under `--deny warnings` the same net is exit 1.
    let output = qssc()
        .args([
            "check",
            repo_file("samples/deadcycle.flowc").to_str().unwrap(),
            "--deny",
            "warnings",
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));

    // The clean sample passes `--deny warnings`.
    let output = qssc()
        .args([
            "check",
            repo_file("samples/pipeline.flowc").to_str().unwrap(),
            "--deny",
            "warnings",
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
}

#[test]
fn build_reads_flowc_from_stdin_when_the_path_is_dash() {
    use std::io::Write as _;
    let out = temp_dir("stdin");
    let report_path = out.join("report.json");
    let source = std::fs::read(repo_file("samples/pipeline.flowc")).unwrap();
    let mut child = qssc()
        .args([
            "build",
            "-",
            "--emit",
            "c",
            "--out",
            out.to_str().unwrap(),
            "--events",
            "source.trigger=6,7,8,9",
            "--report",
            report_path.to_str().unwrap(),
        ])
        .stdin(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(&source).unwrap();
    let status = child.wait().unwrap();
    assert!(status.success());
    // Identical artifacts to the file-path run: the same C task and the
    // same golden report, so `-` is true pipe parity.
    let c = std::fs::read_to_string(out.join("collatz.task_source_trigger.c")).unwrap();
    assert!(c.contains("void task_source_trigger_run(void)"));
    let report = std::fs::read_to_string(&report_path).unwrap();
    let golden = std::fs::read_to_string(repo_file("samples/pipeline.report.golden.json")).unwrap();
    assert_eq!(report, golden, "stdin build drifted from the golden report");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn remote_build_against_a_warm_server_matches_the_goldens() {
    let server = qss_server::Server::bind(qss_server::ServerConfig::default())
        .expect("bind in-process qssd")
        .spawn();
    let addr = server.addr().to_string();

    let out = temp_dir("remote");
    let report_path = out.join("report.json");
    let run = |tag: &str| {
        let report = out.join(format!("report-{tag}.json"));
        let status = qssc()
            .args([
                "remote",
                &addr,
                "build",
                repo_file("samples/pipeline.flowc").to_str().unwrap(),
                "--emit",
                "c,dot",
                "--out",
                out.to_str().unwrap(),
                "--events",
                "source.trigger=6,7,8,9",
                "--report",
                report.to_str().unwrap(),
            ])
            .status()
            .unwrap();
        assert!(status.success());
        report
    };
    let first = run("cold");
    let second = run("warm"); // second run hits the server's context cache

    // The remote artifacts match the same goldens the local build is
    // diffed against — the wire adds nothing and loses nothing.
    let golden = std::fs::read_to_string(repo_file("samples/pipeline.report.golden.json")).unwrap();
    assert_eq!(std::fs::read_to_string(&first).unwrap(), golden);
    assert_eq!(std::fs::read_to_string(&second).unwrap(), golden);
    let net_dot = std::fs::read_to_string(out.join("collatz.net.dot")).unwrap();
    let net_golden = std::fs::read_to_string(repo_file("samples/pipeline.net.golden.dot")).unwrap();
    assert_eq!(net_dot, net_golden);
    let c = std::fs::read_to_string(out.join("collatz.task_source_trigger.c")).unwrap();
    assert!(c.contains("void task_source_trigger_run(void)"));

    // `remote check` prints the summary plus the net fingerprint.
    let output = qssc()
        .args([
            "remote",
            &addr,
            "check",
            repo_file("samples/pipeline.flowc").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("collatz"), "stdout: {stdout}");
    assert!(stdout.contains("fingerprint"), "stdout: {stdout}");

    // `remote analyze` (cold, then warm from the server's report
    // cache) is byte-identical to the golden file local `analyze` is
    // diffed against.
    let analysis_golden =
        std::fs::read_to_string(repo_file("samples/deadcycle.analysis.golden.json")).unwrap();
    for _pass in 0..2 {
        let output = qssc()
            .args([
                "remote",
                &addr,
                "analyze",
                repo_file("samples/deadcycle.flowc").to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(output.status.success());
        let stdout = String::from_utf8(output.stdout).unwrap();
        assert_eq!(stdout, analysis_golden, "remote analyze drifted");
    }

    // `remote stats` reports the cache hit of the warm run.
    let output = qssc().args(["remote", &addr, "stats"]).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let stats: qss::remote::ServerStats = serde_json::from_str(&stdout).unwrap();
    assert!(stats.cache.hits > 0, "stats: {stdout}");

    // `remote shutdown` drains the in-process server; join proves it.
    let status = qssc().args(["remote", &addr, "shutdown"]).status().unwrap();
    assert!(status.success());
    server.join().unwrap();

    // Against a dead server, remote commands fail with exit code 1.
    let output = qssc().args(["remote", &addr, "stats"]).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
    let _ = report_path; // naming parity with the local build test
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn usage_errors_exit_with_code_two() {
    let output = qssc().args(["frobnicate"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2));
    let output = qssc()
        .args(["build", "nope.flowc", "--emit", "pdf"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    // Remote usage problems are also exit code 2.
    let output = qssc().args(["remote"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2));
    let output = qssc()
        .args(["remote", "127.0.0.1:1", "frobnicate"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    // Missing files are an I/O failure (exit 1), not a usage error.
    let output = qssc()
        .args(["build", "does-not-exist.flowc"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("io stage"), "stderr was: {stderr}");
}
