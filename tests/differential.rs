//! Differential tests: the incremental path-state EP engine
//! (`qss_core::find_schedule_with_stats`) must be observationally
//! identical to the retained recompute-from-scratch oracle
//! (`qss_core::reference`) — same schedules (node for node, marking for
//! marking), same search statistics, same channel bounds, same errors —
//! across fixed paper fixtures, the divider family, the PFC case study
//! and randomly generated nets (the dense default profile, the `wide`
//! many-places/sparse-tokens profile that stresses the flat marking slab,
//! and the `hub` hundreds-of-places profile that pushes the enabledness
//! kernels into their sparse fallback).
//!
//! The suite also has a **kernel axis**: the scalar per-arc enabledness
//! walk and the chunked need-row kernels (`KernelKind`) must explore
//! byte-identical trees. In-process, `kernel_axis_agrees_on_all_profiles`
//! pins the two engines against each other explicitly; in CI, the whole
//! suite runs once with `QSS_KERNEL=scalar` and once with
//! `QSS_KERNEL=chunked`, so every engine-vs-oracle case is exercised
//! under both kernels at the release-job net count.

use proptest::prelude::*;
use qss_bench::experiments::divider_net;
use qss_bench::testgen::{build_random, hub_net_strategy, random_net_strategy, wide_net_strategy};
use qss_core::{
    channel_bounds, find_schedule_with_stats, reference, KernelKind, ScheduleError,
    ScheduleOptions, SearchContext, TerminationKind,
};
use qss_petri::{
    structural_report, NetBuilder, PetriNet, StructuralLimits, TransitionId, TransitionKind,
};
use qss_sim::{pfc_system, PfcParams};

/// Number of random nets the generative suite runs, overridable with the
/// `QSS_DIFFERENTIAL_NETS` environment variable (CI bumps it in the
/// release-mode job; the default keeps debug runs quick but meaningful).
fn differential_cases() -> u32 {
    std::env::var("QSS_DIFFERENTIAL_NETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Runs both engines under `options` and asserts identical outcomes.
fn assert_engines_agree(net: &PetriNet, source: TransitionId, options: &ScheduleOptions) {
    let incremental = find_schedule_with_stats(net, source, options);
    let oracle = reference::find_schedule_with_stats(net, source, options);
    match (&incremental, &oracle) {
        (Ok((s_inc, st_inc)), Ok((s_ref, st_ref))) => {
            assert_eq!(s_inc, s_ref, "schedules differ on {}", net.name());
            assert_eq!(st_inc, st_ref, "search stats differ on {}", net.name());
            s_inc.validate(net).expect("incremental schedule validates");
        }
        _ => assert_eq!(
            incremental,
            oracle,
            "engine outcomes differ on {}",
            net.name()
        ),
    }
}

/// Every option profile the workspace exercises.
fn option_profiles() -> Vec<ScheduleOptions> {
    vec![
        ScheduleOptions::default(),
        ScheduleOptions::default().without_heuristics(),
        ScheduleOptions::with_place_bounds(3),
        ScheduleOptions {
            greedy_entering_point: false,
            ..ScheduleOptions::default()
        },
        ScheduleOptions {
            single_source: false,
            ..ScheduleOptions::default()
        },
    ]
}

fn assert_engines_agree_all_profiles(net: &PetriNet, source: TransitionId) {
    for options in option_profiles() {
        assert_engines_agree(net, source, &options);
    }
}

/// Runs the incremental engine once per enabledness kernel and asserts
/// byte-identical outcomes (schedules, stats, errors) — the in-process
/// half of the kernel axis, independent of the `QSS_KERNEL` override.
fn assert_kernels_agree(net: &PetriNet, source: TransitionId, options: &ScheduleOptions) {
    let scalar = SearchContext::with_kernel(net, KernelKind::Scalar)
        .find_schedule_with_stats(net, source, options);
    let chunked = SearchContext::with_kernel(net, KernelKind::Chunked)
        .find_schedule_with_stats(net, source, options);
    assert_eq!(
        scalar,
        chunked,
        "scalar and chunked kernels diverge on {}",
        net.name()
    );
}

/// The Figure 8(a) net of the paper.
fn figure8() -> PetriNet {
    let mut bl = NetBuilder::new("fig8");
    let p1 = bl.place("p1", 0);
    let p2 = bl.place("p2", 0);
    let p3 = bl.place("p3", 0);
    let a = bl.transition("a", TransitionKind::UncontrollableSource);
    let b = bl.transition("b", TransitionKind::Internal);
    let c = bl.transition("c", TransitionKind::Internal);
    let d = bl.transition("d", TransitionKind::Internal);
    let e = bl.transition("e", TransitionKind::Internal);
    bl.arc_t2p(a, p1, 1);
    bl.arc_p2t(p1, b, 1);
    bl.arc_p2t(p1, c, 1);
    bl.arc_t2p(b, p2, 1);
    bl.arc_p2t(p2, d, 1);
    bl.arc_t2p(c, p3, 1);
    bl.arc_p2t(p3, e, 2);
    bl.arc_t2p(e, p1, 1);
    bl.build().unwrap()
}

#[test]
fn engines_agree_on_figure8() {
    let net = figure8();
    let a = net.transition_by_name("a").unwrap();
    assert_engines_agree_all_profiles(&net, a);
}

#[test]
fn engines_agree_on_divider_family() {
    for k in 1..=12 {
        let (net, source) = divider_net(k);
        assert_engines_agree_all_profiles(&net, source);
        // The Sec. 4.4 comparison: place bounds tighter and looser than k.
        for bound in [k.saturating_sub(1).max(1), k, 2 * k] {
            let opts = ScheduleOptions {
                termination: TerminationKind::PlaceBounds { default: bound },
                ..Default::default()
            };
            assert_engines_agree(&net, source, &opts);
        }
    }
}

#[test]
fn engines_agree_on_pfc_system_and_channel_bounds() {
    let system = pfc_system(&PfcParams::tiny()).expect("PFC links");
    let options = ScheduleOptions::default();
    let mut reference_schedules = Vec::new();
    for source in system.uncontrollable_sources() {
        assert_engines_agree(&system.net, source, &options);
        let (s, _) = reference::find_schedule_with_stats(&system.net, source, &options).unwrap();
        reference_schedules.push(s);
    }
    // Channel bounds derived through the production path must equal the
    // bounds computed from the oracle's schedules.
    let schedules = qss_core::schedule_system(&system, &options).expect("PFC schedules");
    assert_eq!(
        schedules.channel_bounds,
        channel_bounds(&reference_schedules, &system.net)
    );
}

#[test]
fn engines_agree_on_unschedulable_nets() {
    // Figure 4(b): two uncontrollable sources feeding one synchroniser.
    let mut bl = NetBuilder::new("fig4b");
    let p1 = bl.place("p1", 0);
    let p2 = bl.place("p2", 0);
    let a = bl.transition("a", TransitionKind::UncontrollableSource);
    let b = bl.transition("b", TransitionKind::UncontrollableSource);
    let c = bl.transition("c", TransitionKind::Internal);
    bl.arc_t2p(a, p1, 1);
    bl.arc_t2p(b, p2, 1);
    bl.arc_p2t(p1, c, 1);
    bl.arc_p2t(p2, c, 1);
    let net = bl.build().unwrap();
    let a = net.transition_by_name("a").unwrap();
    assert_engines_agree_all_profiles(&net, a);
}

#[test]
fn engines_agree_under_tiny_node_budgets() {
    let net = figure8();
    let a = net.transition_by_name("a").unwrap();
    for max_nodes in 2..20 {
        let opts = ScheduleOptions {
            max_nodes,
            ..Default::default()
        };
        assert_engines_agree(&net, a, &opts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(differential_cases()))]

    /// Schedulable or not, both engines reach byte-identical outcomes on
    /// random nets under every option profile. A small node budget keeps
    /// degenerate explosions bounded while still exercising the
    /// budget-exhaustion path differentially. Counterexamples shrink
    /// through the generator's domain-aware strategy (see
    /// `qss_bench::testgen`).
    #[test]
    fn engines_agree_on_random_nets(desc in random_net_strategy()) {
        let (net, source) = build_random(&desc);
        for base in option_profiles() {
            let opts = ScheduleOptions { max_nodes: 3_000, ..base };
            assert_engines_agree(&net, source, &opts);
        }
    }

    /// The `wide` testgen profile: many places, sparse tokens — long
    /// fixed-width slab rows with few marked cells, which is exactly the
    /// layout the flat marking arena has to get right (stride arithmetic,
    /// reserve-then-commit rollbacks, incremental hashes over wide rows).
    #[test]
    fn engines_agree_on_wide_nets(desc in wide_net_strategy()) {
        let (net, source) = build_random(&desc);
        for base in option_profiles() {
            let opts = ScheduleOptions { max_nodes: 3_000, ..base };
            assert_engines_agree(&net, source, &opts);
        }
    }

    /// The `hub` testgen profile: hundreds of places, high-fan-in hubs,
    /// duplicated presets nesting choices into multi-member ECSs. Rows
    /// this wide put the chunked kernels into their sparse CSR fallback;
    /// the oracle pays O(depth × places) per node on them, so the node
    /// budget is tighter than the other generative suites.
    #[test]
    fn engines_agree_on_hub_nets(desc in hub_net_strategy()) {
        let (net, source) = build_random(&desc);
        for base in option_profiles() {
            let opts = ScheduleOptions { max_nodes: 800, ..base };
            assert_engines_agree(&net, source, &opts);
        }
    }

    /// The kernel axis, pinned in-process: the scalar per-arc walk and
    /// the chunked need-row kernels reach byte-identical outcomes on all
    /// three net profiles under every option profile, regardless of what
    /// `QSS_KERNEL` says (the contexts are built with explicit kinds).
    #[test]
    fn kernel_axis_agrees_on_all_profiles(
        dense in random_net_strategy(),
        wide in wide_net_strategy(),
        hub in hub_net_strategy(),
    ) {
        for (desc, max_nodes) in [(&dense, 3_000), (&wide, 3_000), (&hub, 800)] {
            let (net, source) = build_random(desc);
            for base in option_profiles() {
                let opts = ScheduleOptions { max_nodes, ..base };
                assert_kernels_agree(&net, source, &opts);
            }
        }
    }

    /// The analysis-on/analysis-off pin: a context that adopted a
    /// structural report behaves **byte-identically** to a plain context
    /// unless the report's proofs fire — and when they do, the rejection
    /// is the typed error the proof justifies, never a different search
    /// outcome.
    #[test]
    fn structural_context_agrees_or_fast_rejects(desc in random_net_strategy()) {
        let (net, source) = build_random(&desc);
        let report = structural_report(&net, &StructuralLimits::default());
        let plain = SearchContext::new(&net);
        let gated = SearchContext::with_structural(&net, &report);
        let opts = ScheduleOptions { max_nodes: 3_000, ..Default::default() };
        let plain_result = plain.find_schedule_with_stats(&net, source, &opts);
        let gated_result = gated.find_schedule_with_stats(&net, source, &opts);
        match &gated_result {
            Err(ScheduleError::StructurallyUnbounded(p)) => {
                prop_assert!(
                    report.unbounded_places().contains(p),
                    "gate rejected on {p} without an unboundedness proof"
                );
            }
            Err(ScheduleError::StructurallyDead(t)) => {
                prop_assert!(
                    report.is_dead(*t),
                    "gate rejected on {t} without a deadness proof"
                );
            }
            _ => prop_assert!(
                gated_result == plain_result,
                "structural context diverged from the plain context on {}",
                net.name()
            ),
        }
    }
}

/// A source whose preset place can never be marked: the dead fixpoint
/// proves the source dead, and a structural-report context rejects the
/// search with the typed error before expanding a single node. (The
/// search engine itself assumes uncontrollable sources are always
/// fireable — FlowC never gates a source behind a place — so this is a
/// net only the structural gate can reject gracefully.)
#[test]
fn structural_gate_fast_rejects_dead_sources() {
    let mut bl = NetBuilder::new("deadsource");
    let gate = bl.place("gate", 0);
    let out = bl.place("out", 0);
    let a = bl.transition("a", TransitionKind::UncontrollableSource);
    let b = bl.transition("b", TransitionKind::Internal);
    bl.arc_p2t(gate, a, 1);
    bl.arc_t2p(a, out, 1);
    bl.arc_p2t(out, b, 1);
    bl.arc_t2p(b, gate, 1);
    let net = bl.build().unwrap();
    let a = net.transition_by_name("a").unwrap();

    let report = structural_report(&net, &StructuralLimits::default());
    assert!(report.is_dead(a), "fixture source should be provably dead");

    let gated = SearchContext::with_structural(&net, &report);
    let opts = ScheduleOptions::default();
    assert_eq!(
        gated.find_schedule_with_stats(&net, a, &opts).unwrap_err(),
        ScheduleError::StructurallyDead(a)
    );
}

/// A token pump (`p → t → 2·p`) behind an uncontrollable source: the
/// internal sur-invariant cover proves `p` unbounded, and the gated
/// context rejects with the typed error instead of burning the node
/// budget discovering the divergence dynamically.
#[test]
fn structural_gate_fast_rejects_unbounded_nets() {
    let mut bl = NetBuilder::new("pump");
    let p = bl.place("p", 0);
    let s = bl.transition("s", TransitionKind::UncontrollableSource);
    let t = bl.transition("t", TransitionKind::Internal);
    bl.arc_t2p(s, p, 1);
    bl.arc_p2t(p, t, 1);
    bl.arc_t2p(t, p, 2);
    let net = bl.build().unwrap();
    let s = net.transition_by_name("s").unwrap();

    let report = structural_report(&net, &StructuralLimits::default());
    assert_eq!(report.unbounded_places(), vec![p]);

    let gated = SearchContext::with_structural(&net, &report);
    assert_eq!(
        gated
            .find_schedule_with_stats(&net, s, &ScheduleOptions::default())
            .unwrap_err(),
        ScheduleError::StructurallyUnbounded(p)
    );
}

/// When the report proves a bound for every place, the context pre-arms
/// `TerminationKind::PlaceBounds` with the proven maximum.
#[test]
fn structural_context_pre_arms_proven_place_bounds() {
    let mut bl = NetBuilder::new("ring");
    let p1 = bl.place("p1", 1);
    let p2 = bl.place("p2", 0);
    let t1 = bl.transition("t1", TransitionKind::Internal);
    let t2 = bl.transition("t2", TransitionKind::Internal);
    bl.arc_p2t(p1, t1, 1);
    bl.arc_t2p(t1, p2, 1);
    bl.arc_p2t(p2, t2, 1);
    bl.arc_t2p(t2, p1, 1);
    let net = bl.build().unwrap();

    let report = structural_report(&net, &StructuralLimits::default());
    assert_eq!(report.max_marking_bound, Some(1));

    let gated = SearchContext::with_structural(&net, &report);
    assert_eq!(gated.structural_max_bound(), Some(1));
    let armed = gated.pre_armed_place_bounds().expect("full cover pre-arms");
    assert_eq!(
        armed.termination,
        TerminationKind::PlaceBounds { default: 1 }
    );
    assert_eq!(SearchContext::new(&net).pre_armed_place_bounds(), None);
}
