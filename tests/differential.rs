//! Differential tests: the incremental path-state EP engine
//! (`qss_core::find_schedule_with_stats`) must be observationally
//! identical to the retained recompute-from-scratch oracle
//! (`qss_core::reference`) — same schedules (node for node, marking for
//! marking), same search statistics, same channel bounds, same errors —
//! across fixed paper fixtures, the divider family, the PFC case study
//! and randomly generated nets (both the dense default profile and the
//! `wide` many-places/sparse-tokens profile that stresses the flat
//! marking slab).

use proptest::prelude::*;
use qss_bench::experiments::divider_net;
use qss_bench::testgen::{build_random, random_net_strategy, wide_net_strategy};
use qss_core::{
    channel_bounds, find_schedule_with_stats, reference, ScheduleOptions, TerminationKind,
};
use qss_petri::{NetBuilder, PetriNet, TransitionId, TransitionKind};
use qss_sim::{pfc_system, PfcParams};

/// Number of random nets the generative suite runs, overridable with the
/// `QSS_DIFFERENTIAL_NETS` environment variable (CI bumps it in the
/// release-mode job; the default keeps debug runs quick but meaningful).
fn differential_cases() -> u32 {
    std::env::var("QSS_DIFFERENTIAL_NETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Runs both engines under `options` and asserts identical outcomes.
fn assert_engines_agree(net: &PetriNet, source: TransitionId, options: &ScheduleOptions) {
    let incremental = find_schedule_with_stats(net, source, options);
    let oracle = reference::find_schedule_with_stats(net, source, options);
    match (&incremental, &oracle) {
        (Ok((s_inc, st_inc)), Ok((s_ref, st_ref))) => {
            assert_eq!(s_inc, s_ref, "schedules differ on {}", net.name());
            assert_eq!(st_inc, st_ref, "search stats differ on {}", net.name());
            s_inc.validate(net).expect("incremental schedule validates");
        }
        _ => assert_eq!(
            incremental,
            oracle,
            "engine outcomes differ on {}",
            net.name()
        ),
    }
}

/// Every option profile the workspace exercises.
fn option_profiles() -> Vec<ScheduleOptions> {
    vec![
        ScheduleOptions::default(),
        ScheduleOptions::default().without_heuristics(),
        ScheduleOptions::with_place_bounds(3),
        ScheduleOptions {
            greedy_entering_point: false,
            ..ScheduleOptions::default()
        },
        ScheduleOptions {
            single_source: false,
            ..ScheduleOptions::default()
        },
    ]
}

fn assert_engines_agree_all_profiles(net: &PetriNet, source: TransitionId) {
    for options in option_profiles() {
        assert_engines_agree(net, source, &options);
    }
}

/// The Figure 8(a) net of the paper.
fn figure8() -> PetriNet {
    let mut bl = NetBuilder::new("fig8");
    let p1 = bl.place("p1", 0);
    let p2 = bl.place("p2", 0);
    let p3 = bl.place("p3", 0);
    let a = bl.transition("a", TransitionKind::UncontrollableSource);
    let b = bl.transition("b", TransitionKind::Internal);
    let c = bl.transition("c", TransitionKind::Internal);
    let d = bl.transition("d", TransitionKind::Internal);
    let e = bl.transition("e", TransitionKind::Internal);
    bl.arc_t2p(a, p1, 1);
    bl.arc_p2t(p1, b, 1);
    bl.arc_p2t(p1, c, 1);
    bl.arc_t2p(b, p2, 1);
    bl.arc_p2t(p2, d, 1);
    bl.arc_t2p(c, p3, 1);
    bl.arc_p2t(p3, e, 2);
    bl.arc_t2p(e, p1, 1);
    bl.build().unwrap()
}

#[test]
fn engines_agree_on_figure8() {
    let net = figure8();
    let a = net.transition_by_name("a").unwrap();
    assert_engines_agree_all_profiles(&net, a);
}

#[test]
fn engines_agree_on_divider_family() {
    for k in 1..=12 {
        let (net, source) = divider_net(k);
        assert_engines_agree_all_profiles(&net, source);
        // The Sec. 4.4 comparison: place bounds tighter and looser than k.
        for bound in [k.saturating_sub(1).max(1), k, 2 * k] {
            let opts = ScheduleOptions {
                termination: TerminationKind::PlaceBounds { default: bound },
                ..Default::default()
            };
            assert_engines_agree(&net, source, &opts);
        }
    }
}

#[test]
fn engines_agree_on_pfc_system_and_channel_bounds() {
    let system = pfc_system(&PfcParams::tiny()).expect("PFC links");
    let options = ScheduleOptions::default();
    let mut reference_schedules = Vec::new();
    for source in system.uncontrollable_sources() {
        assert_engines_agree(&system.net, source, &options);
        let (s, _) = reference::find_schedule_with_stats(&system.net, source, &options).unwrap();
        reference_schedules.push(s);
    }
    // Channel bounds derived through the production path must equal the
    // bounds computed from the oracle's schedules.
    let schedules = qss_core::schedule_system(&system, &options).expect("PFC schedules");
    assert_eq!(
        schedules.channel_bounds,
        channel_bounds(&reference_schedules, &system.net)
    );
}

#[test]
fn engines_agree_on_unschedulable_nets() {
    // Figure 4(b): two uncontrollable sources feeding one synchroniser.
    let mut bl = NetBuilder::new("fig4b");
    let p1 = bl.place("p1", 0);
    let p2 = bl.place("p2", 0);
    let a = bl.transition("a", TransitionKind::UncontrollableSource);
    let b = bl.transition("b", TransitionKind::UncontrollableSource);
    let c = bl.transition("c", TransitionKind::Internal);
    bl.arc_t2p(a, p1, 1);
    bl.arc_t2p(b, p2, 1);
    bl.arc_p2t(p1, c, 1);
    bl.arc_p2t(p2, c, 1);
    let net = bl.build().unwrap();
    let a = net.transition_by_name("a").unwrap();
    assert_engines_agree_all_profiles(&net, a);
}

#[test]
fn engines_agree_under_tiny_node_budgets() {
    let net = figure8();
    let a = net.transition_by_name("a").unwrap();
    for max_nodes in 2..20 {
        let opts = ScheduleOptions {
            max_nodes,
            ..Default::default()
        };
        assert_engines_agree(&net, a, &opts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(differential_cases()))]

    /// Schedulable or not, both engines reach byte-identical outcomes on
    /// random nets under every option profile. A small node budget keeps
    /// degenerate explosions bounded while still exercising the
    /// budget-exhaustion path differentially. Counterexamples shrink
    /// through the generator's domain-aware strategy (see
    /// `qss_bench::testgen`).
    #[test]
    fn engines_agree_on_random_nets(desc in random_net_strategy()) {
        let (net, source) = build_random(&desc);
        for base in option_profiles() {
            let opts = ScheduleOptions { max_nodes: 3_000, ..base };
            assert_engines_agree(&net, source, &opts);
        }
    }

    /// The `wide` testgen profile: many places, sparse tokens — long
    /// fixed-width slab rows with few marked cells, which is exactly the
    /// layout the flat marking arena has to get right (stride arithmetic,
    /// reserve-then-commit rollbacks, incremental hashes over wide rows).
    #[test]
    fn engines_agree_on_wide_nets(desc in wide_net_strategy()) {
        let (net, source) = build_random(&desc);
        for base in option_profiles() {
            let opts = ScheduleOptions { max_nodes: 3_000, ..base };
            assert_engines_agree(&net, source, &opts);
        }
    }
}
