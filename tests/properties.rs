//! Property-based tests of the core invariants of the reproduction,
//! spanning the Petri-net kernel, the scheduler and the execution
//! substrate.

use proptest::prelude::*;
use qss_core::{find_schedule, ScheduleOptions};
use qss_flowc::{link, parse_process, SystemSpec};
use qss_petri::{
    place_degree, t_invariant_basis, EcsInfo, Marking, NetBuilder, PetriNet, PlaceId, TransitionId,
    TransitionKind,
};
use qss_sim::{
    run_multitask, run_singletask, CycleCostModel, EnvEvent, MultiTaskConfig, SingleTaskConfig,
};

/// A randomly parameterised reactive chain:
/// `source -(w0)-> p0 -(...)-> t0 -> p1 -> t1 ... -> pn`.
/// Produce/consume weights are chosen so a schedule always exists.
fn chain_net(weights: Vec<u32>) -> (PetriNet, TransitionId) {
    let mut b = NetBuilder::new("chain");
    let src = b.transition("src", TransitionKind::UncontrollableSource);
    let mut prev = b.place("p0", 0);
    b.arc_t2p(src, prev, 1);
    for (i, w) in weights.iter().enumerate() {
        let t = b.transition(format!("t{i}"), TransitionKind::Internal);
        // Consume `w` tokens of the previous place, produce one onwards.
        b.arc_p2t(prev, t, *w);
        let next = b.place(format!("p{}", i + 1), 0);
        b.arc_t2p(t, next, 1);
        prev = next;
    }
    // Final consumer drains the last place so the chain is cyclic.
    let sink = b.transition("drain", TransitionKind::Internal);
    b.arc_p2t(prev, sink, 1);
    let net = b.build().unwrap();
    let src = net.transition_by_name("src").unwrap();
    (net, src)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Firing a transition conserves tokens according to the arc weights.
    #[test]
    fn firing_respects_arc_weights(weights in prop::collection::vec(1u32..4, 1..4)) {
        let (net, src) = chain_net(weights);
        let mut m = net.initial_marking();
        for _ in 0..16 {
            let enabled = net.enabled_transitions(&m);
            prop_assert!(!enabled.is_empty());
            let t = enabled[0];
            let next = net.fire(t, &m).unwrap();
            for p in net.place_ids() {
                let expected = m.tokens(p) + net.weight_t2p(t, p) - net.weight_p2t(p, t);
                prop_assert_eq!(next.tokens(p), expected);
            }
            m = next;
        }
        prop_assert!(net.is_enabled(src, &m));
    }

    /// Every invariant returned by the Farkas computation satisfies C·x = 0
    /// and schedules found on weighted chains respect all five properties.
    #[test]
    fn chains_are_schedulable_and_invariants_valid(weights in prop::collection::vec(1u32..4, 1..4)) {
        let (net, src) = chain_net(weights);
        for inv in t_invariant_basis(&net, 10_000) {
            prop_assert!(inv.is_valid_for(&net));
        }
        let schedule = find_schedule(&net, src, &ScheduleOptions::default()).unwrap();
        prop_assert!(schedule.validate(&net).is_ok());
        prop_assert!(schedule.is_single_source(&net));
        // The static bound of every place never exceeds its degree plus the
        // largest single production (the irrelevance criterion's guarantee).
        for p in net.place_ids() {
            let max_in = net
                .place_predecessors(p)
                .iter()
                .map(|&t| net.weight_t2p(t, p))
                .max()
                .unwrap_or(0);
            prop_assert!(schedule.place_peak(p) <= place_degree(&net, p) + max_in);
        }
    }

    /// The ECS partition is a true partition: membership is symmetric,
    /// transitive and every non-source transition belongs to exactly one
    /// ECS whose members share identical presets.
    #[test]
    fn ecs_is_a_partition(weights in prop::collection::vec(1u32..4, 1..5)) {
        let (net, _) = chain_net(weights);
        let ecs = EcsInfo::compute(&net);
        let mut seen = std::collections::BTreeSet::new();
        for e in ecs.ecs_ids() {
            for &t in ecs.members(e) {
                prop_assert!(seen.insert(t), "transition in two ECSs");
                prop_assert_eq!(ecs.ecs_of(t), e);
            }
        }
        prop_assert_eq!(seen.len(), net.num_transitions());
    }

    /// Marking covering is a partial order compatible with token addition.
    #[test]
    fn covering_is_monotone(counts in prop::collection::vec(0u32..5, 1..6), extra in 0u32..5, index in 0usize..6) {
        let m = Marking::from_counts(counts.clone());
        prop_assert!(m.covers(&m));
        let mut bigger = m.clone();
        let p = PlaceId::new(index % counts.len());
        bigger.add_tokens(p, extra);
        prop_assert!(bigger.covers(&m));
        prop_assert!(extra == 0 || !m.covers(&bigger));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Functional equivalence of the two executors on a parametric
    /// scale-and-accumulate pipeline, for arbitrary input streams: the
    /// values delivered to the environment are identical and the generated
    /// task never context-switches.
    #[test]
    fn executors_agree_on_scaling_pipeline(
        inputs in prop::collection::vec(-20i64..20, 1..6),
        scale in 1i64..5,
        buffer in 1u32..5,
    ) {
        let producer = parse_process(&format!(
            "PROCESS producer (In DPORT trigger, Out DPORT data) {{
                 int t;
                 while (1) {{
                     READ_DATA(trigger, t, 1);
                     WRITE_DATA(data, t * {scale}, 1);
                 }}
             }}"
        )).unwrap();
        let consumer = parse_process(
            "PROCESS consumer (In DPORT data, Out DPORT total) {
                 int x, s;
                 while (1) {
                     READ_DATA(data, x, 1);
                     s = s + x;
                     WRITE_DATA(total, s, 1);
                 }
             }",
        ).unwrap();
        let spec = SystemSpec::new("prop_pipeline")
            .with_process(producer)
            .with_process(consumer)
            .with_channel("producer.data", "consumer.data", None)
            .unwrap();
        let system = link(&spec).unwrap();
        let schedules = qss_core::schedule_system(&system, &ScheduleOptions::default()).unwrap();
        let events: Vec<EnvEvent> = inputs
            .iter()
            .map(|&v| EnvEvent::new("producer", "trigger", v))
            .collect();
        let single = run_singletask(
            &system,
            &schedules.schedules,
            &events,
            &SingleTaskConfig::new(CycleCostModel::optimized()),
        )
        .unwrap();
        let multi = run_multitask(
            &system,
            &events,
            &MultiTaskConfig::new(buffer, CycleCostModel::optimized()),
        )
        .unwrap();
        prop_assert_eq!(&single.outputs, &multi.outputs);
        prop_assert_eq!(single.context_switches, 0);
        // Reference semantics: running sums of scaled inputs.
        let mut sum = 0i64;
        let expected: Vec<i64> = inputs.iter().map(|&v| { sum += v * scale; sum }).collect();
        prop_assert_eq!(single.output("consumer", "total"), expected.as_slice());
    }
}
