//! Integration test for Sec. 7.2: the false-path problem and its
//! SELECT-based solution.
//!
//! Two processes exchange bursts over coupled fixed-bound loops. The
//! Petri-net abstraction ignores the loop bounds, so the naive
//! specification looks unschedulable; rewriting the dependent loops with
//! `SELECT` over the data channel and a `done` channel makes the network
//! quasi-statically schedulable with finite buffers.

use qss_core::{schedule_system, ScheduleError, ScheduleOptions};
use qss_flowc::{examples, link, parse_process, LinkedSystem, SystemSpec};
use qss_sim::{
    run_multitask, run_singletask, CycleCostModel, EnvEvent, MultiTaskConfig, SingleTaskConfig,
};

/// Wraps the naive process A so that each burst is triggered by an
/// uncontrollable environment event (the published example is a closed
/// system; the tasks of this paper are generated per environment input).
/// The SELECT rewrite already declares its `start` trigger port.
fn triggered_a(source: &str) -> String {
    if source.contains("DPORT start") {
        return source.to_string();
    }
    source
        .replace("(Out DPORT c0", "(In DPORT start, Out DPORT c0")
        .replace("int i,", "int g, i,")
        .replace(
            "while (1) {",
            "while (1) {\n        READ_DATA(start, g, 1);",
        )
}

fn build(a_source: &str, b_source: &str, with_done: bool) -> LinkedSystem {
    let a = parse_process(&triggered_a(a_source)).unwrap();
    let b = parse_process(b_source).unwrap();
    let mut spec = SystemSpec::new("false_paths")
        .with_process(a)
        .with_process(b)
        .with_channel("A.c0", "B.c0", None)
        .unwrap()
        .with_channel("B.c1", "A.c1", None)
        .unwrap();
    if with_done {
        spec = spec
            .with_channel("A.done0", "B.done0", None)
            .unwrap()
            .with_channel("B.done1", "A.done1", None)
            .unwrap();
    }
    link(&spec).unwrap()
}

#[test]
fn naive_coupled_loops_are_rejected() {
    let system = build(examples::FALSE_PATH_A, examples::FALSE_PATH_B, false);
    let options = ScheduleOptions {
        max_nodes: 20_000,
        ..Default::default()
    };
    let err = schedule_system(&system, &options).unwrap_err();
    assert!(matches!(
        err,
        ScheduleError::NoSchedule { .. } | ScheduleError::SearchBudgetExhausted { .. }
    ));
}

#[test]
fn select_rewrite_is_schedulable_with_unit_buffers() {
    let system = build(
        examples::FALSE_PATH_A_SELECT,
        examples::FALSE_PATH_B_SELECT,
        true,
    );
    let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
    let schedule = &schedules.schedules[0];
    schedule.validate(&system.net).unwrap();
    assert!(schedule.is_single_source(&system.net));
    // Every channel gets a small static bound (the data channels carry the
    // bursts one item at a time).
    for channel in &system.channels {
        let bound = schedules.bound(channel.place);
        assert!((1..=2).contains(&bound), "{} bound {bound}", channel.name);
    }
}

#[test]
fn select_rewrite_behaves_like_the_paper_schedule() {
    // The paper states the synthesized schedule is equivalent to copying
    // 10 items from buf1 to buf3 and 2 items from buf4 to buf2. Execute
    // the generated schedule and the 4-task baseline and compare the
    // number of items moved (observable through the channel-op counters).
    let system = build(
        examples::FALSE_PATH_A_SELECT,
        examples::FALSE_PATH_B_SELECT,
        true,
    );
    let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
    let events: Vec<EnvEvent> = (0..3).map(|i| EnvEvent::new("A", "start", i)).collect();
    let single = run_singletask(
        &system,
        &schedules.schedules,
        &events,
        &SingleTaskConfig::new(CycleCostModel::unoptimized()),
    )
    .unwrap();
    let multi = run_multitask(
        &system,
        &events,
        &MultiTaskConfig::new(16, CycleCostModel::unoptimized()),
    )
    .unwrap();
    assert_eq!(single.outputs, multi.outputs);
    // Per burst: 10 writes + 10 reads on c0, 1+1 on done0, 2+2 on c1,
    // 1+1 on done1, plus the kick read: the two implementations must move
    // the same amount of data.
    assert_eq!(single.channel_ops, multi.channel_ops);
    assert!(single.cycles < multi.cycles);
}
