//! Property-based soundness of the structural static analyzer: on small
//! random nets (the same `testgen` families the differential suite
//! uses), every claim the [`qss_petri::structural`] pre-pass makes is
//! checked against exhaustive (bounded) reachability and the incidence
//! matrix:
//!
//! * a proven place bound is never exceeded by any reachable marking,
//! * every reported P-invariant satisfies `yᵀ·C = 0` exactly,
//! * no transition that actually fires somewhere in the reachability
//!   graph is ever reported dead,
//! * a place reported never-marked never carries a token.
//!
//! The case count follows `QSS_DIFFERENTIAL_NETS` (default 256), the
//! same knob the differential suite uses, so CI can pin both together.

use proptest::prelude::*;
use qss_bench::testgen::{build_random, random_net_strategy, wide_net_strategy};
use qss_petri::{
    incidence_matrix, structural_report, PetriNet, PlaceId, ReachabilityGraph, ReachabilityLimits,
    StructuralLimits, TransitionId,
};
use std::collections::HashSet;

fn soundness_cases() -> u32 {
    std::env::var("QSS_DIFFERENTIAL_NETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Checks every analyzer claim about `net` against ground truth.
fn assert_report_is_sound(net: &PetriNet) {
    let report = structural_report(net, &StructuralLimits::default());

    // P-invariants are exact left annullers of the incidence matrix.
    let c = incidence_matrix(net);
    for inv in &report.p_invariants {
        assert!(
            inv.is_valid_for(net),
            "reported P-invariant {:?} is not a semiflow of {}",
            inv.as_slice(),
            net.name()
        );
        for t in net.transition_ids() {
            let dot: i64 = net
                .place_ids()
                .map(|p| inv.weight(p) as i64 * c.entry(p, t))
                .sum();
            assert_eq!(dot, 0, "yᵀ·C ≠ 0 at column {t} on {}", net.name());
        }
    }

    // Reachability ground truth. The exploration is bounded, which only
    // *under*-approximates peaks and fired transitions — both checks
    // below stay sound under truncation.
    let graph = ReachabilityGraph::explore(net, &ReachabilityLimits::default())
        .expect("exploration succeeds");
    let peaks = graph.place_peaks();

    for p in net.place_ids() {
        if let Some(bound) = report.bound(p) {
            assert!(
                peaks[p.index()] <= bound,
                "place {p} of {} reached {} tokens, above its proven bound {bound}",
                net.name(),
                peaks[p.index()],
            );
        }
    }

    let fired: HashSet<TransitionId> = graph.edges().map(|(_, t, _)| t).collect();
    for &t in &report.dead_transitions {
        assert!(
            !fired.contains(&t),
            "transition {t} of {} fires in the reachability graph but was reported dead",
            net.name()
        );
    }

    let marked: HashSet<PlaceId> = net.place_ids().filter(|p| peaks[p.index()] > 0).collect();
    for &p in &report.never_marked_places {
        assert!(
            !marked.contains(&p),
            "place {p} of {} carries a token somewhere but was reported never-marked",
            net.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(soundness_cases()))]

    #[test]
    fn analyzer_claims_hold_on_random_nets(desc in random_net_strategy()) {
        let (net, _source) = build_random(&desc);
        assert_report_is_sound(&net);
    }

    #[test]
    fn analyzer_claims_hold_on_wide_nets(desc in wide_net_strategy()) {
        let (net, _source) = build_random(&desc);
        assert_report_is_sound(&net);
    }
}

#[test]
fn analyzer_claims_hold_on_the_pfc_case_study() {
    let system = qss_sim::pfc_system(&qss_sim::PfcParams::tiny()).expect("PFC system links");
    assert_report_is_sound(&system.net);
}
