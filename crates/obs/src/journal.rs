//! A bounded ring-buffer span journal with a Chrome-trace exporter.
//!
//! Spans are **async-style** begin/end event pairs correlated by a
//! journal-assigned span id: begin and end may happen on different
//! threads (a request begins on the event loop and ends on whichever
//! thread publishes its response), which is exactly what the Chrome
//! trace-event format's `b`/`e` async phases model. Each event carries a
//! monotonic microsecond timestamp, an optional parent span id, and a
//! short thread *tag* (`"loop"`, `"worker"`, `"search"` …) the exporter
//! maps to stable `tid`s.
//!
//! The journal is bounded: past `capacity` events the oldest are dropped
//! (and counted), so a long-lived daemon's journal is a sliding window,
//! never a leak. Timestamps come from a `Clock` — the real monotonic
//! clock by default, or an injectable [`VirtualClock`] so tests and
//! goldens get deterministic bytes.
//!
//! [`export_chrome_trace`](SpanJournal::export_chrome_trace) renders the
//! window as Chrome trace-event JSON (`chrome://tracing` and Perfetto
//! both load it) with a fixed key order, making the output a pure
//! function of the recorded events.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A journal-assigned span identifier. `SpanId(0)` is the "no span"
/// sentinel a disabled observer hands out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The sentinel id of a span that was never recorded.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is a real recorded span.
    pub fn is_recorded(self) -> bool {
        self.0 != 0
    }
}

/// Whether an event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// The span opened.
    Begin,
    /// The span closed.
    End,
}

/// One recorded begin or end event.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Microseconds since the journal's clock origin.
    pub ts_micros: u64,
    /// The span this event belongs to.
    pub id: SpanId,
    /// The enclosing span, `SpanId::NONE` for roots (begin events only).
    pub parent: SpanId,
    /// Span name, e.g. `"request"` or `"search"`.
    pub name: String,
    /// Short tag of the recording thread, e.g. `"loop"`.
    pub tag: &'static str,
    /// Begin or end.
    pub phase: SpanPhase,
}

/// The journal's time source.
#[derive(Clone)]
enum Clock {
    /// Real monotonic time, anchored at journal creation.
    Monotonic(Instant),
    /// Test-injectable time advanced by hand.
    Virtual(Arc<AtomicU64>),
}

impl Clock {
    fn now_micros(&self) -> u64 {
        match self {
            Clock::Monotonic(origin) => origin.elapsed().as_micros() as u64,
            Clock::Virtual(now) => now.load(Ordering::Relaxed),
        }
    }
}

/// A hand-advanced clock for deterministic journal tests and goldens.
#[derive(Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock by `micros`.
    pub fn advance(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::Relaxed);
    }

    /// The current reading in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

struct Ring {
    events: VecDeque<SpanEvent>,
}

/// A bounded, thread-safe journal of span begin/end events.
pub struct SpanJournal {
    ring: Mutex<Ring>,
    capacity: usize,
    next_id: AtomicU64,
    dropped: AtomicU64,
    clock: Clock,
}

impl SpanJournal {
    /// A journal holding at most `capacity` events, stamped by the real
    /// monotonic clock.
    pub fn new(capacity: usize) -> Self {
        SpanJournal::with_clock(capacity, Clock::Monotonic(Instant::now()))
    }

    /// A journal stamped by `clock` — deterministic tests and goldens.
    pub fn with_virtual_clock(capacity: usize, clock: &VirtualClock) -> Self {
        SpanJournal::with_clock(capacity, Clock::Virtual(Arc::clone(&clock.now)))
    }

    fn with_clock(capacity: usize, clock: Clock) -> Self {
        SpanJournal {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(4096)),
            }),
            capacity: capacity.max(2),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            clock,
        }
    }

    /// The journal's current clock reading in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Events dropped so far to keep the window bounded.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Opens a span and returns its id.
    pub fn begin(&self, name: impl Into<String>, parent: SpanId, tag: &'static str) -> SpanId {
        let id = SpanId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.push(SpanEvent {
            ts_micros: self.clock.now_micros(),
            id,
            parent,
            name: name.into(),
            tag,
            phase: SpanPhase::Begin,
        });
        id
    }

    /// Closes a span opened by [`begin`](Self::begin). Closing
    /// [`SpanId::NONE`] is a no-op.
    pub fn end(&self, id: SpanId, name: impl Into<String>, tag: &'static str) {
        if !id.is_recorded() {
            return;
        }
        self.push(SpanEvent {
            ts_micros: self.clock.now_micros(),
            id,
            parent: SpanId::NONE,
            name: name.into(),
            tag,
            phase: SpanPhase::End,
        });
    }

    fn push(&self, event: SpanEvent) {
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.events.push_back(event);
    }

    /// A copy of the journal's current window, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the window as Chrome trace-event JSON.
    ///
    /// The output is `{"displayTimeUnit": "ms", "traceEvents": [...]}`:
    /// one `M`-phase `thread_name` metadata event per distinct thread
    /// tag (tids assigned in first-appearance order), then the span
    /// events as async `b`/`e` pairs correlated by id, each `b` carrying
    /// its parent id in `args`. Key order is fixed, so under a virtual
    /// clock the bytes are deterministic.
    pub fn export_chrome_trace(&self) -> String {
        export_chrome_trace(&self.events())
    }
}

/// Renders a slice of span events as Chrome trace-event JSON (see
/// [`SpanJournal::export_chrome_trace`]).
pub fn export_chrome_trace(events: &[SpanEvent]) -> String {
    let mut tags: Vec<&'static str> = Vec::new();
    for event in events {
        if !tags.contains(&event.tag) {
            tags.push(event.tag);
        }
    }
    let tid = |tag: &str| tags.iter().position(|t| *t == tag).unwrap_or(0) + 1;

    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    for (index, tag) in tags.iter().enumerate() {
        emit(&mut out);
        let _ = write!(
            out,
            "{{\"args\":{{\"name\":{}}},\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{}}}",
            json_string(tag),
            index + 1
        );
    }
    for event in events {
        emit(&mut out);
        match event.phase {
            SpanPhase::Begin => {
                let _ = write!(
                    out,
                    "{{\"args\":{{\"parent\":{}}},\"cat\":\"qss\",\"id\":{},\"name\":{},\"ph\":\"b\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
                    event.parent.0,
                    event.id.0,
                    json_string(&event.name),
                    tid(event.tag),
                    event.ts_micros
                );
            }
            SpanPhase::End => {
                let _ = write!(
                    out,
                    "{{\"cat\":\"qss\",\"id\":{},\"name\":{},\"ph\":\"e\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
                    event.id.0,
                    json_string(&event.name),
                    tid(event.tag),
                    event.ts_micros
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_round_trip_under_virtual_clock() {
        let clock = VirtualClock::new();
        let journal = SpanJournal::with_virtual_clock(64, &clock);
        let root = journal.begin("request", SpanId::NONE, "loop");
        clock.advance(100);
        let child = journal.begin("search", root, "search");
        clock.advance(250);
        journal.end(child, "search", "search");
        clock.advance(5);
        journal.end(root, "request", "loop");
        let events = journal.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].ts_micros, 0);
        assert_eq!(events[1].parent, root);
        assert_eq!(events[2].ts_micros, 350);
        assert_eq!(events[3].id, root);
        assert_eq!(journal.dropped(), 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let journal = SpanJournal::new(4);
        for i in 0..10 {
            journal.begin(format!("s{i}"), SpanId::NONE, "t");
        }
        let events = journal.events();
        assert_eq!(events.len(), 4);
        assert_eq!(journal.dropped(), 6);
        // The window keeps the newest events.
        assert_eq!(events[3].name, "s9");
    }

    #[test]
    fn ending_the_none_span_is_a_no_op() {
        let journal = SpanJournal::new(8);
        journal.end(SpanId::NONE, "ghost", "t");
        assert!(journal.events().is_empty());
    }

    #[test]
    fn export_is_deterministic_and_tags_get_stable_tids() {
        let clock = VirtualClock::new();
        let journal = SpanJournal::with_virtual_clock(64, &clock);
        let a = journal.begin("request", SpanId::NONE, "loop");
        clock.advance(10);
        journal.end(a, "request", "worker");
        let first = journal.export_chrome_trace();
        let second = journal.export_chrome_trace();
        assert_eq!(first, second);
        assert!(first.contains("\"thread_name\""));
        assert!(first.contains("\"ph\":\"b\""));
        assert!(first.contains("\"ph\":\"e\""));
        // Two distinct tags, two tids.
        assert!(first.contains("{\"args\":{\"name\":\"loop\"}"));
        assert!(first.contains("{\"args\":{\"name\":\"worker\"}"));
    }
}
