//! Mergeable fixed-bucket log-scale histograms with bounded relative
//! error.
//!
//! The bucket layout is a small HDR-style grid: values below
//! [`LINEAR_BUCKETS`] get one bucket each (exact), and every power-of-two
//! octave above that is split into [`SUB_BUCKETS`] geometric sub-buckets.
//! A bucket's width is therefore at most `1/SUB_BUCKETS` of its lower
//! bound, which bounds every quantile estimate: for a recorded value `v`,
//! the reported estimate `e` (the containing bucket's upper bound)
//! satisfies `v <= e < v * (1 + 1/SUB_BUCKETS)` — with `SUB_BUCKETS = 8`,
//! a relative error of at most **12.5%**, and exact below 16. The layout
//! is value-independent, so histograms merge by bucket-wise addition:
//! merging is associative, commutative, and loses nothing the individual
//! histograms knew.
//!
//! Recording is lock-light: one relaxed `fetch_add` on the bucket plus
//! relaxed updates of count/sum/min/max. Reads take a [`snapshot`] —
//! a plain owned copy safe to merge, query, and serialize offline.
//!
//! [`snapshot`]: Histogram::snapshot

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this get one exact bucket each.
pub const LINEAR_BUCKETS: u64 = 16;

/// Geometric sub-buckets per power-of-two octave above the linear range.
pub const SUB_BUCKETS: u64 = 8;

/// Total number of buckets: the linear range plus `SUB_BUCKETS` per
/// octave for the remaining 60 octaves of the `u64` range.
pub const BUCKET_COUNT: usize = (LINEAR_BUCKETS + (64 - 4) * SUB_BUCKETS) as usize;

/// The documented upper bound on quantile relative error:
/// `1 / SUB_BUCKETS`.
pub const RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// Maps a value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_BUCKETS {
        return v as usize;
    }
    // The value has `msb + 1` significant bits, msb >= 4; the top three
    // bits after the leading one select the sub-bucket.
    let msb = 63 - v.leading_zeros() as u64;
    let sub = (v >> (msb - 3)) & (SUB_BUCKETS - 1);
    (LINEAR_BUCKETS + (msb - 4) * SUB_BUCKETS + sub) as usize
}

/// The largest value that falls into bucket `index` (the value a
/// quantile estimate reports).
pub fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < LINEAR_BUCKETS {
        return index;
    }
    let rest = index - LINEAR_BUCKETS;
    let msb = rest / SUB_BUCKETS + 4;
    let sub = rest % SUB_BUCKETS;
    // The bucket covers [ (8+sub) << (msb-3), ((9+sub) << (msb-3)) - 1 ];
    // the topmost octave saturates at u64::MAX.
    let upper = ((SUB_BUCKETS + sub + 1) as u128) << (msb - 3);
    (upper - 1).min(u64::MAX as u128) as u64
}

/// A concurrent fixed-bucket log-scale histogram of `u64` samples.
///
/// See the module docs for the layout and the error bound. All methods
/// take `&self`; the histogram is shared freely across threads.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array through a Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKET_COUNT]> = buckets
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vector has exactly BUCKET_COUNT elements"));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Takes an owned, mergeable copy of the current state.
    ///
    /// Concurrent recording makes the copy a *consistent-enough* view:
    /// each field is read atomically, but a racing `record` may be
    /// half-visible (e.g. bucket incremented, count not yet). Quiesced
    /// histograms snapshot exactly.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]: mergeable, queryable, serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (layout per [`bucket_index`]).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample, `0` when empty.
    pub min: u64,
    /// Largest sample, `0` when empty.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity of [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Merges `other` into `self` bucket-wise. Associative and
    /// commutative: merging snapshots in any grouping or order yields
    /// the same result as recording every sample into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) of the recorded samples.
    ///
    /// Returns the upper bound of the bucket holding the rank-`⌈q·n⌉`
    /// sample, clamped into `[min, max]` — so the estimate `e` of a true
    /// quantile value `v` satisfies `v <= e <= v * (1 + RELATIVE_ERROR)`
    /// (exact for values below [`LINEAR_BUCKETS`]). Empty snapshots
    /// report `0`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the samples, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1000,
            65535,
            65536,
            1 << 40,
            u64::MAX,
        ] {
            let index = bucket_index(v);
            let upper = bucket_upper_bound(index);
            assert!(v <= upper, "value {v} above its bucket upper {upper}");
            assert!(
                upper as f64 <= v as f64 * (1.0 + RELATIVE_ERROR) || v < LINEAR_BUCKETS,
                "bucket upper {upper} exceeds error bound for {v}"
            );
            if index > 0 {
                assert!(bucket_upper_bound(index - 1) < v);
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0;
        for v in 0..100_000u64 {
            let index = bucket_index(v);
            assert!(index >= last);
            last = index;
        }
    }

    #[test]
    fn quantiles_of_a_known_stream() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        for (q, exact) in [(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let est = snap.quantile(q);
            assert!(est >= exact, "p{q}: {est} < exact {exact}");
            assert!(
                est as f64 <= exact as f64 * (1.0 + RELATIVE_ERROR),
                "p{q}: {est} outside error bound of {exact}"
            );
        }
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(1.0), 1000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 7);
            whole.record(v * 7);
        }
        for v in 0..300u64 {
            b.record(v * 13 + 1);
            whole.record(v * 13 + 1);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let h = Histogram::new();
        h.record(42);
        let snap = h.snapshot();
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&snap);
        assert_eq!(merged, snap);
        let mut merged = snap.clone();
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, snap);
    }
}
