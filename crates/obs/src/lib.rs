//! `qss_obs` — observability primitives for the qss workspace.
//!
//! Three building blocks, std-only and dependency-free:
//!
//! * [`Counter`] — a cloneable handle to one relaxed atomic counter.
//!   Cloning shares the cell, so the same counter can live in a hot
//!   struct *and* in the [`Registry`] without double counting — the
//!   registry is a second view, not a second copy.
//! * [`Histogram`] — a concurrent fixed-bucket log-scale histogram with
//!   p50/p95/p99 estimation at a documented ≤ 12.5% relative error and
//!   lossless bucket-wise merging (see [`hist`]).
//! * [`SpanJournal`] — a bounded ring buffer of begin/end span events
//!   with monotonic (or injectable virtual) timestamps and a Chrome
//!   trace-event exporter (see [`journal`]).
//!
//! Everything hangs off an [`Observer`] handle. `Observer::disabled()`
//! is the no-op form: spans cost one branch, and nothing is retained —
//! instrumented code carries exactly one code path whether or not
//! anyone is watching.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod journal;

pub use hist::{Histogram, HistogramSnapshot, BUCKET_COUNT, RELATIVE_ERROR};
pub use journal::{export_chrome_trace, SpanEvent, SpanId, SpanJournal, SpanPhase, VirtualClock};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A cloneable handle to one atomic counter cell.
///
/// All increments are relaxed — counters are statistics, not
/// synchronization. Clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Whether two handles share one cell.
    pub fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// A named collection of counters and histograms.
///
/// Handles are get-or-create by name; externally owned counters (a
/// cache's hit counter, say) can be *adopted* so the registry reads the
/// very cell the owner bumps.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Counter)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = lock(&self.counters);
        if let Some((_, counter)) = counters.iter().find(|(n, _)| n == name) {
            return counter.clone();
        }
        let counter = Counter::new();
        counters.push((name.to_string(), counter.clone()));
        counter
    }

    /// Adopts an externally owned counter under `name`, replacing any
    /// previous cell of that name. Reading the registry then reads the
    /// owner's cell — one source of truth, two views.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        let mut counters = lock(&self.counters);
        if let Some((_, existing)) = counters.iter_mut().find(|(n, _)| n == name) {
            *existing = counter.clone();
            return;
        }
        counters.push((name.to_string(), counter.clone()));
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = lock(&self.histograms);
        if let Some((_, histogram)) = histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(histogram);
        }
        let histogram = Arc::new(Histogram::new());
        histograms.push((name.to_string(), Arc::clone(&histogram)));
        histogram
    }

    /// An owned snapshot of every counter and histogram, sorted by name
    /// (deterministic output order regardless of registration order).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters: Vec<(String, u64)> = lock(&self.counters)
            .iter()
            .map(|(name, counter)| (name.clone(), counter.get()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = lock(&self.histograms)
            .iter()
            .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        RegistrySnapshot {
            counters,
            histograms,
        }
    }
}

/// An owned, point-in-time copy of a [`Registry`], sorted by name.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

struct ObserverInner {
    registry: Registry,
    journal: SpanJournal,
}

/// The one handle instrumented code holds: a registry plus a span
/// journal, or — in its disabled form — nothing at all.
///
/// The handle clones cheaply (an `Option<Arc>`). Every operation on a
/// disabled observer is a no-op behind a single branch; counter and
/// histogram handles it returns are detached cells nobody ever reads,
/// so call sites need no `if enabled` of their own.
#[derive(Clone)]
pub struct Observer {
    inner: Option<Arc<ObserverInner>>,
}

impl Observer {
    /// The no-op observer.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    /// An armed observer whose journal keeps at most `journal_capacity`
    /// span events, stamped by the real monotonic clock.
    pub fn armed(journal_capacity: usize) -> Self {
        Observer {
            inner: Some(Arc::new(ObserverInner {
                registry: Registry::new(),
                journal: SpanJournal::new(journal_capacity),
            })),
        }
    }

    /// An armed observer stamped by a [`VirtualClock`] — deterministic
    /// tests and goldens.
    pub fn armed_with_virtual_clock(journal_capacity: usize, clock: &VirtualClock) -> Self {
        Observer {
            inner: Some(Arc::new(ObserverInner {
                registry: Registry::new(),
                journal: SpanJournal::with_virtual_clock(journal_capacity, clock),
            })),
        }
    }

    /// Whether this observer records anything.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter named `name` — a detached throwaway cell when
    /// disabled.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::new(),
        }
    }

    /// Adopts an externally owned counter under `name` (no-op when
    /// disabled); see [`Registry::adopt_counter`].
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        if let Some(inner) = &self.inner {
            inner.registry.adopt_counter(name, counter);
        }
    }

    /// The histogram named `name` — a detached throwaway histogram when
    /// disabled.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name),
            None => Arc::new(Histogram::new()),
        }
    }

    /// The journal clock's current reading, `0` when disabled.
    #[inline]
    pub fn now_micros(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.journal.now_micros(),
            None => 0,
        }
    }

    /// Opens a span; returns [`SpanId::NONE`] when disabled.
    #[inline]
    pub fn span_begin(&self, name: &str, parent: SpanId, tag: &'static str) -> SpanId {
        match &self.inner {
            Some(inner) => inner.journal.begin(name, parent, tag),
            None => SpanId::NONE,
        }
    }

    /// Closes a span; no-op when disabled or when `id` is
    /// [`SpanId::NONE`].
    #[inline]
    pub fn span_end(&self, id: SpanId, name: &str, tag: &'static str) {
        if let Some(inner) = &self.inner {
            inner.journal.end(id, name, tag);
        }
    }

    /// A snapshot of the registry (empty when disabled).
    pub fn snapshot(&self) -> RegistrySnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => RegistrySnapshot::default(),
        }
    }

    /// Span events dropped by the bounded journal, `0` when disabled.
    pub fn journal_dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.journal.dropped(),
            None => 0,
        }
    }

    /// The journal as Chrome trace-event JSON, `None` when disabled.
    pub fn export_chrome_trace(&self) -> Option<String> {
        self.inner
            .as_ref()
            .map(|inner| inner.journal.export_chrome_trace())
    }
}

/// Locks a mutex, surviving poisoning (observability must never take
/// the instrumented program down).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_share_cells_across_clones_and_the_registry() {
        let observer = Observer::armed(16);
        let a = observer.counter("requests");
        let b = observer.counter("requests");
        assert!(a.same_cell(&b));
        a.add(3);
        b.inc();
        let snapshot = observer.snapshot();
        assert_eq!(snapshot.counters, vec![("requests".to_string(), 4)]);
    }

    #[test]
    fn adopted_counters_are_views_not_copies() {
        let observer = Observer::armed(16);
        let owned = Counter::new();
        observer.adopt_counter("cache.hits", &owned);
        owned.add(7);
        assert_eq!(observer.snapshot().counters[0].1, 7);
        // Re-adoption replaces the cell.
        let replacement = Counter::new();
        replacement.add(1);
        observer.adopt_counter("cache.hits", &replacement);
        assert_eq!(observer.snapshot().counters[0].1, 1);
    }

    #[test]
    fn disabled_observer_is_inert() {
        let observer = Observer::disabled();
        let counter = observer.counter("x");
        counter.inc();
        observer.histogram("h").record(9);
        let span = observer.span_begin("request", SpanId::NONE, "t");
        assert_eq!(span, SpanId::NONE);
        observer.span_end(span, "request", "t");
        assert!(observer.snapshot().counters.is_empty());
        assert!(observer.export_chrome_trace().is_none());
        assert_eq!(observer.now_micros(), 0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let observer = Observer::armed(16);
        observer.counter("zebra");
        observer.counter("alpha");
        observer.histogram("m");
        observer.histogram("b");
        let snapshot = observer.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zebra"]);
        let names: Vec<&str> = snapshot
            .histograms
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, ["b", "m"]);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let observer = Observer::armed(64);
        let counter = observer.counter("n");
        let histogram = observer.histogram("h");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let counter = counter.clone();
                let histogram = Arc::clone(&histogram);
                thread::spawn(move || {
                    for v in 0..1000u64 {
                        counter.inc();
                        histogram.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.get(), 8000);
        assert_eq!(histogram.snapshot().count, 8000);
    }
}
