//! Golden test for the Chrome trace exporter: under the virtual clock
//! the exported bytes are a pure function of the recorded spans, so they
//! are pinned to a checked-in golden file and diffed in CI exactly like
//! the qssc CLI goldens. Regenerate with
//! `QSS_UPDATE_GOLDENS=1 cargo test -p qss_obs --test golden_trace`.

use qss_obs::{Observer, SpanId, VirtualClock};

/// Replays a fixed two-request lifecycle (one with a coalesced search,
/// one plain) through an armed observer.
fn recorded_observer() -> Observer {
    let clock = VirtualClock::new();
    let observer = Observer::armed_with_virtual_clock(256, &clock);

    let request = observer.span_begin("request kind=schedule", SpanId::NONE, "loop");
    clock.advance(15);
    let queued = observer.span_begin("queued", request, "loop");
    clock.advance(120);
    observer.span_end(queued, "queued", "worker");
    let search = observer.span_begin("search", request, "worker");
    clock.advance(4800);
    observer.span_end(search, "search", "search");
    let respond = observer.span_begin("respond", request, "loop");
    clock.advance(35);
    observer.span_end(respond, "respond", "loop");
    observer.span_end(request, "request kind=schedule", "loop");

    clock.advance(1000);
    let request = observer.span_begin("request kind=stats", SpanId::NONE, "loop");
    clock.advance(9);
    observer.span_end(request, "request kind=stats", "loop");

    observer
}

#[test]
fn chrome_trace_bytes_match_the_golden() {
    let observer = recorded_observer();
    let exported = observer
        .export_chrome_trace()
        .expect("armed observers export");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace.json");
    if std::env::var_os("QSS_UPDATE_GOLDENS").is_some() {
        std::fs::write(path, format!("{exported}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        exported,
        golden.trim_end_matches('\n'),
        "trace exporter bytes drifted from {path}; run with QSS_UPDATE_GOLDENS=1 to regenerate"
    );
}

#[test]
fn exported_trace_replays_identically() {
    // Two independent replays produce the same bytes: the exporter has
    // no hidden state (ids, tids and timestamps are all deterministic).
    let first = recorded_observer().export_chrome_trace().unwrap();
    let second = recorded_observer().export_chrome_trace().unwrap();
    assert_eq!(first, second);
}
