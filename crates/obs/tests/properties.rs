//! Property tests for the log-scale histogram: merge algebra, quantile
//! error bounds against an exact-sort oracle, and monotonicity of the
//! bucket layout under random insert streams.

use proptest::prelude::*;
use qss_obs::hist::{bucket_index, bucket_upper_bound, LINEAR_BUCKETS};
use qss_obs::{Histogram, HistogramSnapshot, RELATIVE_ERROR};

/// Records a stream into a fresh histogram and snapshots it.
fn snap(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The exact `q`-quantile of `values` by sorting (the oracle).
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A sample stream mixing small exact-bucket values, mid-range values
/// and large magnitudes, so every regime of the layout is exercised.
fn stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        (0u64..3, 0u64..1_000_000).prop_map(|(regime, v)| match regime {
            0 => v % 64,                  // exact + first octaves
            1 => v,                       // mid-range
            _ => v.wrapping_mul(1 << 40), // high octaves
        }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging is commutative and associative: any grouping/order of
    /// partial histograms equals recording everything into one.
    #[test]
    fn merge_is_associative_and_commutative(
        a in stream(),
        b in stream(),
        c in stream(),
    ) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab;
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Both equal the one-histogram ground truth.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &snap(&all));
    }

    /// Quantile estimates stay within the documented relative error of
    /// the exact-sort oracle: `exact <= estimate <= exact * 1.125`.
    #[test]
    fn quantiles_are_within_documented_error(values in stream()) {
        let snapshot = snap(&values);
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let estimate = snapshot.quantile(q);
            prop_assert!(
                estimate >= exact,
                "p{}: estimate {} below exact {}",
                q, estimate, exact
            );
            prop_assert!(
                estimate as f64 <= exact as f64 * (1.0 + RELATIVE_ERROR),
                "p{}: estimate {} outside {}% of exact {}",
                q, estimate, RELATIVE_ERROR * 100.0, exact
            );
        }
    }

    /// The bucket layout is monotone (larger values never land in
    /// earlier buckets) and bracketing (each value lies at or below its
    /// bucket's upper bound, above the previous bucket's).
    #[test]
    fn bucket_layout_is_monotone_and_bracketing(values in stream()) {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            prop_assert!(bucket_index(pair[0]) <= bucket_index(pair[1]));
        }
        for &v in &values {
            let index = bucket_index(v);
            prop_assert!(v <= bucket_upper_bound(index));
            if index > 0 {
                prop_assert!(bucket_upper_bound(index - 1) < v || v < LINEAR_BUCKETS);
            }
        }
    }

    /// Recording more samples never decreases any bucket count, and the
    /// total always equals the stream length (no sample is lost or
    /// double-counted anywhere in the layout).
    #[test]
    fn counts_grow_monotonically_under_inserts(values in stream()) {
        let h = Histogram::new();
        let mut previous = h.snapshot();
        for (i, &v) in values.iter().enumerate() {
            h.record(v);
            let current = h.snapshot();
            prop_assert_eq!(current.count, i as u64 + 1);
            // Bucket totals must account for every sample.
            prop_assert_eq!(current.buckets.iter().sum::<u64>(), current.count);
            for (b, (now, before)) in
                current.buckets.iter().zip(&previous.buckets).enumerate()
            {
                prop_assert!(now >= before, "bucket {} shrank", b);
            }
            previous = current;
        }
    }
}
