//! Bounded reachability exploration.
//!
//! Nets with source transitions have infinite reachability graphs, so all
//! exploration in this crate is bounded: by a maximum number of distinct
//! markings and, optionally, by a per-place token cap. The scheduler crate
//! performs its own, smarter exploration (the EP algorithm); this module is
//! used for structural analyses such as unique-choice classification and
//! for tests.

use crate::error::{NetError, Result};
use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::PetriNet;
use crate::store::{MarkingId, MarkingStore};
use std::collections::VecDeque;

/// Limits applied to a reachability exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityLimits {
    /// Maximum number of distinct markings to visit before giving up.
    pub max_markings: usize,
    /// If set, markings in which any place exceeds this many tokens are not
    /// expanded further (they are still recorded).
    pub max_tokens_per_place: Option<u32>,
}

impl Default for ReachabilityLimits {
    fn default() -> Self {
        ReachabilityLimits {
            max_markings: 10_000,
            max_tokens_per_place: Some(16),
        }
    }
}

/// An explicit (bounded) reachability graph.
///
/// Node indices coincide with [`MarkingId`] indices: the graph is backed
/// by a [`MarkingStore`] whose interning order *is* the BFS visit order,
/// so the store doubles as both the marking slab and the dedup index —
/// membership queries are hash probes and distinct markings are stored
/// exactly once.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    /// Visited markings, hash-consed; `MarkingId(i)` is node `i`.
    store: MarkingStore,
    /// Edges as `(from-node, transition, to-node)` triples.
    edges: Vec<(usize, TransitionId, usize)>,
    /// Whether the exploration was truncated by the limits.
    truncated: bool,
}

impl ReachabilityGraph {
    /// Explores the reachable markings of `net` from its initial marking.
    ///
    /// # Errors
    /// Returns [`NetError::LimitExceeded`] only if the *initial* marking
    /// already violates `max_tokens_per_place`; otherwise truncation is
    /// reported through [`ReachabilityGraph::is_truncated`].
    pub fn explore(net: &PetriNet, limits: &ReachabilityLimits) -> Result<Self> {
        let m0 = net.initial_marking();
        if let Some(cap) = limits.max_tokens_per_place {
            if m0.as_slice().iter().any(|&c| c > cap) {
                return Err(NetError::LimitExceeded(format!(
                    "initial marking exceeds the per-place cap of {cap}"
                )));
            }
        }
        let mut store = MarkingStore::new();
        store.intern_owned(m0);
        let mut edges = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(0);
        let mut truncated = false;

        while let Some(node) = queue.pop_front() {
            let current = store.resolve(MarkingId(node as u32)).clone();
            if let Some(cap) = limits.max_tokens_per_place {
                if current.as_slice().iter().any(|&c| c > cap) {
                    truncated = true;
                    continue;
                }
            }
            for t in net.transition_ids() {
                if !net.is_enabled(t, &current) {
                    continue;
                }
                let next = net.fire_unchecked(t, &current);
                let next_node = match store.lookup(&next) {
                    Some(id) => id.index(),
                    None => {
                        if store.len() >= limits.max_markings {
                            truncated = true;
                            continue;
                        }
                        let i = store.intern_owned(next).index();
                        queue.push_back(i);
                        i
                    }
                };
                edges.push((node, t, next_node));
            }
        }
        Ok(ReachabilityGraph {
            store,
            edges,
            truncated,
        })
    }

    /// The distinct markings visited, in visit order (the first is the
    /// initial marking).
    pub fn markings(&self) -> impl Iterator<Item = &Marking> {
        self.store.markings()
    }

    /// The marking of node `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn marking(&self, node: usize) -> &Marking {
        self.store.resolve(MarkingId(node as u32))
    }

    /// The hash-consed marking arena backing the graph. `MarkingId(i)`
    /// is node `i`.
    pub fn store(&self) -> &MarkingStore {
        &self.store
    }

    /// Number of distinct markings visited.
    pub fn num_markings(&self) -> usize {
        self.store.len()
    }

    /// The explored edges as `(from, transition, to)` node-index triples.
    pub fn edges(&self) -> &[(usize, TransitionId, usize)] {
        &self.edges
    }

    /// Returns `true` if the exploration stopped because a limit was hit.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Returns `true` if `m` was visited during the exploration
    /// (an `O(1)` probe of the marking store).
    pub fn contains(&self, m: &Marking) -> bool {
        self.store.lookup(m).is_some()
    }

    /// Returns the node index of `m`, if it was visited.
    pub fn node_of(&self, m: &Marking) -> Option<usize> {
        self.store.lookup(m).map(MarkingId::index)
    }

    /// Returns the maximum token count observed in each place over all
    /// visited markings.
    pub fn place_peaks(&self) -> Vec<u32> {
        let mut peaks: Vec<u32> = Vec::new();
        for m in self.store.markings() {
            peaks.resize(m.len().max(peaks.len()), 0);
            for (i, &c) in m.as_slice().iter().enumerate() {
                peaks[i] = peaks[i].max(c);
            }
        }
        peaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, TransitionKind};

    fn cyclic_net() -> PetriNet {
        let mut b = NetBuilder::new("cycle");
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        let a = b.transition("a", TransitionKind::Internal);
        let c = b.transition("c", TransitionKind::Internal);
        b.arc_p2t(p0, a, 1);
        b.arc_t2p(a, p1, 1);
        b.arc_p2t(p1, c, 1);
        b.arc_t2p(c, p0, 1);
        b.build().unwrap()
    }

    #[test]
    fn bounded_cycle_is_fully_explored() {
        let net = cyclic_net();
        let g = ReachabilityGraph::explore(&net, &ReachabilityLimits::default()).unwrap();
        assert_eq!(g.num_markings(), 2);
        assert_eq!(g.edges().len(), 2);
        assert!(!g.is_truncated());
        assert!(g.contains(&net.initial_marking()));
        assert_eq!(g.node_of(&net.initial_marking()), Some(0));
        assert!(!g.contains(&Marking::from_counts([7, 7])));
        assert_eq!(g.place_peaks(), vec![1, 1]);
    }

    #[test]
    fn source_net_exploration_truncates() {
        let mut b = NetBuilder::new("unbounded");
        let p = b.place("p", 0);
        let src = b.transition("src", TransitionKind::UncontrollableSource);
        b.arc_t2p(src, p, 1);
        let net = b.build().unwrap();
        let limits = ReachabilityLimits {
            max_markings: 50,
            max_tokens_per_place: Some(8),
        };
        let g = ReachabilityGraph::explore(&net, &limits).unwrap();
        assert!(g.is_truncated());
        assert!(g.num_markings() <= 50);
    }

    #[test]
    fn marking_cap_limits_growth() {
        let mut b = NetBuilder::new("growth");
        let p = b.place("p", 0);
        let src = b.transition("src", TransitionKind::UncontrollableSource);
        b.arc_t2p(src, p, 1);
        let net = b.build().unwrap();
        let limits = ReachabilityLimits {
            max_markings: 1_000,
            max_tokens_per_place: Some(3),
        };
        let g = ReachabilityGraph::explore(&net, &limits).unwrap();
        // markings with 0..=4 tokens are recorded (the 4-token one is not
        // expanded), so the peak is 4.
        assert_eq!(g.place_peaks(), vec![4]);
        assert!(g.is_truncated());
    }

    #[test]
    fn invalid_initial_marking_is_rejected() {
        let mut b = NetBuilder::new("overfull");
        b.place("p", 100);
        let net = b.build().unwrap();
        let limits = ReachabilityLimits {
            max_markings: 10,
            max_tokens_per_place: Some(4),
        };
        assert!(matches!(
            ReachabilityGraph::explore(&net, &limits),
            Err(NetError::LimitExceeded(_))
        ));
    }
}
