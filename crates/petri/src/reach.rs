//! Bounded reachability exploration.
//!
//! Nets with source transitions have infinite reachability graphs, so all
//! exploration in this crate is bounded: by a maximum number of distinct
//! markings and, optionally, by a per-place token cap. The scheduler crate
//! performs its own, smarter exploration (the EP algorithm); this module is
//! used for structural analyses such as unique-choice classification and
//! for tests.

use crate::error::{NetError, Result};
use crate::ids::TransitionId;
use crate::net::PetriNet;
use crate::store::{MarkingId, MarkingStore};
use std::collections::VecDeque;

/// Limits applied to a reachability exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityLimits {
    /// Maximum number of distinct markings to visit before giving up.
    pub max_markings: usize,
    /// If set, markings in which any place exceeds this many tokens are not
    /// expanded further (they are still recorded).
    pub max_tokens_per_place: Option<u32>,
}

impl Default for ReachabilityLimits {
    fn default() -> Self {
        ReachabilityLimits {
            max_markings: 10_000,
            max_tokens_per_place: Some(16),
        }
    }
}

/// An explicit (bounded) reachability graph on flat arenas.
///
/// Node indices coincide with [`MarkingId`] indices: the graph is backed
/// by a [`MarkingStore`] whose interning order *is* the BFS visit order,
/// so the store doubles as both the marking slab and the dedup index —
/// membership queries are hash probes and distinct markings are stored
/// exactly once. Successor lists live in one CSR (compressed sparse row)
/// pair of arrays — `succ_offsets[v]..succ_offsets[v + 1]` indexes node
/// `v`'s `(transition, target)` edges in `succ` — so the whole graph is
/// two flat vectors plus the marking slab, with no per-node allocation.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    /// Visited markings, hash-consed; `MarkingId(i)` is node `i`.
    store: MarkingStore,
    /// CSR row offsets into `succ`, one entry per node plus a sentinel.
    succ_offsets: Vec<u32>,
    /// All edges as `(transition, target node)`, grouped by source node in
    /// BFS order.
    succ: Vec<(TransitionId, u32)>,
    /// Whether the exploration was truncated by the limits.
    truncated: bool,
}

impl ReachabilityGraph {
    /// Explores the reachable markings of `net` from its initial marking.
    ///
    /// # Errors
    /// Returns [`NetError::LimitExceeded`] only if the *initial* marking
    /// already violates `max_tokens_per_place`; otherwise truncation is
    /// reported through [`ReachabilityGraph::is_truncated`].
    pub fn explore(net: &PetriNet, limits: &ReachabilityLimits) -> Result<Self> {
        let m0 = net.initial_marking();
        if let Some(cap) = limits.max_tokens_per_place {
            if m0.as_slice().iter().any(|&c| c > cap) {
                return Err(NetError::LimitExceeded(format!(
                    "initial marking exceeds the per-place cap of {cap}"
                )));
            }
        }
        let mut store = MarkingStore::with_stride(net.num_places());
        let _ = store.intern(m0.as_slice());
        let mut succ_offsets: Vec<u32> = vec![0];
        let mut succ: Vec<(TransitionId, u32)> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(0);
        let mut truncated = false;
        // The current node's counts, copied out of the slab because firing
        // successors appends to it (one buffer reused for every node).
        let mut current: Vec<u32> = Vec::with_capacity(net.num_places());

        while let Some(node) = queue.pop_front() {
            // BFS pops nodes in interning order, which keeps the CSR rows
            // aligned with node indices as they are appended.
            debug_assert_eq!(node + 1, succ_offsets.len());
            let id = MarkingId(node as u32);
            current.clear();
            current.extend_from_slice(store.resolve(id));
            let over_cap = limits
                .max_tokens_per_place
                .is_some_and(|cap| current.iter().any(|&c| c > cap));
            if over_cap {
                truncated = true;
                succ_offsets.push(succ.len() as u32);
                continue;
            }
            for t in net.transition_ids() {
                if !net.is_enabled_at(t, &current) {
                    continue;
                }
                match store.fire_bounded(net, t, id, limits.max_markings) {
                    Some((next, newly_interned)) => {
                        if newly_interned {
                            queue.push_back(next.index());
                        }
                        succ.push((t, next.0));
                    }
                    None => truncated = true,
                }
            }
            succ_offsets.push(succ.len() as u32);
        }
        debug_assert_eq!(succ_offsets.len(), store.len() + 1);
        Ok(ReachabilityGraph {
            store,
            succ_offsets,
            succ,
            truncated,
        })
    }

    /// The distinct markings visited as raw counts rows, in visit order
    /// (the first is the initial marking).
    pub fn markings(&self) -> impl Iterator<Item = &[u32]> {
        self.store.markings()
    }

    /// The marking of node `node`, as a raw counts row.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn marking(&self, node: usize) -> &[u32] {
        self.store.resolve(MarkingId(node as u32))
    }

    /// The hash-consed marking arena backing the graph. `MarkingId(i)`
    /// is node `i`.
    pub fn store(&self) -> &MarkingStore {
        &self.store
    }

    /// Number of distinct markings visited.
    pub fn num_markings(&self) -> usize {
        self.store.len()
    }

    /// Number of explored edges.
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// The `(transition, target node)` successors of `node` — one CSR row
    /// slice, no per-node storage.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn successors(&self, node: usize) -> &[(TransitionId, u32)] {
        let lo = self.succ_offsets[node] as usize;
        let hi = self.succ_offsets[node + 1] as usize;
        &self.succ[lo..hi]
    }

    /// The explored edges as `(from, transition, to)` node-index triples,
    /// in BFS order (an adapter over the CSR arrays).
    pub fn edges(&self) -> impl Iterator<Item = (usize, TransitionId, usize)> + '_ {
        (0..self.num_markings()).flat_map(move |v| {
            self.successors(v)
                .iter()
                .map(move |&(t, w)| (v, t, w as usize))
        })
    }

    /// Returns `true` if the exploration stopped because a limit was hit.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Returns `true` if the marking with counts `m` was visited during
    /// the exploration (an `O(1)` probe of the marking store).
    pub fn contains(&self, m: &[u32]) -> bool {
        self.store.lookup(m).is_some()
    }

    /// Returns the node index of the marking with counts `m`, if it was
    /// visited.
    pub fn node_of(&self, m: &[u32]) -> Option<usize> {
        self.store.lookup(m).map(MarkingId::index)
    }

    /// Returns the maximum token count observed in each place over all
    /// visited markings.
    pub fn place_peaks(&self) -> Vec<u32> {
        let mut peaks: Vec<u32> = Vec::new();
        for m in self.store.markings() {
            peaks.resize(m.len().max(peaks.len()), 0);
            for (i, &c) in m.iter().enumerate() {
                peaks[i] = peaks[i].max(c);
            }
        }
        peaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, TransitionKind};

    fn cyclic_net() -> PetriNet {
        let mut b = NetBuilder::new("cycle");
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        let a = b.transition("a", TransitionKind::Internal);
        let c = b.transition("c", TransitionKind::Internal);
        b.arc_p2t(p0, a, 1);
        b.arc_t2p(a, p1, 1);
        b.arc_p2t(p1, c, 1);
        b.arc_t2p(c, p0, 1);
        b.build().unwrap()
    }

    #[test]
    fn bounded_cycle_is_fully_explored() {
        let net = cyclic_net();
        let g = ReachabilityGraph::explore(&net, &ReachabilityLimits::default()).unwrap();
        assert_eq!(g.num_markings(), 2);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_truncated());
        assert!(g.contains(net.initial_marking().as_slice()));
        assert_eq!(g.node_of(net.initial_marking().as_slice()), Some(0));
        assert!(!g.contains(&[7, 7]));
        assert_eq!(g.place_peaks(), vec![1, 1]);
    }

    #[test]
    fn csr_successors_match_the_edge_list() {
        let net = cyclic_net();
        let g = ReachabilityGraph::explore(&net, &ReachabilityLimits::default()).unwrap();
        let a = net.transition_by_name("a").unwrap();
        let c = net.transition_by_name("c").unwrap();
        assert_eq!(g.successors(0), &[(a, 1)]);
        assert_eq!(g.successors(1), &[(c, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, a, 1), (1, c, 0)]);
        // Firing the edge transition at the source marking reaches the
        // target marking — the CSR rows are real successor lists.
        for (v, t, w) in g.edges() {
            let mut next = g.marking(v).to_vec();
            net.fire_into_slice(t, &mut next);
            assert_eq!(&next, g.marking(w));
        }
    }

    #[test]
    fn source_net_exploration_truncates() {
        let mut b = NetBuilder::new("unbounded");
        let p = b.place("p", 0);
        let src = b.transition("src", TransitionKind::UncontrollableSource);
        b.arc_t2p(src, p, 1);
        let net = b.build().unwrap();
        let limits = ReachabilityLimits {
            max_markings: 50,
            max_tokens_per_place: Some(8),
        };
        let g = ReachabilityGraph::explore(&net, &limits).unwrap();
        assert!(g.is_truncated());
        assert!(g.num_markings() <= 50);
    }

    #[test]
    fn marking_cap_limits_growth() {
        let mut b = NetBuilder::new("growth");
        let p = b.place("p", 0);
        let src = b.transition("src", TransitionKind::UncontrollableSource);
        b.arc_t2p(src, p, 1);
        let net = b.build().unwrap();
        let limits = ReachabilityLimits {
            max_markings: 1_000,
            max_tokens_per_place: Some(3),
        };
        let g = ReachabilityGraph::explore(&net, &limits).unwrap();
        // markings with 0..=4 tokens are recorded (the 4-token one is not
        // expanded), so the peak is 4.
        assert_eq!(g.place_peaks(), vec![4]);
        assert!(g.is_truncated());
    }

    #[test]
    fn invalid_initial_marking_is_rejected() {
        let mut b = NetBuilder::new("overfull");
        b.place("p", 100);
        let net = b.build().unwrap();
        let limits = ReachabilityLimits {
            max_markings: 10,
            max_tokens_per_place: Some(4),
        };
        assert!(matches!(
            ReachabilityGraph::explore(&net, &limits),
            Err(NetError::LimitExceeded(_))
        ));
    }
}
