//! Graphviz/DOT export of Petri nets, for debugging and documentation.

use crate::net::{PetriNet, PlaceKind, TransitionKind};
use std::fmt::Write as _;

/// Renders `net` to Graphviz DOT format.
///
/// Places are drawn as circles labelled with their name and initial token
/// count, transitions as boxes; channel places are shaded, source
/// transitions are shown with a double border.
///
/// ```
/// use qss_petri::{NetBuilder, TransitionKind, dot::to_dot};
/// let mut b = NetBuilder::new("demo");
/// let p = b.place("p", 1);
/// let t = b.transition("t", TransitionKind::Internal);
/// b.arc_p2t(p, t, 1);
/// let net = b.build().unwrap();
/// let dot = to_dot(&net);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("\"p\""));
/// ```
pub fn to_dot(net: &PetriNet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", net.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for p in net.place_ids() {
        let place = net.place(p);
        let fill = match place.kind {
            PlaceKind::Internal => "white",
            PlaceKind::Channel => "lightblue",
            PlaceKind::EnvironmentPort => "lightyellow",
        };
        let label = if place.initial > 0 {
            format!("{} ({})", place.name, place.initial)
        } else {
            place.name.clone()
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape=circle, style=filled, fillcolor={}, label=\"{}\"];",
            place.name, fill, label
        );
    }
    for t in net.transition_ids() {
        let tr = net.transition(t);
        let peripheries = match tr.kind {
            TransitionKind::UncontrollableSource | TransitionKind::ControllableSource => 2,
            _ => 1,
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box, peripheries={}, label=\"{}\"];",
            tr.name, peripheries, tr.name
        );
    }
    for t in net.transition_ids() {
        let tname = &net.transition(t).name;
        for (p, w) in net.preset(t) {
            let pname = &net.place(*p).name;
            if *w == 1 {
                let _ = writeln!(out, "  \"{pname}\" -> \"{tname}\";");
            } else {
                let _ = writeln!(out, "  \"{pname}\" -> \"{tname}\" [label=\"{w}\"];");
            }
        }
        for (p, w) in net.postset(t) {
            let pname = &net.place(*p).name;
            if *w == 1 {
                let _ = writeln!(out, "  \"{tname}\" -> \"{pname}\";");
            } else {
                let _ = writeln!(out, "  \"{tname}\" -> \"{pname}\" [label=\"{w}\"];");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, PlaceKind, TransitionKind};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = NetBuilder::new("dot-test");
        let p = b.place_with_kind("chan", 2, PlaceKind::Channel, Some(4));
        let src = b.transition("in", TransitionKind::UncontrollableSource);
        let t = b.transition("work", TransitionKind::Internal);
        b.arc_t2p(src, p, 1);
        b.arc_p2t(p, t, 3);
        let net = b.build().unwrap();
        let dot = to_dot(&net);
        assert!(dot.contains("digraph \"dot-test\""));
        assert!(dot.contains("\"chan\""));
        assert!(dot.contains("chan (2)"));
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("[label=\"3\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
