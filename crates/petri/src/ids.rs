//! Strongly-typed identifiers for places and transitions.
//!
//! Both identifiers are small indices into the owning [`PetriNet`]'s
//! internal vectors. Newtypes keep place indices from being confused with
//! transition indices at compile time.
//!
//! [`PetriNet`]: crate::PetriNet

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a place within a [`PetriNet`](crate::PetriNet).
///
/// ```
/// use qss_petri::PlaceId;
/// let p = PlaceId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlaceId(u32);

/// Identifier of a transition within a [`PetriNet`](crate::PetriNet).
///
/// ```
/// use qss_petri::TransitionId;
/// let t = TransitionId::new(7);
/// assert_eq!(t.index(), 7);
/// assert_eq!(t.to_string(), "t7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransitionId(u32);

impl PlaceId {
    /// Creates a place identifier from a raw index.
    pub fn new(index: usize) -> Self {
        PlaceId(index as u32)
    }

    /// Returns the raw index of this place.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TransitionId {
    /// Creates a transition identifier from a raw index.
    pub fn new(index: usize) -> Self {
        TransitionId(index as u32)
    }

    /// Returns the raw index of this transition.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<PlaceId> for usize {
    fn from(id: PlaceId) -> usize {
        id.index()
    }
}

impl From<TransitionId> for usize {
    fn from(id: TransitionId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_id_round_trip() {
        let p = PlaceId::new(42);
        assert_eq!(p.index(), 42);
        assert_eq!(usize::from(p), 42);
    }

    #[test]
    fn transition_id_round_trip() {
        let t = TransitionId::new(17);
        assert_eq!(t.index(), 17);
        assert_eq!(usize::from(t), 17);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PlaceId::new(0).to_string(), "p0");
        assert_eq!(TransitionId::new(5).to_string(), "t5");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PlaceId::new(1) < PlaceId::new(2));
        assert!(TransitionId::new(3) > TransitionId::new(1));
    }
}
