//! Incidence matrices and non-negative T- and P-invariant bases.
//!
//! A T-invariant is a non-negative integer vector `x` with `C·x = 0`, where
//! `C` is the incidence matrix. Firing any sequence containing each
//! transition `t_j` exactly `x_j` times from a marking `M` (if fireable)
//! leads back to `M`. The scheduler uses a non-negative basis of
//! T-invariants both as a quick non-schedulability test (no basis ⇒ no
//! schedule) and to sort ECSs during the search (Sec. 5.5.2 of the paper).
//!
//! A P-invariant (place semiflow) is the dual: a non-negative vector `y`
//! with `yᵀ·C = 0`, so the weighted token count `y·M` is conserved by
//! every firing. Covering P-invariants prove structural place bounds
//! (`M[p] ≤ (y·M0)/y[p]`), which the structural analyzer
//! ([`crate::structural`]) turns into diagnostics and termination bounds.
//!
//! Both bases are computed with the classical Farkas / Fourier–Motzkin
//! elimination — on `[Cᵀ | I]` for T-invariants and on `[C | I]` for
//! P-invariants — producing the minimal-support semiflows of the net.

use crate::ids::{PlaceId, TransitionId};
use crate::net::PetriNet;
use serde::{Deserialize, Serialize};

/// Dense incidence matrix `C` with `C[p][t] = F(t, p) − F(p, t)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncidenceMatrix {
    rows: Vec<Vec<i64>>,
    num_places: usize,
    num_transitions: usize,
}

impl IncidenceMatrix {
    /// Number of places (rows).
    pub fn num_places(&self) -> usize {
        self.num_places
    }

    /// Number of transitions (columns).
    pub fn num_transitions(&self) -> usize {
        self.num_transitions
    }

    /// Entry `C[p][t]`.
    pub fn entry(&self, p: PlaceId, t: TransitionId) -> i64 {
        self.rows[p.index()][t.index()]
    }

    /// Row of the matrix for place `p`.
    pub fn row(&self, p: PlaceId) -> &[i64] {
        &self.rows[p.index()]
    }

    /// Computes `C·x` for a transition-indexed vector `x`.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the number of transitions.
    pub fn apply(&self, x: &[i64]) -> Vec<i64> {
        assert_eq!(x.len(), self.num_transitions);
        self.rows
            .iter()
            .map(|row| row.iter().zip(x).map(|(c, v)| c * v).sum())
            .collect()
    }
}

/// Builds the incidence matrix of `net`.
pub fn incidence_matrix(net: &PetriNet) -> IncidenceMatrix {
    let np = net.num_places();
    let nt = net.num_transitions();
    let mut rows = vec![vec![0i64; nt]; np];
    for t in net.transition_ids() {
        for (p, w) in net.preset(t) {
            rows[p.index()][t.index()] -= *w as i64;
        }
        for (p, w) in net.postset(t) {
            rows[p.index()][t.index()] += *w as i64;
        }
    }
    IncidenceMatrix {
        rows,
        num_places: np,
        num_transitions: nt,
    }
}

/// A non-negative T-invariant: firing counts per transition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TInvariant {
    counts: Vec<u64>,
}

impl TInvariant {
    /// Creates an invariant from explicit firing counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        TInvariant { counts }
    }

    /// Number of firings of transition `t` in this invariant.
    pub fn count(&self, t: TransitionId) -> u64 {
        self.counts[t.index()]
    }

    /// Raw counts, indexed by transition.
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }

    /// Transitions with a non-zero firing count (the *support*).
    pub fn support(&self) -> Vec<TransitionId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| TransitionId::new(i))
            .collect()
    }

    /// Returns `true` if transition `t` appears in the invariant.
    pub fn contains(&self, t: TransitionId) -> bool {
        self.counts[t.index()] > 0
    }

    /// Returns `true` if the invariant is identically zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Component-wise sum of two invariants.
    ///
    /// # Panics
    /// Panics if the invariants have different lengths.
    pub fn sum(&self, other: &TInvariant) -> TInvariant {
        assert_eq!(self.counts.len(), other.counts.len());
        TInvariant {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Verifies `C·x = 0` against a net.
    pub fn is_valid_for(&self, net: &PetriNet) -> bool {
        let c = incidence_matrix(net);
        let x: Vec<i64> = self.counts.iter().map(|&v| v as i64).collect();
        c.apply(&x).iter().all(|&v| v == 0)
    }
}

/// A non-negative P-invariant (place semiflow): weights per place with
/// `yᵀ·C = 0`.
///
/// For every reachable marking `M`, the weighted token count
/// `Σ_p y[p]·M[p]` equals the one of the initial marking, so every place
/// in the invariant's support is structurally bounded by
/// `(y·M0) / y[p]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PInvariant {
    weights: Vec<u64>,
}

impl PInvariant {
    /// Creates an invariant from explicit place weights.
    pub fn from_weights(weights: Vec<u64>) -> Self {
        PInvariant { weights }
    }

    /// Weight of place `p` in this invariant.
    pub fn weight(&self, p: PlaceId) -> u64 {
        self.weights[p.index()]
    }

    /// Raw weights, indexed by place.
    pub fn as_slice(&self) -> &[u64] {
        &self.weights
    }

    /// Places with a non-zero weight (the *support*).
    pub fn support(&self) -> Vec<PlaceId> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(i, _)| PlaceId::new(i))
            .collect()
    }

    /// Returns `true` if place `p` appears in the invariant.
    pub fn contains(&self, p: PlaceId) -> bool {
        self.weights[p.index()] > 0
    }

    /// Returns `true` if the invariant is identically zero.
    pub fn is_zero(&self) -> bool {
        self.weights.iter().all(|&w| w == 0)
    }

    /// The conserved quantity `Σ_p y[p]·m[p]` for a marking given as raw
    /// token counts.
    ///
    /// # Panics
    /// Panics if `marking.len()` differs from the number of places.
    pub fn weighted_tokens(&self, marking: &[u32]) -> u64 {
        assert_eq!(marking.len(), self.weights.len());
        self.weights
            .iter()
            .zip(marking)
            .map(|(&w, &m)| w * m as u64)
            .sum()
    }

    /// Verifies `yᵀ·C = 0` against a net.
    pub fn is_valid_for(&self, net: &PetriNet) -> bool {
        let c = incidence_matrix(net);
        net.transition_ids().all(|t| {
            net.place_ids()
                .map(|p| self.weights[p.index()] as i64 * c.entry(p, t))
                .sum::<i64>()
                == 0
        })
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn normalize(row: &mut [i64]) {
    let g = row
        .iter()
        .map(|v| v.unsigned_abs())
        .filter(|&v| v != 0)
        .fold(0u64, gcd);
    if g > 1 {
        for v in row.iter_mut() {
            *v /= g as i64;
        }
    }
}

/// One working row of the Farkas elimination, stored sparsely as sorted
/// `(column, value)` pairs with zero values elided. Columns `0..np` carry
/// the residual `C·x` restricted to the row's combination, columns
/// `np..np+nt` the accumulated firing counts.
///
/// FlowC-derived nets have incidence columns with 2–4 non-zeros, so a
/// sparse row is an order of magnitude smaller than its dense `np + nt`
/// counterpart — and every elimination step (lookup, combine, dedup)
/// scales with the non-zero count instead of the net size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SparseRow {
    entries: Vec<(u32, i64)>,
}

impl SparseRow {
    /// The value in column `col` (0 if elided).
    fn get(&self, col: u32) -> i64 {
        match self.entries.binary_search_by_key(&col, |&(c, _)| c) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// `fa·self + fb·other`, merged in one pass over both sorted entry
    /// lists; resulting zeros are elided.
    fn combine(&self, fa: i64, other: &SparseRow, fb: i64) -> SparseRow {
        let mut entries = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let (col, v) = match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(ca, va)), Some(&(cb, vb))) => {
                    if ca < cb {
                        i += 1;
                        (ca, fa * va)
                    } else if cb < ca {
                        j += 1;
                        (cb, fb * vb)
                    } else {
                        i += 1;
                        j += 1;
                        (ca, fa * va + fb * vb)
                    }
                }
                (Some(&(ca, va)), None) => {
                    i += 1;
                    (ca, fa * va)
                }
                (None, Some(&(cb, vb))) => {
                    j += 1;
                    (cb, fb * vb)
                }
                (None, None) => unreachable!(),
            };
            if v != 0 {
                entries.push((col, v));
            }
        }
        SparseRow { entries }
    }

    /// Divides every value by the gcd of their absolute values.
    fn normalize(&mut self) {
        let g = self
            .entries
            .iter()
            .map(|&(_, v)| v.unsigned_abs())
            .fold(0u64, gcd);
        if g > 1 {
            for (_, v) in self.entries.iter_mut() {
                *v /= g as i64;
            }
        }
    }

    /// An order-dependent 64-bit fingerprint of the entries. Used to
    /// bucket rows for deduplication; candidates sharing a fingerprint
    /// are compared exactly, so a collision can only cost time.
    fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &(c, v) in &self.entries {
            h ^= (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            h ^= v as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Deduplicating accumulator of the next elimination round: rows bucketed
/// by fingerprint, exact-compared on fingerprint hits. Replaces the
/// former `HashSet<Vec<i64>>` of full dense rows, which hashed and stored
/// every row twice (once in the set, once in the row list).
#[derive(Default)]
struct RowSet {
    rows: Vec<SparseRow>,
    by_fingerprint: crate::fx::FxHashMap<u64, Vec<u32>>,
}

impl RowSet {
    /// Appends `row` unless an equal row is already present.
    fn insert(&mut self, row: SparseRow) {
        let bucket = self.by_fingerprint.entry(row.fingerprint()).or_default();
        if bucket.iter().any(|&i| self.rows[i as usize] == row) {
            return;
        }
        bucket.push(self.rows.len() as u32);
        self.rows.push(row);
    }

    fn len(&self) -> usize {
        self.rows.len()
    }
}

/// The rows surviving one Farkas elimination run, plus whether the run
/// eliminated every column or bailed at the row cap.
pub(crate) struct Elimination {
    pub(crate) rows: Vec<SparseRow>,
    /// `false` when the run hit `row_cap` and returned the partial row set
    /// of the round in progress. The surviving finished rows still yield
    /// valid invariants, but the set is no longer exhaustive — callers
    /// proving *negative* facts (no invariant covers place `p`) must treat
    /// an incomplete run as "unknown".
    pub(crate) complete: bool,
}

/// Eliminates columns `0..ncols` from `rows`, one column at a time, always
/// picking the column that produces the fewest new combinations (a
/// standard heuristic that keeps the intermediate row count small). The
/// per-column sign counts are gathered in one pass over the rows'
/// non-zeros instead of one full row scan per candidate column. The
/// number of intermediate rows is capped at `row_cap`.
pub(crate) fn eliminate(mut rows: Vec<SparseRow>, ncols: usize, row_cap: usize) -> Elimination {
    let mut remaining: Vec<usize> = (0..ncols).collect();
    let mut pos = vec![0usize; ncols];
    let mut neg = vec![0usize; ncols];
    while !remaining.is_empty() {
        pos.iter_mut().for_each(|c| *c = 0);
        neg.iter_mut().for_each(|c| *c = 0);
        for row in &rows {
            for &(c, v) in &row.entries {
                let c = c as usize;
                if c >= ncols {
                    break;
                }
                if v > 0 {
                    pos[c] += 1;
                } else {
                    neg[c] += 1;
                }
            }
        }
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, pos[p] * neg[p] + pos[p] + neg[p]))
            .min_by_key(|(_, cost)| *cost)
            .expect("remaining is non-empty");
        let p = remaining.swap_remove(best_idx) as u32;

        let mut next = RowSet::default();
        let (zeros, nonzeros): (Vec<_>, Vec<_>) = rows.into_iter().partition(|r| r.get(p) == 0);
        for row in zeros {
            next.insert(row);
        }
        // Capture the pivot value once per row: the pair loop below visits
        // every (positive, negative) combination and must not re-run the
        // binary search per pair.
        let positives: Vec<(&SparseRow, i64)> = nonzeros
            .iter()
            .filter_map(|r| match r.get(p) {
                v if v > 0 => Some((r, v)),
                _ => None,
            })
            .collect();
        let negatives: Vec<(&SparseRow, i64)> = nonzeros
            .iter()
            .filter_map(|r| match r.get(p) {
                v if v < 0 => Some((r, v)),
                _ => None,
            })
            .collect();
        for &(rp, a) in &positives {
            for &(rn, nb) in &negatives {
                let b = -nb;
                let l = (a / gcd(a as u64, b as u64) as i64) * b;
                let mut combined = rp.combine(l / a, rn, l / b);
                combined.normalize();
                next.insert(combined);
                if next.len() > row_cap {
                    // Bail out conservatively: the finished rows of the
                    // partial set are still valid invariants.
                    return Elimination {
                        rows: next.rows,
                        complete: false,
                    };
                }
            }
        }
        rows = next.rows;
    }
    Elimination {
        rows,
        complete: true,
    }
}

/// Computes a non-negative basis of T-invariants (minimal-support
/// semiflows) of `net` using Farkas elimination over sparse rows.
///
/// The result may be empty, which the scheduler interprets as "no cyclic
/// schedule can exist". The number of intermediate rows is capped at
/// `row_cap` to guard against the (exponential) worst case; nets produced
/// from FlowC specifications stay far below the cap.
///
/// The elimination pivots, combination order and dedup-by-content are
/// identical to the retained dense implementation
/// ([`t_invariant_basis_dense`]), so both produce the same basis in the
/// same order; the property suite asserts this on random nets.
pub fn t_invariant_basis(net: &PetriNet, row_cap: usize) -> Vec<TInvariant> {
    let np = net.num_places();
    let nt = net.num_transitions();

    // One sparse row per transition: the incidence column plus a unit
    // firing-count entry.
    let mut rows: Vec<SparseRow> = Vec::with_capacity(nt);
    for t in net.transition_ids() {
        let mut delta: std::collections::BTreeMap<u32, i64> = std::collections::BTreeMap::new();
        for (p, w) in net.preset(t) {
            *delta.entry(p.index() as u32).or_insert(0) -= *w as i64;
        }
        for (p, w) in net.postset(t) {
            *delta.entry(p.index() as u32).or_insert(0) += *w as i64;
        }
        let mut entries: Vec<(u32, i64)> = delta.into_iter().filter(|&(_, v)| v != 0).collect();
        entries.push(((np + t.index()) as u32, 1));
        rows.push(SparseRow { entries });
    }

    let elim = eliminate(rows, np, row_cap);
    collect_invariants(&elim.rows, np, nt, net)
}

/// Computes a non-negative basis of P-invariants (minimal-support place
/// semiflows) of `net` — the Farkas dual of [`t_invariant_basis`], run on
/// the transposed incidence matrix `[C | I]` with the same sparse rows,
/// pivot heuristic and `row_cap` bail-out discipline.
///
/// Every returned invariant satisfies `yᵀ·C = 0` (verified before it is
/// admitted); the result may be empty, e.g. for nets whose sources pump
/// tokens into every conservative component.
pub fn p_invariant_basis(net: &PetriNet, row_cap: usize) -> Vec<PInvariant> {
    p_invariant_elimination(net, row_cap).0
}

/// [`p_invariant_basis`] plus the completeness of the underlying
/// elimination: `true` means the returned basis contains *every*
/// minimal-support semiflow, so "no invariant covers `p`" is a proof.
pub fn p_invariant_elimination(net: &PetriNet, row_cap: usize) -> (Vec<PInvariant>, bool) {
    let np = net.num_places();
    let nt = net.num_transitions();

    // One sparse row per place: the incidence row plus a unit weight
    // entry. Transition columns come first so the elimination removes
    // exactly them.
    let mut deltas: Vec<std::collections::BTreeMap<u32, i64>> = vec![Default::default(); np];
    for t in net.transition_ids() {
        for (p, w) in net.preset(t) {
            *deltas[p.index()].entry(t.index() as u32).or_insert(0) -= *w as i64;
        }
        for (p, w) in net.postset(t) {
            *deltas[p.index()].entry(t.index() as u32).or_insert(0) += *w as i64;
        }
    }
    let mut rows: Vec<SparseRow> = Vec::with_capacity(np);
    for (p, delta) in deltas.into_iter().enumerate() {
        let mut entries: Vec<(u32, i64)> = delta.into_iter().filter(|&(_, v)| v != 0).collect();
        entries.push(((nt + p) as u32, 1));
        rows.push(SparseRow { entries });
    }

    let elim = eliminate(rows, nt, row_cap);
    (collect_p_invariants(&elim.rows, np, nt, net), elim.complete)
}

fn collect_p_invariants(
    rows: &[SparseRow],
    np: usize,
    nt: usize,
    net: &PetriNet,
) -> Vec<PInvariant> {
    let mut result: Vec<PInvariant> = Vec::new();
    for row in rows {
        // Only rows whose residual transition part vanished are invariants.
        if row.entries.iter().any(|&(c, _)| (c as usize) < nt) {
            continue;
        }
        if row.entries.is_empty() {
            continue;
        }
        if row.entries.iter().any(|&(_, v)| v < 0) {
            continue;
        }
        let mut weights = vec![0u64; np];
        for &(c, v) in &row.entries {
            weights[c as usize - nt] = v as u64;
        }
        let inv = PInvariant::from_weights(weights);
        if inv.is_valid_for(net) && !result.contains(&inv) {
            result.push(inv);
        }
    }
    minimal_support_p(result)
}

/// Keeps only minimal-support P-invariants to obtain a clean basis.
fn minimal_support_p(result: Vec<PInvariant>) -> Vec<PInvariant> {
    let mut minimal: Vec<PInvariant> = Vec::new();
    for (i, inv) in result.iter().enumerate() {
        let sup: Vec<bool> = inv.as_slice().iter().map(|&w| w > 0).collect();
        let dominated = result.iter().enumerate().any(|(j, other)| {
            if i == j {
                return false;
            }
            let osup: Vec<bool> = other.as_slice().iter().map(|&w| w > 0).collect();
            osup.iter().zip(&sup).all(|(o, s)| !o || *s)
                && osup.iter().zip(&sup).any(|(o, s)| !o && *s)
        });
        if !dominated {
            minimal.push(inv.clone());
        }
    }
    minimal
}

/// Computes generators of the cone `{ y ≥ 0 : yᵀ·C' ≤ 0 }`, where `C'` is
/// the incidence matrix restricted to the transition `columns` — the
/// *sur-invariants* of the restricted net. A place covered by a generator
/// can never gain tokens through those transitions beyond `(y·M0)/y[p]`;
/// when the returned flag is `true` the generator set is exhaustive, so a
/// place covered by *no* generator is provably structurally unbounded
/// under the restricted transitions (Memmi–Roucairol).
///
/// Implemented as a semiflow computation with one slack unknown per
/// column: `yᵀC' + s = 0, (y, s) ≥ 0`.
pub(crate) fn surinvariant_cover(
    net: &PetriNet,
    columns: &[TransitionId],
    row_cap: usize,
) -> (Vec<Vec<u64>>, bool) {
    let np = net.num_places();
    let nc = columns.len();
    let mut deltas: Vec<std::collections::BTreeMap<u32, i64>> = vec![Default::default(); np];
    for (j, &t) in columns.iter().enumerate() {
        for (p, w) in net.preset(t) {
            *deltas[p.index()].entry(j as u32).or_insert(0) -= *w as i64;
        }
        for (p, w) in net.postset(t) {
            *deltas[p.index()].entry(j as u32).or_insert(0) += *w as i64;
        }
    }
    // Rows for the place unknowns y_p …
    let mut rows: Vec<SparseRow> = Vec::with_capacity(np + nc);
    for (p, delta) in deltas.into_iter().enumerate() {
        let mut entries: Vec<(u32, i64)> = delta.into_iter().filter(|&(_, v)| v != 0).collect();
        entries.push(((nc + p) as u32, 1));
        rows.push(SparseRow { entries });
    }
    // … and for the slack unknowns s_j (one per eliminated column).
    for j in 0..nc {
        rows.push(SparseRow {
            entries: vec![(j as u32, 1), ((nc + np + j) as u32, 1)],
        });
    }

    let elim = eliminate(rows, nc, row_cap);
    let mut result: Vec<Vec<u64>> = Vec::new();
    for row in &elim.rows {
        if row.entries.iter().any(|&(c, _)| (c as usize) < nc) {
            continue;
        }
        if row.entries.iter().any(|&(_, v)| v < 0) {
            continue;
        }
        let mut weights = vec![0u64; np];
        let mut has_place = false;
        for &(c, v) in &row.entries {
            let c = c as usize;
            if c < nc + np {
                weights[c - nc] = v as u64;
                has_place = true;
            }
        }
        if !has_place {
            continue;
        }
        // Soundness check mirroring `is_valid_for`: yᵀ·C' ≤ 0 per column.
        let sound = columns.iter().all(|&t| {
            let mut sum = 0i64;
            for (p, w) in net.preset(t) {
                sum -= weights[p.index()] as i64 * *w as i64;
            }
            for (p, w) in net.postset(t) {
                sum += weights[p.index()] as i64 * *w as i64;
            }
            sum <= 0
        });
        if sound && !result.contains(&weights) {
            result.push(weights);
        }
    }
    (result, elim.complete)
}

fn collect_invariants(rows: &[SparseRow], np: usize, nt: usize, net: &PetriNet) -> Vec<TInvariant> {
    let mut result: Vec<TInvariant> = Vec::new();
    for row in rows {
        // Only rows whose residual place part vanished are invariants.
        if row.entries.iter().any(|&(c, _)| (c as usize) < np) {
            continue;
        }
        if row.entries.is_empty() {
            continue;
        }
        if row.entries.iter().any(|&(_, v)| v < 0) {
            continue;
        }
        let mut counts = vec![0u64; nt];
        for &(c, v) in &row.entries {
            counts[c as usize - np] = v as u64;
        }
        let inv = TInvariant::from_counts(counts);
        if inv.is_valid_for(net) && !result.contains(&inv) {
            result.push(inv);
        }
    }
    minimal_support(result)
}

/// Keeps only minimal-support invariants to obtain a clean basis.
fn minimal_support(result: Vec<TInvariant>) -> Vec<TInvariant> {
    let mut minimal: Vec<TInvariant> = Vec::new();
    for (i, inv) in result.iter().enumerate() {
        let sup: Vec<bool> = inv.as_slice().iter().map(|&c| c > 0).collect();
        let dominated = result.iter().enumerate().any(|(j, other)| {
            if i == j {
                return false;
            }
            let osup: Vec<bool> = other.as_slice().iter().map(|&c| c > 0).collect();
            // `other` has strictly smaller support contained in `inv`'s.
            osup.iter().zip(&sup).all(|(o, s)| !o || *s)
                && osup.iter().zip(&sup).any(|(o, s)| !o && *s)
        });
        if !dominated {
            minimal.push(inv.clone());
        }
    }
    minimal
}

/// The original dense-row Farkas elimination, retained verbatim as the
/// differential-testing oracle for [`t_invariant_basis`] (and as the
/// baseline the benchmark suite measures the sparse rework against). Do
/// not use it in production paths.
pub fn t_invariant_basis_dense(net: &PetriNet, row_cap: usize) -> Vec<TInvariant> {
    let np = net.num_places();
    let nt = net.num_transitions();
    let c = incidence_matrix(net);

    // Each working row is [a | b]: a has one entry per place (the residual
    // C·x restricted to that combination), b has one entry per transition
    // (the firing counts accumulated so far).
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(nt);
    for t in 0..nt {
        let mut row = vec![0i64; np + nt];
        for (p, slot) in row.iter_mut().enumerate().take(np) {
            *slot = c.rows[p][t];
        }
        row[np + t] = 1;
        rows.push(row);
    }

    let mut remaining: Vec<usize> = (0..np).collect();
    while !remaining.is_empty() {
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let pos = rows.iter().filter(|r| r[p] > 0).count();
                let neg = rows.iter().filter(|r| r[p] < 0).count();
                (i, pos * neg + pos + neg)
            })
            .min_by_key(|(_, cost)| *cost)
            .expect("remaining is non-empty");
        let p = remaining.swap_remove(best_idx);

        let mut seen: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
        let mut next: Vec<Vec<i64>> = Vec::new();
        let (zeros, nonzeros): (Vec<_>, Vec<_>) = rows.into_iter().partition(|r| r[p] == 0);
        for row in zeros {
            if seen.insert(row.clone()) {
                next.push(row);
            }
        }
        let positives: Vec<&Vec<i64>> = nonzeros.iter().filter(|r| r[p] > 0).collect();
        let negatives: Vec<&Vec<i64>> = nonzeros.iter().filter(|r| r[p] < 0).collect();
        for rp in &positives {
            for rn in &negatives {
                let a = rp[p];
                let b = -rn[p];
                let l = (a / gcd(a as u64, b as u64) as i64) * b;
                let fa = l / a;
                let fb = l / b;
                let mut combined: Vec<i64> = rp
                    .iter()
                    .zip(rn.iter())
                    .map(|(x, y)| fa * x + fb * y)
                    .collect();
                normalize(&mut combined);
                if seen.insert(combined.clone()) {
                    next.push(combined);
                }
                if next.len() > row_cap {
                    return collect_invariants_dense(&next, np, nt, net);
                }
            }
        }
        rows = next;
    }
    collect_invariants_dense(&rows, np, nt, net)
}

fn collect_invariants_dense(
    rows: &[Vec<i64>],
    np: usize,
    nt: usize,
    net: &PetriNet,
) -> Vec<TInvariant> {
    let mut result: Vec<TInvariant> = Vec::new();
    for row in rows {
        if row[..np].iter().any(|&v| v != 0) {
            continue;
        }
        if row[np..].iter().all(|&v| v == 0) {
            continue;
        }
        if row[np..].iter().any(|&v| v < 0) {
            continue;
        }
        let inv = TInvariant::from_counts(row[np..].iter().map(|&v| v as u64).collect());
        debug_assert_eq!(inv.as_slice().len(), nt);
        if inv.is_valid_for(net) && !result.contains(&inv) {
            result.push(inv);
        }
    }
    minimal_support(result)
}

/// Dense-row Farkas elimination for the P-invariant basis, the
/// differential-testing oracle for [`p_invariant_basis`] (and the baseline
/// the benchmark suite measures the sparse dual against). Do not use it in
/// production paths.
pub fn p_invariant_basis_dense(net: &PetriNet, row_cap: usize) -> Vec<PInvariant> {
    let np = net.num_places();
    let nt = net.num_transitions();
    let c = incidence_matrix(net);

    // Each working row is [a | b]: a has one entry per transition (the
    // residual yᵀ·C restricted to that combination), b one entry per place
    // (the weights accumulated so far).
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(np);
    for p in 0..np {
        let mut row = vec![0i64; nt + np];
        row[..nt].copy_from_slice(&c.rows[p]);
        row[nt + p] = 1;
        rows.push(row);
    }

    let mut remaining: Vec<usize> = (0..nt).collect();
    while !remaining.is_empty() {
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let pos = rows.iter().filter(|r| r[t] > 0).count();
                let neg = rows.iter().filter(|r| r[t] < 0).count();
                (i, pos * neg + pos + neg)
            })
            .min_by_key(|(_, cost)| *cost)
            .expect("remaining is non-empty");
        let t = remaining.swap_remove(best_idx);

        let mut seen: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
        let mut next: Vec<Vec<i64>> = Vec::new();
        let (zeros, nonzeros): (Vec<_>, Vec<_>) = rows.into_iter().partition(|r| r[t] == 0);
        for row in zeros {
            if seen.insert(row.clone()) {
                next.push(row);
            }
        }
        let positives: Vec<&Vec<i64>> = nonzeros.iter().filter(|r| r[t] > 0).collect();
        let negatives: Vec<&Vec<i64>> = nonzeros.iter().filter(|r| r[t] < 0).collect();
        for rp in &positives {
            for rn in &negatives {
                let a = rp[t];
                let b = -rn[t];
                let l = (a / gcd(a as u64, b as u64) as i64) * b;
                let fa = l / a;
                let fb = l / b;
                let mut combined: Vec<i64> = rp
                    .iter()
                    .zip(rn.iter())
                    .map(|(x, y)| fa * x + fb * y)
                    .collect();
                normalize(&mut combined);
                if seen.insert(combined.clone()) {
                    next.push(combined);
                }
                if next.len() > row_cap {
                    return collect_p_invariants_dense(&next, np, nt, net);
                }
            }
        }
        rows = next;
    }
    collect_p_invariants_dense(&rows, np, nt, net)
}

fn collect_p_invariants_dense(
    rows: &[Vec<i64>],
    np: usize,
    nt: usize,
    net: &PetriNet,
) -> Vec<PInvariant> {
    let mut result: Vec<PInvariant> = Vec::new();
    for row in rows {
        if row[..nt].iter().any(|&v| v != 0) {
            continue;
        }
        if row[nt..].iter().all(|&v| v == 0) {
            continue;
        }
        if row[nt..].iter().any(|&v| v < 0) {
            continue;
        }
        let inv = PInvariant::from_weights(row[nt..].iter().map(|&v| v as u64).collect());
        debug_assert_eq!(inv.as_slice().len(), np);
        if inv.is_valid_for(net) && !result.contains(&inv) {
            result.push(inv);
        }
    }
    minimal_support_p(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, TransitionKind};

    fn producer_consumer() -> PetriNet {
        // src -> buf -> cons, cons -> done (a simple pipeline with a cycle
        // through the process place to make a T-invariant possible).
        let mut b = NetBuilder::new("pc");
        let buf = b.place("buf", 0);
        let idle = b.place("idle", 1);
        let src = b.transition("produce", TransitionKind::UncontrollableSource);
        let cons = b.transition("consume", TransitionKind::Internal);
        b.arc_t2p(src, buf, 1);
        b.arc_p2t(buf, cons, 1);
        b.arc_p2t(idle, cons, 1);
        b.arc_t2p(cons, idle, 1);
        b.build().unwrap()
    }

    #[test]
    fn incidence_matrix_entries() {
        let net = producer_consumer();
        let c = incidence_matrix(&net);
        let buf = net.place_by_name("buf").unwrap();
        let src = net.transition_by_name("produce").unwrap();
        let cons = net.transition_by_name("consume").unwrap();
        assert_eq!(c.entry(buf, src), 1);
        assert_eq!(c.entry(buf, cons), -1);
        assert_eq!(c.num_places(), 2);
        assert_eq!(c.num_transitions(), 2);
    }

    #[test]
    fn invariant_basis_of_pipeline() {
        let net = producer_consumer();
        let basis = t_invariant_basis(&net, 10_000);
        assert_eq!(basis.len(), 1);
        let inv = &basis[0];
        assert!(inv.is_valid_for(&net));
        let src = net.transition_by_name("produce").unwrap();
        let cons = net.transition_by_name("consume").unwrap();
        assert_eq!(inv.count(src), 1);
        assert_eq!(inv.count(cons), 1);
        assert_eq!(inv.support(), vec![src, cons]);
    }

    #[test]
    fn weighted_invariant_counts() {
        // a produces 2 tokens, b consumes 3: the minimal invariant fires a
        // three times and b twice.
        let mut bld = NetBuilder::new("weights");
        let p = bld.place("p", 0);
        let a = bld.transition("a", TransitionKind::UncontrollableSource);
        let b = bld.transition("b", TransitionKind::Internal);
        bld.arc_t2p(a, p, 2);
        bld.arc_p2t(p, b, 3);
        let net = bld.build().unwrap();
        let basis = t_invariant_basis(&net, 10_000);
        assert_eq!(basis.len(), 1);
        let a = net.transition_by_name("a").unwrap();
        let b = net.transition_by_name("b").unwrap();
        assert_eq!(basis[0].count(a), 3);
        assert_eq!(basis[0].count(b), 2);
    }

    #[test]
    fn no_invariant_for_pure_accumulator() {
        // A net that only produces tokens has no (non-trivial) T-invariant.
        let mut b = NetBuilder::new("acc");
        let p = b.place("p", 0);
        let src = b.transition("src", TransitionKind::UncontrollableSource);
        b.arc_t2p(src, p, 1);
        let net = b.build().unwrap();
        let basis = t_invariant_basis(&net, 10_000);
        assert!(basis.is_empty());
    }

    #[test]
    fn invariant_helpers() {
        let inv = TInvariant::from_counts(vec![0, 2, 1]);
        assert!(!inv.is_zero());
        assert!(inv.contains(TransitionId::new(1)));
        assert!(!inv.contains(TransitionId::new(0)));
        let sum = inv.sum(&TInvariant::from_counts(vec![1, 0, 0]));
        assert_eq!(sum.as_slice(), &[1, 2, 1]);
        assert!(TInvariant::from_counts(vec![0, 0]).is_zero());
    }

    fn choice_net() -> PetriNet {
        let mut bld = NetBuilder::new("choice");
        let idle = bld.place("idle", 1);
        let mid = bld.place("mid", 0);
        let start = bld.transition("start", TransitionKind::Internal);
        let left = bld.transition("left", TransitionKind::Internal);
        let right = bld.transition("right", TransitionKind::Internal);
        bld.arc_p2t(idle, start, 1);
        bld.arc_t2p(start, mid, 1);
        bld.arc_p2t(mid, left, 1);
        bld.arc_p2t(mid, right, 1);
        bld.arc_t2p(left, idle, 1);
        bld.arc_t2p(right, idle, 1);
        bld.build().unwrap()
    }

    #[test]
    fn p_invariant_basis_of_pipeline() {
        // The source pumps `buf`, so only the conservative `idle` place is
        // covered by a semiflow.
        let net = producer_consumer();
        let basis = p_invariant_basis(&net, 10_000);
        assert_eq!(basis.len(), 1);
        let inv = &basis[0];
        assert!(inv.is_valid_for(&net));
        let idle = net.place_by_name("idle").unwrap();
        let buf = net.place_by_name("buf").unwrap();
        assert_eq!(inv.weight(idle), 1);
        assert!(!inv.contains(buf));
        assert_eq!(inv.support(), vec![idle]);
        assert_eq!(inv.weighted_tokens(net.initial_marking().as_slice()), 1);
    }

    #[test]
    fn p_invariant_of_choice_net_covers_both_places() {
        // idle + mid is conserved: one token circulates through the choice.
        let net = choice_net();
        let (basis, complete) = p_invariant_elimination(&net, 10_000);
        assert!(complete);
        assert_eq!(basis.len(), 1);
        let idle = net.place_by_name("idle").unwrap();
        let mid = net.place_by_name("mid").unwrap();
        assert_eq!(basis[0].weight(idle), 1);
        assert_eq!(basis[0].weight(mid), 1);
        assert!(basis[0].is_valid_for(&net));
    }

    #[test]
    fn weighted_p_invariant_weights() {
        // t moves tokens 2-from-a, 3-into-b: conservation needs 3·a + 2·b.
        let mut bld = NetBuilder::new("pweights");
        let a = bld.place("a", 6);
        let b = bld.place("b", 0);
        let t = bld.transition("t", TransitionKind::Internal);
        bld.arc_p2t(a, t, 2);
        bld.arc_t2p(t, b, 3);
        let net = bld.build().unwrap();
        let basis = p_invariant_basis(&net, 10_000);
        assert_eq!(basis.len(), 1);
        let a = net.place_by_name("a").unwrap();
        let b = net.place_by_name("b").unwrap();
        assert_eq!(basis[0].weight(a), 3);
        assert_eq!(basis[0].weight(b), 2);
        assert_eq!(
            basis[0].weighted_tokens(net.initial_marking().as_slice()),
            18
        );
    }

    #[test]
    fn p_invariant_dense_oracle_agrees_on_fixtures() {
        for net in [producer_consumer(), choice_net()] {
            assert_eq!(
                p_invariant_basis(&net, 10_000),
                p_invariant_basis_dense(&net, 10_000),
                "sparse and dense P-bases differ on {}",
                net.name()
            );
        }
    }

    #[test]
    fn p_invariant_helpers() {
        let inv = PInvariant::from_weights(vec![0, 2, 1]);
        assert!(!inv.is_zero());
        assert!(inv.contains(PlaceId::new(1)));
        assert!(!inv.contains(PlaceId::new(0)));
        assert_eq!(inv.as_slice(), &[0, 2, 1]);
        assert_eq!(inv.weighted_tokens(&[5, 1, 3]), 5);
        assert!(PInvariant::from_weights(vec![0, 0]).is_zero());
    }

    #[test]
    fn surinvariant_cover_of_choice_net_is_total() {
        // No sources: every place is covered by a sur-invariant, which is
        // exactly the structural-boundedness certificate.
        let net = choice_net();
        let (cover, complete) =
            surinvariant_cover(&net, &net.transition_ids().collect::<Vec<_>>(), 10_000);
        assert!(complete);
        for p in net.place_ids() {
            assert!(
                cover.iter().any(|y| y[p.index()] > 0),
                "place {p} uncovered"
            );
        }
    }

    #[test]
    fn surinvariant_cover_misses_accumulator_place() {
        // An internal transition strictly grows `p`: no y ≥ 0 with
        // yᵀC ≤ 0 can cover it, and the complete elimination proves it.
        let mut bld = NetBuilder::new("pump");
        let p = bld.place("p", 1);
        let t = bld.transition("t", TransitionKind::Internal);
        bld.arc_p2t(p, t, 1);
        bld.arc_t2p(t, p, 2);
        let net = bld.build().unwrap();
        let (cover, complete) =
            surinvariant_cover(&net, &net.transition_ids().collect::<Vec<_>>(), 10_000);
        assert!(complete);
        let p = net.place_by_name("p").unwrap();
        assert!(cover.iter().all(|y| y[p.index()] == 0));
    }

    #[test]
    fn choice_net_has_two_invariants() {
        // A choice place with two branches that both return to the idle
        // place yields two minimal invariants (one per branch).
        let mut bld = NetBuilder::new("choice");
        let idle = bld.place("idle", 1);
        let mid = bld.place("mid", 0);
        let start = bld.transition("start", TransitionKind::Internal);
        let left = bld.transition("left", TransitionKind::Internal);
        let right = bld.transition("right", TransitionKind::Internal);
        bld.arc_p2t(idle, start, 1);
        bld.arc_t2p(start, mid, 1);
        bld.arc_p2t(mid, left, 1);
        bld.arc_p2t(mid, right, 1);
        bld.arc_t2p(left, idle, 1);
        bld.arc_t2p(right, idle, 1);
        let net = bld.build().unwrap();
        let basis = t_invariant_basis(&net, 10_000);
        assert_eq!(basis.len(), 2);
        for inv in &basis {
            assert!(inv.is_valid_for(&net));
        }
    }
}
