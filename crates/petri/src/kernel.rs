//! SIMD-shaped enabledness kernels over flat marking-slab rows.
//!
//! The EP schedule search asks one question at every tree node: *which
//! transitions (and hence which ECSs) are enabled at this marking?* The
//! scalar answer walks each transition's preset arc-by-arc
//! ([`PetriNet::is_enabled_at`]) through nested `Vec`s — a pointer chase
//! and a branch per arc. The marking slab of [`crate::store`] was laid
//! out as fixed-stride `u32` rows precisely so this check could instead
//! be a *wide compare*: a transition is enabled iff `counts[p] >=
//! need[p]` for every place `p`, where `need` is the transition's dense
//! lower-bound row (its preset scattered over the stride, zero
//! elsewhere). Comparing whole rows in fixed-width chunks is
//! branch-light and autovectorizer-friendly — no `unsafe`, no
//! target-feature gates, just `u32`/`u16`/`u8` chunk loops the compiler
//! turns into SIMD on its own.
//!
//! [`NetKernels::compile`] builds the per-net kernel state once (the
//! search context caches it):
//!
//! * **Need rows** — one dense lower-bound row per transition, aligned
//!   to the slab stride, stored contiguously in transition order so a
//!   full-net sweep streams one flat array.
//! * **Sparse fallback** — a dense row compare touches every cell in
//!   the stride, so it only pays when the presets actually cover a
//!   meaningful share of it. Rows wider than [`DENSE_ROW_BYTES_CAP`],
//!   or nets whose presets are tiny relative to the stride (a few
//!   single-arc presets over dozens of places), keep presets as flat
//!   CSR `(offsets, places, weights)` arrays instead: still
//!   branch-light (no early exit, no nested `Vec` pointer chases),
//!   just gathered.
//! * **Narrow cells** — when a structural pre-pass proved a bound on
//!   every place ([`StructuralReport::max_marking_bound`]) and every
//!   arc weight fits, need rows are stored as `u8` or `u16`, doubling
//!   or quadrupling the number of lanes per compare. Counts are
//!   narrowed with a *saturating* conversion, which preserves the
//!   comparison exactly whenever the needs fit the cell: if a count
//!   saturates at the cell maximum it is `>=` every representable
//!   need, just like its un-narrowed value.
//! * **ECS representatives** — per ECS, the first member transition;
//!   by construction all members of an ECS share one preset, so the
//!   enabled-ECS sweep evaluates one need row per ECS, not per member.
//!
//! Results are bit-packed: [`NetKernels::enabled_set_at`] fills an
//! [`EnabledSet`] (one bit per transition) in a caller-owned
//! [`KernelScratch`], and [`NetKernels::enabled_ecs_into`] appends
//! enabled ECS ids to a reused buffer. Neither allocates after the
//! scratch warms up, and both agree bit-for-bit with the scalar
//! [`PetriNet::is_enabled_at`] on every transition and marking — the
//! kernel property suite and the engine differential suite pin that
//! equivalence, and [`KernelKind`] lets callers force either engine
//! (env override `QSS_KERNEL=scalar|chunked`) for A/B runs.
//!
//! [`StructuralReport::max_marking_bound`]: crate::StructuralReport

use crate::ecs::{EcsId, EcsInfo};
use crate::ids::TransitionId;
use crate::net::PetriNet;

/// Which enabledness engine a search should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// The per-arc scalar walk ([`PetriNet::is_enabled_at`]).
    Scalar,
    /// The chunked need-row kernels of this module ([`NetKernels`]).
    Chunked,
}

impl KernelKind {
    /// The kernel requested via the `QSS_KERNEL` environment variable
    /// (`scalar` or `chunked`, case-insensitive), if set and valid.
    pub fn from_env() -> Option<KernelKind> {
        match std::env::var("QSS_KERNEL")
            .ok()?
            .to_ascii_lowercase()
            .as_str()
        {
            "scalar" => Some(KernelKind::Scalar),
            "chunked" => Some(KernelKind::Chunked),
            _ => None,
        }
    }

    /// Resolves the kernel to use: the `QSS_KERNEL` override when set,
    /// otherwise `default`.
    pub fn resolved(default: KernelKind) -> KernelKind {
        KernelKind::from_env().unwrap_or(default)
    }
}

/// The cell width need rows are stored at (and counts are narrowed to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellWidth {
    /// 8-bit cells: four times the lanes of `u32` per compare.
    U8,
    /// 16-bit cells: twice the lanes of `u32` per compare.
    U16,
    /// Full-width cells: the slab's native `u32`.
    U32,
}

impl CellWidth {
    /// Bytes per cell.
    pub fn bytes(self) -> usize {
        match self {
            CellWidth::U8 => 1,
            CellWidth::U16 => 2,
            CellWidth::U32 => 4,
        }
    }

    /// The largest token count or arc weight the cell represents.
    pub fn max(self) -> u32 {
        match self {
            CellWidth::U8 => u8::MAX as u32,
            CellWidth::U16 => u16::MAX as u32,
            CellWidth::U32 => u32::MAX,
        }
    }
}

/// Dense need rows wider than this many bytes fall back to the sparse
/// CSR representation: past it, a whole-row compare touches more
/// provably-zero cells than the preset walk touches arcs.
pub const DENSE_ROW_BYTES_CAP: usize = 256;

/// Work advantage (in row bytes per preset entry) a vectorized dense
/// compare must stay within to beat the sparse gather. A dense sweep
/// reads `row_bytes` per transition but retires ~16 bytes per vector
/// op; the CSR walk does one gathered compare per preset entry. Dense
/// is selected only when `row_bytes * num_transitions` is within this
/// factor of the total preset entry count — otherwise the rows are
/// mostly provably-zero padding and CSR wins even under the byte cap.
const DENSE_LANE_ADVANTAGE: usize = 16;

/// Chunk width of the compare loops. Fixed-size inner loops over
/// `chunks_exact` blocks are what the autovectorizer reliably turns
/// into SIMD compares without `unsafe` or target-feature gates.
const LANES: usize = 16;

/// ECS-representative sentinel for an ECS with no members.
const NO_REP: u32 = u32::MAX;

/// A bit-packed set of enabled transitions (one bit per transition id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnabledSet {
    words: Vec<u64>,
    num: usize,
}

impl EnabledSet {
    /// Clears the set and resizes it to `num` transitions, all disabled.
    pub fn reset(&mut self, num: usize) {
        self.num = num;
        self.words.clear();
        self.words.resize(num.div_ceil(64), 0);
    }

    /// Marks transition index `i` enabled.
    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Returns `true` if `t` is in the set.
    pub fn contains(&self, t: TransitionId) -> bool {
        let i = t.index();
        i < self.num && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of transitions the set covers (enabled or not).
    pub fn len(&self) -> usize {
        self.num
    }

    /// Returns `true` if the set covers no transitions.
    pub fn is_empty(&self) -> bool {
        self.num == 0
    }

    /// Number of enabled transitions (population count).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The enabled transitions, in id order.
    pub fn iter(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.num)
            .filter(|&i| self.words[i / 64] & (1u64 << (i % 64)) != 0)
            .map(TransitionId::new)
    }
}

/// Caller-owned scratch for the batch kernels: the narrowed counts row
/// and the bit-packed result set. One per search (or per thread); the
/// kernels never allocate once the scratch has warmed up.
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    narrow8: Vec<u8>,
    narrow16: Vec<u16>,
    set: EnabledSet,
}

impl KernelScratch {
    /// The enabled set filled by the last
    /// [`NetKernels::enabled_set_at`] call.
    pub fn set(&self) -> &EnabledSet {
        &self.set
    }
}

/// The need-row storage behind a compiled kernel.
#[derive(Debug, Clone)]
enum NeedRows {
    /// Dense rows at `u8` cells, transition-major, `stride` cells each.
    Dense8(Vec<u8>),
    /// Dense rows at `u16` cells.
    Dense16(Vec<u16>),
    /// Dense rows at the native `u32`.
    Dense32(Vec<u32>),
    /// Flat CSR presets for nets whose dense rows would be too wide:
    /// transition `t` consumes `weights[i]` from place `places[i]` for
    /// `i` in `offsets[t]..offsets[t+1]`.
    Sparse {
        offsets: Vec<u32>,
        places: Vec<u32>,
        weights: Vec<u32>,
    },
}

/// Compiled per-net enabledness kernels (see the module docs).
///
/// Build once per net with [`NetKernels::compile`] and share freely: all
/// state is immutable, per-call scratch lives in [`KernelScratch`].
#[derive(Debug, Clone)]
pub struct NetKernels {
    stride: usize,
    num_transitions: usize,
    cell: CellWidth,
    rows: NeedRows,
    /// Per ECS, the raw index of its representative (first) member.
    reps: Vec<u32>,
}

impl NetKernels {
    /// Compiles the kernels for `net` under the ECS partition `ecs`.
    ///
    /// `proven_bound` is the structural `max_marking_bound` of the net
    /// when a pre-pass proved one (every reachable token count is below
    /// it); it licenses narrow cells. Without it rows stay `u32` — the
    /// narrowing is purely a lane-width optimization, never a semantic
    /// change, but the policy is to narrow only on proof.
    pub fn compile(net: &PetriNet, ecs: &EcsInfo, proven_bound: Option<u32>) -> Self {
        let max_need = max_need(net);
        let cell = match proven_bound {
            Some(bound) => {
                let reach = bound.max(max_need);
                if reach <= CellWidth::U8.max() {
                    CellWidth::U8
                } else if reach <= CellWidth::U16.max() {
                    CellWidth::U16
                } else {
                    CellWidth::U32
                }
            }
            None => CellWidth::U32,
        };
        let dense = Self::dense_pays_off(net, cell);
        Self::build(net, ecs, cell, dense)
    }

    /// Compiles with an explicit cell width and layout, bypassing the
    /// automatic selection — the property tests and benches use this to
    /// pin every `(width, layout)` combination against the scalar
    /// engine, including saturating narrow cells on unbounded nets.
    ///
    /// # Panics
    /// Panics if any arc weight does not fit `cell` (narrow needs are a
    /// hard correctness requirement; narrow *counts* are not, thanks to
    /// the saturating conversion).
    pub fn compile_forced(net: &PetriNet, ecs: &EcsInfo, cell: CellWidth, dense: bool) -> Self {
        assert!(
            max_need(net) <= cell.max(),
            "arc weights do not fit the forced {cell:?} cells"
        );
        Self::build(net, ecs, cell, dense)
    }

    /// The automatic dense/sparse layout choice: dense rows only when
    /// they fit the byte cap *and* the presets are dense enough that a
    /// vectorized full-row compare does no more work than the per-entry
    /// CSR gather (see [`DENSE_LANE_ADVANTAGE`]). Sparsely connected
    /// nets — a handful of single-arc presets over a long stride — stay
    /// on CSR even when the rows would fit.
    fn dense_pays_off(net: &PetriNet, cell: CellWidth) -> bool {
        let row_bytes = net.num_places() * cell.bytes();
        let preset_entries: usize = net.transition_ids().map(|t| net.preset(t).len()).sum();
        row_bytes <= DENSE_ROW_BYTES_CAP
            && row_bytes * net.num_transitions() <= DENSE_LANE_ADVANTAGE * preset_entries
    }

    fn build(net: &PetriNet, ecs: &EcsInfo, cell: CellWidth, dense: bool) -> Self {
        let stride = net.num_places();
        let num_transitions = net.num_transitions();
        let rows = if dense {
            match cell {
                CellWidth::U8 => NeedRows::Dense8(dense_rows(net, |w| w as u8)),
                CellWidth::U16 => NeedRows::Dense16(dense_rows(net, |w| w as u16)),
                CellWidth::U32 => NeedRows::Dense32(dense_rows(net, |w| w)),
            }
        } else {
            let mut offsets = Vec::with_capacity(num_transitions + 1);
            let mut places = Vec::new();
            let mut weights = Vec::new();
            offsets.push(0u32);
            for t in net.transition_ids() {
                for &(p, w) in net.preset(t) {
                    places.push(p.index() as u32);
                    weights.push(w);
                }
                offsets.push(places.len() as u32);
            }
            NeedRows::Sparse {
                offsets,
                places,
                weights,
            }
        };
        let reps = (0..ecs.num_ecs())
            .map(|i| {
                ecs.members(EcsId(i as u32))
                    .first()
                    .map_or(NO_REP, |t| t.index() as u32)
            })
            .collect();
        NetKernels {
            stride,
            num_transitions,
            cell,
            rows,
            reps,
        }
    }

    /// The cell width the need rows are stored at.
    pub fn cell(&self) -> CellWidth {
        self.cell
    }

    /// Returns `true` when the kernel uses dense need rows, `false` when
    /// it fell back to the sparse CSR representation.
    pub fn is_dense(&self) -> bool {
        !matches!(self.rows, NeedRows::Sparse { .. })
    }

    /// Evaluates enabledness of **every** transition against the counts
    /// row and bit-packs the result into `scratch`, returning the set.
    ///
    /// Equivalent to testing [`PetriNet::is_enabled_at`] per transition,
    /// evaluated as chunked row compares over the flat need matrix.
    ///
    /// # Panics
    /// Panics if `counts` is not exactly one slab row (`stride` wide).
    pub fn enabled_set_at<'s>(
        &self,
        counts: &[u32],
        scratch: &'s mut KernelScratch,
    ) -> &'s EnabledSet {
        assert_eq!(counts.len(), self.stride, "counts row width != slab stride");
        scratch.set.reset(self.num_transitions);
        match &self.rows {
            NeedRows::Dense8(need) => {
                narrow_counts(counts, &mut scratch.narrow8);
                for t in 0..self.num_transitions {
                    if row_all_ge(&scratch.narrow8, &need[t * self.stride..][..self.stride]) {
                        scratch.set.insert(t);
                    }
                }
            }
            NeedRows::Dense16(need) => {
                narrow_counts(counts, &mut scratch.narrow16);
                for t in 0..self.num_transitions {
                    if row_all_ge(&scratch.narrow16, &need[t * self.stride..][..self.stride]) {
                        scratch.set.insert(t);
                    }
                }
            }
            NeedRows::Dense32(need) => {
                for t in 0..self.num_transitions {
                    if row_all_ge(counts, &need[t * self.stride..][..self.stride]) {
                        scratch.set.insert(t);
                    }
                }
            }
            NeedRows::Sparse {
                offsets,
                places,
                weights,
            } => {
                for t in 0..self.num_transitions {
                    if sparse_enabled(offsets, places, weights, t, counts) {
                        scratch.set.insert(t);
                    }
                }
            }
        }
        &scratch.set
    }

    /// Appends the ECSs enabled at the counts row to `out`, in ECS-id
    /// order — the chunked counterpart of
    /// [`EcsInfo::enabled_ecs_into`], evaluating one representative
    /// need row per ECS.
    ///
    /// # Panics
    /// Panics if `counts` is not exactly one slab row (`stride` wide).
    pub fn enabled_ecs_into(
        &self,
        counts: &[u32],
        scratch: &mut KernelScratch,
        out: &mut Vec<EcsId>,
    ) {
        assert_eq!(counts.len(), self.stride, "counts row width != slab stride");
        out.clear();
        match &self.rows {
            NeedRows::Dense8(need) => {
                narrow_counts(counts, &mut scratch.narrow8);
                for (i, &rep) in self.reps.iter().enumerate() {
                    if rep != NO_REP
                        && row_all_ge(
                            &scratch.narrow8,
                            &need[rep as usize * self.stride..][..self.stride],
                        )
                    {
                        out.push(EcsId(i as u32));
                    }
                }
            }
            NeedRows::Dense16(need) => {
                narrow_counts(counts, &mut scratch.narrow16);
                for (i, &rep) in self.reps.iter().enumerate() {
                    if rep != NO_REP
                        && row_all_ge(
                            &scratch.narrow16,
                            &need[rep as usize * self.stride..][..self.stride],
                        )
                    {
                        out.push(EcsId(i as u32));
                    }
                }
            }
            NeedRows::Dense32(need) => {
                for (i, &rep) in self.reps.iter().enumerate() {
                    if rep != NO_REP
                        && row_all_ge(counts, &need[rep as usize * self.stride..][..self.stride])
                    {
                        out.push(EcsId(i as u32));
                    }
                }
            }
            NeedRows::Sparse {
                offsets,
                places,
                weights,
            } => {
                for (i, &rep) in self.reps.iter().enumerate() {
                    if rep != NO_REP
                        && sparse_enabled(offsets, places, weights, rep as usize, counts)
                    {
                        out.push(EcsId(i as u32));
                    }
                }
            }
        }
    }

    /// Single-transition enabledness against the kernel's need rows —
    /// always compared in widened `u32` space, so no scratch (and no
    /// per-call narrowing) is needed. Exactly
    /// [`PetriNet::is_enabled_at`].
    ///
    /// # Panics
    /// Panics if `counts` is not exactly one slab row (`stride` wide),
    /// or if `t` does not belong to the compiled net.
    pub fn is_enabled_at(&self, t: TransitionId, counts: &[u32]) -> bool {
        assert_eq!(counts.len(), self.stride, "counts row width != slab stride");
        let i = t.index();
        match &self.rows {
            NeedRows::Dense8(need) => {
                row_all_ge_widened(counts, &need[i * self.stride..][..self.stride], |n| {
                    n as u32
                })
            }
            NeedRows::Dense16(need) => {
                row_all_ge_widened(counts, &need[i * self.stride..][..self.stride], |n| {
                    n as u32
                })
            }
            NeedRows::Dense32(need) => {
                row_all_ge_widened(counts, &need[i * self.stride..][..self.stride], |n| n)
            }
            NeedRows::Sparse {
                offsets,
                places,
                weights,
            } => sparse_enabled(offsets, places, weights, i, counts),
        }
    }
}

/// The largest pre-arc weight of the net (the largest value a need row
/// must represent); 0 for a net without input arcs.
fn max_need(net: &PetriNet) -> u32 {
    net.transition_ids()
        .flat_map(|t| net.preset(t).iter().map(|&(_, w)| w))
        .max()
        .unwrap_or(0)
}

/// Builds the transition-major dense need matrix at an arbitrary cell
/// type, scattering each preset over a zeroed stride-wide row.
fn dense_rows<C: Copy + Default>(net: &PetriNet, cast: impl Fn(u32) -> C) -> Vec<C> {
    let stride = net.num_places();
    let mut rows = vec![C::default(); stride * net.num_transitions()];
    for t in net.transition_ids() {
        let row = &mut rows[t.index() * stride..][..stride];
        for &(p, w) in net.preset(t) {
            row[p.index()] = cast(w);
        }
    }
    rows
}

/// Saturating `u32 → cell` conversion of a whole counts row. Saturation
/// is exact for the `>=` comparison as long as every need fits the cell
/// (a saturated count is `>=` every representable need, just like the
/// original count was).
fn narrow_counts<C: Copy + TryFrom<u32> + Bounded>(counts: &[u32], out: &mut Vec<C>) {
    out.clear();
    out.extend(
        counts
            .iter()
            .map(|&c| C::try_from(c.min(C::MAX_U32)).unwrap_or_else(|_| unreachable!())),
    );
}

/// The cell-maximum trait backing the saturating conversion.
trait Bounded {
    /// The cell maximum, widened to `u32`.
    const MAX_U32: u32;
}

impl Bounded for u8 {
    const MAX_U32: u32 = u8::MAX as u32;
}

impl Bounded for u16 {
    const MAX_U32: u32 = u16::MAX as u32;
}

/// Chunked `counts[i] >= need[i]` over a whole row: fixed-width lane
/// blocks folded with `&` (no early exit, no data-dependent branches),
/// which the autovectorizer lowers to SIMD compares at any cell width.
#[inline]
fn row_all_ge<C: Copy + PartialOrd>(counts: &[C], need: &[C]) -> bool {
    debug_assert_eq!(counts.len(), need.len());
    let mut ok = true;
    let mut c_chunks = counts.chunks_exact(LANES);
    let mut n_chunks = need.chunks_exact(LANES);
    for (c, n) in c_chunks.by_ref().zip(n_chunks.by_ref()) {
        let mut lane_ok = true;
        for i in 0..LANES {
            lane_ok &= c[i] >= n[i];
        }
        ok &= lane_ok;
    }
    for (c, n) in c_chunks.remainder().iter().zip(n_chunks.remainder()) {
        ok &= *c >= *n;
    }
    ok
}

/// Row compare with the need cells widened to `u32` per element — the
/// single-transition path, where narrowing a whole counts row first
/// would cost more than the one compare it feeds.
#[inline]
fn row_all_ge_widened<C: Copy>(counts: &[u32], need: &[C], widen: impl Fn(C) -> u32) -> bool {
    counts.iter().zip(need).all(|(&c, &n)| c >= widen(n))
}

/// Branch-light CSR preset fold: no early exit, flat arrays.
#[inline]
fn sparse_enabled(
    offsets: &[u32],
    places: &[u32],
    weights: &[u32],
    t: usize,
    counts: &[u32],
) -> bool {
    let lo = offsets[t] as usize;
    let hi = offsets[t + 1] as usize;
    let mut ok = true;
    for (&p, &w) in places[lo..hi].iter().zip(&weights[lo..hi]) {
        ok &= counts[p as usize] >= w;
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, TransitionKind};

    /// A small net with a weighted choice: p0 →(2) a | p0 →(2) b (one
    /// ECS), p1 → c, and a source s.
    fn choice_net() -> PetriNet {
        let mut bl = NetBuilder::new("choice");
        let p0 = bl.place("p0", 1);
        let p1 = bl.place("p1", 0);
        let s = bl.transition("s", TransitionKind::UncontrollableSource);
        let a = bl.transition("a", TransitionKind::Internal);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::Internal);
        bl.arc_t2p(s, p0, 1);
        bl.arc_p2t(p0, a, 2);
        bl.arc_p2t(p0, b, 2);
        bl.arc_t2p(a, p1, 1);
        bl.arc_t2p(b, p1, 1);
        bl.arc_p2t(p1, c, 1);
        bl.build().unwrap()
    }

    fn all_combos(net: &PetriNet, ecs: &EcsInfo) -> Vec<NetKernels> {
        let mut kernels = vec![
            NetKernels::compile(net, ecs, None),
            NetKernels::compile(net, ecs, Some(3)),
            NetKernels::compile(net, ecs, Some(1_000)),
            NetKernels::compile(net, ecs, Some(100_000)),
        ];
        for cell in [CellWidth::U8, CellWidth::U16, CellWidth::U32] {
            for dense in [true, false] {
                kernels.push(NetKernels::compile_forced(net, ecs, cell, dense));
            }
        }
        kernels
    }

    #[test]
    fn kernels_match_scalar_on_hand_rows() {
        let net = choice_net();
        let ecs = EcsInfo::compute(&net);
        let rows: Vec<Vec<u32>> = vec![
            vec![0, 0],
            vec![1, 0],
            vec![2, 0],
            vec![2, 1],
            vec![0, 1],
            vec![255, 255],
            vec![256, 256],
            vec![u32::MAX, u32::MAX],
        ];
        let mut scratch = KernelScratch::default();
        for kernels in all_combos(&net, &ecs) {
            for row in &rows {
                let set = kernels.enabled_set_at(row, &mut scratch);
                for t in net.transition_ids() {
                    assert_eq!(
                        set.contains(t),
                        net.is_enabled_at(t, row),
                        "set bit for {t} differs on {row:?} with {:?}/{}",
                        kernels.cell(),
                        kernels.is_dense(),
                    );
                    assert_eq!(kernels.is_enabled_at(t, row), net.is_enabled_at(t, row));
                }
                let mut out = Vec::new();
                kernels.enabled_ecs_into(row, &mut scratch, &mut out);
                assert_eq!(out, ecs.enabled_ecs_at(&net, row));
            }
        }
    }

    #[test]
    fn cell_width_follows_the_proven_bound() {
        let net = choice_net();
        let ecs = EcsInfo::compute(&net);
        assert_eq!(NetKernels::compile(&net, &ecs, None).cell(), CellWidth::U32);
        assert_eq!(
            NetKernels::compile(&net, &ecs, Some(200)).cell(),
            CellWidth::U8
        );
        assert_eq!(
            NetKernels::compile(&net, &ecs, Some(300)).cell(),
            CellWidth::U16
        );
        assert_eq!(
            NetKernels::compile(&net, &ecs, Some(70_000)).cell(),
            CellWidth::U32
        );
    }

    #[test]
    fn weights_beyond_the_cell_keep_it_wide() {
        // A proven bound of 200 fits u8, but a weight of 300 does not:
        // the need cells must hold the weight, so the width steps up.
        let mut bl = NetBuilder::new("wideweight");
        let p = bl.place("p", 0);
        let t = bl.transition("t", TransitionKind::Internal);
        bl.arc_p2t(p, t, 300);
        let net = bl.build().unwrap();
        let ecs = EcsInfo::compute(&net);
        assert_eq!(
            NetKernels::compile(&net, &ecs, Some(200)).cell(),
            CellWidth::U16
        );
    }

    #[test]
    #[should_panic(expected = "arc weights do not fit")]
    fn forcing_a_too_narrow_cell_panics() {
        let mut bl = NetBuilder::new("wideweight");
        let p = bl.place("p", 0);
        let t = bl.transition("t", TransitionKind::Internal);
        bl.arc_p2t(p, t, 300);
        let net = bl.build().unwrap();
        let ecs = EcsInfo::compute(&net);
        let _ = NetKernels::compile_forced(&net, &ecs, CellWidth::U8, true);
    }

    #[test]
    fn wide_nets_fall_back_to_sparse() {
        // 65 u32 cells exceed the byte cap: CSR regardless of density.
        let mut bl = NetBuilder::new("wide");
        for i in 0..(DENSE_ROW_BYTES_CAP / 4 + 1) {
            bl.place(format!("p{i}"), 0);
        }
        let t = bl.transition("t", TransitionKind::Internal);
        bl.arc_p2t(crate::PlaceId::new(0), t, 1);
        let net = bl.build().unwrap();
        let ecs = EcsInfo::compute(&net);
        assert!(!NetKernels::compile(&net, &ecs, None).is_dense());
        // Narrow cells bring the row under the cap, but one single-arc
        // preset over a 65-place stride is far too sparse for full-row
        // compares to pay: the density criterion keeps CSR.
        assert!(!NetKernels::compile(&net, &ecs, Some(1)).is_dense());
    }

    #[test]
    fn sparse_presets_keep_csr_under_the_byte_cap() {
        // 16 u32 cells fit the cap easily, but one single-arc preset
        // would make the dense sweep compare 15 provably-zero cells per
        // row — the density criterion picks CSR. The densely connected
        // choice net (2-place stride, presets covering it) stays dense.
        let mut bl = NetBuilder::new("sparse");
        let places: Vec<_> = (0..16).map(|i| bl.place(format!("p{i}"), 0)).collect();
        let t = bl.transition("t", TransitionKind::Internal);
        bl.arc_p2t(places[7], t, 1);
        let net = bl.build().unwrap();
        let ecs = EcsInfo::compute(&net);
        assert!(!NetKernels::compile(&net, &ecs, None).is_dense());

        let dense_net = choice_net();
        let dense_ecs = EcsInfo::compute(&dense_net);
        assert!(NetKernels::compile(&dense_net, &dense_ecs, None).is_dense());
        assert!(NetKernels::compile(&dense_net, &dense_ecs, Some(1)).is_dense());
    }

    #[test]
    fn enabled_set_iterates_in_id_order() {
        let net = choice_net();
        let ecs = EcsInfo::compute(&net);
        let kernels = NetKernels::compile(&net, &ecs, None);
        let mut scratch = KernelScratch::default();
        let set = kernels.enabled_set_at(&[2, 1], &mut scratch);
        let enabled: Vec<TransitionId> = set.iter().collect();
        let expected: Vec<TransitionId> = net
            .transition_ids()
            .filter(|&t| net.is_enabled_at(t, &[2, 1]))
            .collect();
        assert_eq!(enabled, expected);
        assert_eq!(set.count(), expected.len());
        assert_eq!(set.len(), net.num_transitions());
    }

    #[test]
    fn zero_place_nets_enable_everything() {
        let mut bl = NetBuilder::new("empty");
        bl.transition("t", TransitionKind::Internal);
        let net = bl.build().unwrap();
        let ecs = EcsInfo::compute(&net);
        let kernels = NetKernels::compile(&net, &ecs, None);
        let mut scratch = KernelScratch::default();
        let set = kernels.enabled_set_at(&[], &mut scratch);
        assert_eq!(set.count(), 1);
    }
}
