//! Content fingerprints of Petri nets, for caching per-net analyses.
//!
//! A long-running scheduling service wants to reuse the expensive per-net
//! state (`SearchContext`: ECS partition + T-invariant basis) across
//! requests that carry the same net. The cache key is
//! [`net_fingerprint`]: an **order-independent** hash over the net's
//! content — the multiset of places (name, kind, initial tokens, bound),
//! transitions (name, kind, code, guard, branch, process, priority) and
//! weighted arcs (endpoint *names*, direction, weight). Two nets built
//! from the same elements fingerprint identically no matter in which
//! order those elements were declared; the net's own display name is
//! deliberately excluded (analyses never depend on it).
//!
//! Order-independence has one sharp edge: a permutation of same-named
//! elements changes every [`PlaceId`](crate::PlaceId) /
//! [`TransitionId`](crate::TransitionId) while preserving the fingerprint, and cached id-indexed analyses would then be *wrong*
//! for the permuted net. [`net_ordered_digest`] is the companion
//! **order-sensitive** hash caches store alongside each entry: equal
//! fingerprint + equal digest means the id assignment matches too, so a
//! cached context is safe to reuse; equal fingerprint with a different
//! digest is treated as a miss (a detected collision), never silent reuse.

use crate::fx::FxHasher;
use crate::net::PetriNet;
use std::hash::Hasher;

/// Hashes one element (a tagged byte string) into a 64-bit lane.
fn element_hash(parts: &[&[u8]]) -> u64 {
    let mut h = FxHasher::default();
    for part in parts {
        h.write_usize(part.len());
        h.write(part);
    }
    // Finish with a multiply-xorshift so structurally similar elements
    // (e.g. `p1`/`p2`) land in well-separated lanes before the
    // commutative combination below.
    let mut x = h.finish();
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

fn u32_bytes(v: u32) -> [u8; 4] {
    v.to_le_bytes()
}

fn opt_u32_bytes(v: Option<u32>) -> [u8; 5] {
    let mut out = [0u8; 5];
    if let Some(v) = v {
        out[0] = 1;
        out[1..].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// The per-element lanes of a net, yielded in id order. Shared by the
/// order-independent fingerprint (which combines them commutatively) and
/// the order-sensitive digest (which chains them).
fn element_lanes(net: &PetriNet) -> impl Iterator<Item = u64> + '_ {
    let places = net.place_ids().map(move |p| {
        let place = net.place(p);
        element_hash(&[
            b"place",
            place.name.as_bytes(),
            &[place.kind as u8],
            &u32_bytes(place.initial),
            &opt_u32_bytes(place.bound),
        ])
    });
    let transitions = net.transition_ids().map(move |t| {
        let tr = net.transition(t);
        let code = tr.code.join("\n");
        let kind = [tr.kind as u8];
        let mut parts: Vec<&[u8]> = vec![b"transition", tr.name.as_bytes(), &kind];
        parts.push(code.as_bytes());
        let guard = tr.guard.as_deref().unwrap_or("\u{0}none");
        parts.push(guard.as_bytes());
        let branch = [match tr.branch {
            None => 0u8,
            Some(false) => 1,
            Some(true) => 2,
        }];
        parts.push(&branch);
        let process = tr.process.as_deref().unwrap_or("\u{0}none");
        parts.push(process.as_bytes());
        let priority = opt_u32_bytes(tr.priority);
        parts.push(&priority);
        element_hash(&parts)
    });
    let arcs = net.transition_ids().flat_map(move |t| {
        let tr_name = net.transition(t).name.as_bytes();
        let pre = net.preset(t).iter().map(move |&(p, w)| {
            element_hash(&[
                b"arc-p2t",
                net.place(p).name.as_bytes(),
                tr_name,
                &u32_bytes(w),
            ])
        });
        let post = net.postset(t).iter().map(move |&(p, w)| {
            element_hash(&[
                b"arc-t2p",
                tr_name,
                net.place(p).name.as_bytes(),
                &u32_bytes(w),
            ])
        });
        pre.chain(post)
    });
    places.chain(transitions).chain(arcs)
}

/// The order-independent content fingerprint of a net.
///
/// Stable under any reordering of place/transition declarations and arc
/// insertions: per-element hashes are combined with commutative
/// reductions (sum and xor-of-rotations), then mixed with the element
/// counts. Suitable as a cache key for per-net derived state; pair it
/// with [`net_ordered_digest`] to reject the (astronomically unlikely,
/// but id-corrupting) same-content-different-order collisions.
pub fn net_fingerprint(net: &PetriNet) -> u64 {
    let mut sum: u64 = 0;
    let mut xor: u64 = 0;
    let mut count: u64 = 0;
    for lane in element_lanes(net) {
        sum = sum.wrapping_add(lane);
        // Rotate by a lane-derived amount before xor so that pairs of
        // identical elements don't cancel each other out of the xor lane.
        xor ^= lane.rotate_left((lane & 63) as u32);
        count += 1;
    }
    let mut h = FxHasher::default();
    h.write_u64(sum);
    h.write_u64(xor);
    h.write_u64(count);
    h.write_usize(net.num_places());
    h.write_usize(net.num_transitions());
    h.finish()
}

/// The order-**sensitive** companion digest of [`net_fingerprint`].
///
/// Chains the same per-element lanes in id order, so any permutation of
/// places or transitions (which would re-number the
/// [`PlaceId`](crate::PlaceId)s / [`TransitionId`](crate::TransitionId)s
/// and invalidate id-indexed analyses) changes the digest. Caches keyed by fingerprint store this alongside each entry
/// and treat a digest mismatch as a miss.
pub fn net_ordered_digest(net: &PetriNet) -> u64 {
    let mut h = FxHasher::default();
    for lane in element_lanes(net) {
        h.write_u64(lane);
    }
    h.write_usize(net.num_places());
    h.write_usize(net.num_transitions());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, TransitionKind};

    fn chain_net(order_swapped: bool) -> PetriNet {
        let mut b = NetBuilder::new("chain");
        if order_swapped {
            let p1 = b.place("p1", 0);
            let p0 = b.place("p0", 1);
            let tb = b.transition("b", TransitionKind::Internal);
            let ta = b.transition("a", TransitionKind::Internal);
            b.arc_p2t(p1, tb, 1);
            b.arc_t2p(tb, p0, 1);
            b.arc_p2t(p0, ta, 1);
            b.arc_t2p(ta, p1, 1);
        } else {
            let p0 = b.place("p0", 1);
            let p1 = b.place("p1", 0);
            let ta = b.transition("a", TransitionKind::Internal);
            let tb = b.transition("b", TransitionKind::Internal);
            b.arc_p2t(p0, ta, 1);
            b.arc_t2p(ta, p1, 1);
            b.arc_p2t(p1, tb, 1);
            b.arc_t2p(tb, p0, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_nets_fingerprint_identically() {
        assert_eq!(
            net_fingerprint(&chain_net(false)),
            net_fingerprint(&chain_net(false))
        );
        assert_eq!(
            net_ordered_digest(&chain_net(false)),
            net_ordered_digest(&chain_net(false))
        );
    }

    #[test]
    fn declaration_order_does_not_change_the_fingerprint() {
        assert_eq!(
            net_fingerprint(&chain_net(false)),
            net_fingerprint(&chain_net(true))
        );
    }

    #[test]
    fn declaration_order_does_change_the_ordered_digest() {
        assert_ne!(
            net_ordered_digest(&chain_net(false)),
            net_ordered_digest(&chain_net(true))
        );
    }

    #[test]
    fn net_name_is_excluded() {
        let build = |name: &str| {
            let mut b = NetBuilder::new(name);
            let p = b.place("p", 1);
            let t = b.transition("t", TransitionKind::Internal);
            b.arc_p2t(p, t, 1);
            b.build().unwrap()
        };
        assert_eq!(net_fingerprint(&build("x")), net_fingerprint(&build("y")));
    }

    #[test]
    fn content_changes_change_the_fingerprint() {
        let base = chain_net(false);
        // Different initial marking.
        let mut b = NetBuilder::new("chain");
        let p0 = b.place("p0", 2);
        let p1 = b.place("p1", 0);
        let ta = b.transition("a", TransitionKind::Internal);
        let tb = b.transition("b", TransitionKind::Internal);
        b.arc_p2t(p0, ta, 1);
        b.arc_t2p(ta, p1, 1);
        b.arc_p2t(p1, tb, 1);
        b.arc_t2p(tb, p0, 1);
        let marked = b.build().unwrap();
        assert_ne!(net_fingerprint(&base), net_fingerprint(&marked));

        // Different arc weight.
        let mut b = NetBuilder::new("chain");
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        let ta = b.transition("a", TransitionKind::Internal);
        let tb = b.transition("b", TransitionKind::Internal);
        b.arc_p2t(p0, ta, 1);
        b.arc_t2p(ta, p1, 2);
        b.arc_p2t(p1, tb, 1);
        b.arc_t2p(tb, p0, 1);
        let weighted = b.build().unwrap();
        assert_ne!(net_fingerprint(&base), net_fingerprint(&weighted));

        // Different transition kind.
        let mut b = NetBuilder::new("chain");
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        let ta = b.transition("a", TransitionKind::UncontrollableSource);
        let tb = b.transition("b", TransitionKind::Internal);
        b.arc_p2t(p0, ta, 1);
        b.arc_t2p(ta, p1, 1);
        b.arc_p2t(p1, tb, 1);
        b.arc_t2p(tb, p0, 1);
        let retyped = b.build().unwrap();
        assert_ne!(net_fingerprint(&base), net_fingerprint(&retyped));
    }

    #[test]
    fn adding_same_shaped_places_changes_the_fingerprint() {
        // Every element lane is unique (names are unique, same-pair arcs
        // merge), but lanes of same-shaped siblings are *similar*; a
        // weak commutative combiner could let them collide.
        let with_pair = |n: usize| {
            let mut b = NetBuilder::new("dup");
            let p = b.place("p", 1);
            let t = b.transition("t", TransitionKind::Internal);
            b.arc_p2t(p, t, 1);
            for i in 0..n {
                b.place(format!("twin{i}"), 3);
            }
            b.build().unwrap()
        };
        let zero = with_pair(0);
        let two = with_pair(2);
        assert_ne!(net_fingerprint(&zero), net_fingerprint(&two));
    }
}
