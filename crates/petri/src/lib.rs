//! Petri-net kernel for quasi-static scheduling.
//!
//! This crate provides the underlying formal model used by the whole
//! workspace: weighted place/transition nets with an initial marking, the
//! notions of *equal conflict sets* (ECS), Equal-Choice and Unique-Choice
//! classification, reachability exploration, incidence matrices,
//! non-negative T-invariant bases and *place degrees* (the structural bound
//! used by the irrelevant-marking pruning criterion of Cortadella et al.,
//! DAC 2000).
//!
//! # Quick example
//!
//! ```
//! use qss_petri::{NetBuilder, TransitionKind};
//!
//! let mut b = NetBuilder::new("producer-consumer");
//! let buf = b.place("buf", 0);
//! let src = b.transition("produce", TransitionKind::UncontrollableSource);
//! let snk = b.transition("consume", TransitionKind::Internal);
//! b.arc_t2p(src, buf, 1);
//! b.arc_p2t(buf, snk, 1);
//! let net = b.build().unwrap();
//!
//! let m0 = net.initial_marking();
//! assert!(net.is_enabled(snk, &m0) == false);
//! let m1 = net.fire(src, &m0).unwrap();
//! assert!(net.is_enabled(snk, &m1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod analysis;
pub mod dot;
pub mod ecs;
pub mod error;
pub mod fingerprint;
pub mod fx;
pub mod ids;
pub mod invariant;
pub mod kernel;
pub mod marking;
pub mod net;
pub mod reach;
pub mod store;
pub mod structural;

pub use analysis::{place_degree, NetAnalysis};
pub use ecs::{ChoiceClass, EcsId, EcsInfo};
pub use error::{NetError, Result};
pub use fingerprint::{net_fingerprint, net_ordered_digest};
pub use fx::{FxHashMap, FxHashSet};
pub use ids::{PlaceId, TransitionId};
pub use invariant::{
    incidence_matrix, p_invariant_basis, p_invariant_basis_dense, p_invariant_elimination,
    t_invariant_basis, t_invariant_basis_dense, IncidenceMatrix, PInvariant, TInvariant,
};
pub use kernel::{CellWidth, EnabledSet, KernelKind, KernelScratch, NetKernels};
pub use marking::{format_marking, marking_hash, place_count_hash, Marking};
pub use net::{NetBuilder, PetriNet, Place, PlaceKind, Transition, TransitionKind};
pub use reach::{ReachabilityGraph, ReachabilityLimits};
pub use store::{MarkingId, MarkingStore};
pub use structural::{
    structural_report, structural_report_dense, ComponentEnumeration, EnumerationStatus,
    PlaceFacts, PlaceSet, StructuralLimits, StructuralReport,
};
