//! Equal conflict sets (ECS) and choice-place classification.
//!
//! An ECS groups non-source transitions that consume exactly the same
//! multiset of tokens (`F(p, t_i) = F(p, t_j)` for all places `p`): either
//! all of them are enabled at a marking or none is. Source transitions form
//! singleton ECSs of their own. Data-dependent control constructs compiled
//! from FlowC become *Equal-Choice* places whose successors are one ECS;
//! port places read at several program points become *unique-choice*
//! places. A net in which every choice place is one of the two is a
//! Unique-Choice Petri Net (UCPN).

use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;
use crate::reach::{ReachabilityGraph, ReachabilityLimits};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of an equal conflict set within an [`EcsInfo`] partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EcsId(pub u32);

impl EcsId {
    /// Raw index of this ECS.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Classification of a place with respect to choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChoiceClass {
    /// At most one successor transition: no choice at all.
    NonChoice,
    /// All successor transitions belong to the same ECS (generalised
    /// free choice): the choice is resolved by data, not by scheduling.
    EqualChoice,
    /// Several successor ECSs, but at most one successor transition is
    /// enabled at any reachable marking.
    UniqueChoice,
    /// Several successor ECSs and the unique-choice property could not be
    /// established (either it is violated or exploration hit its limit).
    Unknown,
}

/// The ECS partition of a net, plus per-place choice classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcsInfo {
    /// For each transition (by index), the ECS it belongs to.
    membership: Vec<EcsId>,
    /// For each ECS (by index), its member transitions in id order.
    members: Vec<Vec<TransitionId>>,
}

impl EcsInfo {
    /// Computes the ECS partition of `net`.
    ///
    /// Non-source transitions are grouped by their full preset
    /// (place/weight multiset); every structural source transition gets a
    /// singleton ECS.
    pub fn compute(net: &PetriNet) -> Self {
        let mut key_to_ecs: BTreeMap<Vec<(PlaceId, u32)>, EcsId> = BTreeMap::new();
        let mut membership = vec![EcsId(0); net.num_transitions()];
        let mut members: Vec<Vec<TransitionId>> = Vec::new();

        for t in net.transition_ids() {
            if net.is_structural_source(t) {
                let id = EcsId(members.len() as u32);
                members.push(vec![t]);
                membership[t.index()] = id;
            } else {
                let mut key: Vec<(PlaceId, u32)> = net.preset(t).to_vec();
                key.sort();
                let id = *key_to_ecs.entry(key).or_insert_with(|| {
                    let id = EcsId(members.len() as u32);
                    members.push(Vec::new());
                    id
                });
                members[id.index()].push(t);
                membership[t.index()] = id;
            }
        }
        EcsInfo {
            membership,
            members,
        }
    }

    /// Number of equal conflict sets.
    pub fn num_ecs(&self) -> usize {
        self.members.len()
    }

    /// The ECS that transition `t` belongs to.
    ///
    /// # Panics
    /// Panics if `t` does not belong to the net this partition was computed
    /// from.
    pub fn ecs_of(&self, t: TransitionId) -> EcsId {
        self.membership[t.index()]
    }

    /// Member transitions of ECS `e`, in identifier order.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    pub fn members(&self, e: EcsId) -> &[TransitionId] {
        &self.members[e.index()]
    }

    /// Iterator over all ECS identifiers.
    pub fn ecs_ids(&self) -> impl Iterator<Item = EcsId> + '_ {
        (0..self.members.len()).map(|i| EcsId(i as u32))
    }

    /// Returns `true` if `a` and `b` are in equal conflict.
    pub fn in_equal_conflict(&self, a: TransitionId, b: TransitionId) -> bool {
        self.ecs_of(a) == self.ecs_of(b)
    }

    /// The ECSs enabled at marking `m` in `net`, in ECS-id order.
    ///
    /// By construction, if one member of an ECS is enabled all members are,
    /// so it suffices to test one representative — this method still tests
    /// the first member for robustness against inconsistent nets.
    pub fn enabled_ecs(&self, net: &PetriNet, m: &Marking) -> Vec<EcsId> {
        self.enabled_ecs_at(net, m.as_slice())
    }

    /// Slice counterpart of [`EcsInfo::enabled_ecs`] for callers working
    /// on raw counts (the schedule search's scratch marking, store rows).
    pub fn enabled_ecs_at(&self, net: &PetriNet, counts: &[u32]) -> Vec<EcsId> {
        let mut out = Vec::new();
        self.enabled_ecs_into(net, counts, &mut out);
        out
    }

    /// Allocation-free counterpart of [`EcsInfo::enabled_ecs_at`]: clears
    /// `out` and appends the enabled ECSs in ECS-id order. The schedule
    /// search calls this once per tree node with a reused scratch buffer,
    /// so it must not allocate beyond growing `out` on first use.
    pub fn enabled_ecs_into(&self, net: &PetriNet, counts: &[u32], out: &mut Vec<EcsId>) {
        out.clear();
        for (i, members) in self.members.iter().enumerate() {
            let enabled = members
                .first()
                .map(|t| net.is_enabled_at(*t, counts))
                .unwrap_or(false);
            if enabled {
                out.push(EcsId(i as u32));
            }
        }
    }

    /// Classifies every place of the net.
    ///
    /// Places whose successors all belong to one ECS are
    /// [`ChoiceClass::EqualChoice`] (or [`ChoiceClass::NonChoice`] when
    /// they have at most one successor). For the remaining choice places a
    /// bounded reachability exploration checks the unique-choice property;
    /// places for which the check is inconclusive are
    /// [`ChoiceClass::Unknown`].
    pub fn classify_places(
        &self,
        net: &PetriNet,
        limits: &ReachabilityLimits,
    ) -> BTreeMap<PlaceId, ChoiceClass> {
        let mut result = BTreeMap::new();
        let mut needs_reach: Vec<PlaceId> = Vec::new();
        for p in net.place_ids() {
            let succs = net.place_successors(p);
            if succs.len() <= 1 {
                result.insert(p, ChoiceClass::NonChoice);
                continue;
            }
            let ecs0 = self.ecs_of(succs[0]);
            if succs.iter().all(|t| self.ecs_of(*t) == ecs0) {
                result.insert(p, ChoiceClass::EqualChoice);
            } else {
                needs_reach.push(p);
            }
        }
        if needs_reach.is_empty() {
            return result;
        }
        // Check unique choice by bounded reachability: a choice place is
        // unique if no reachable marking enables successors from more than
        // one of its successor ECSs.
        match ReachabilityGraph::explore(net, limits) {
            Ok(graph) => {
                for &p in &needs_reach {
                    let mut unique = true;
                    'markings: for m in graph.markings() {
                        let mut enabled_sets: BTreeSet<EcsId> = BTreeSet::new();
                        for &t in net.place_successors(p) {
                            if net.is_enabled_at(t, m) {
                                enabled_sets.insert(self.ecs_of(t));
                                if enabled_sets.len() > 1 {
                                    unique = false;
                                    break 'markings;
                                }
                            }
                        }
                    }
                    result.insert(
                        p,
                        if unique {
                            ChoiceClass::UniqueChoice
                        } else {
                            ChoiceClass::Unknown
                        },
                    );
                }
            }
            Err(_) => {
                for &p in &needs_reach {
                    result.insert(p, ChoiceClass::Unknown);
                }
            }
        }
        result
    }

    /// Returns `true` if the net is Unique-Choice: every choice place is
    /// either Equal-Choice or unique-choice under the bounded exploration.
    pub fn is_unique_choice(&self, net: &PetriNet, limits: &ReachabilityLimits) -> bool {
        self.classify_places(net, limits)
            .values()
            .all(|c| *c != ChoiceClass::Unknown)
    }

    /// Returns `true` if the net is Equal-Choice: every choice place's
    /// successors form a single ECS. This is purely structural.
    pub fn is_equal_choice(&self, net: &PetriNet) -> bool {
        net.place_ids().all(|p| {
            let succs = net.place_successors(p);
            succs.len() <= 1 || {
                let e = self.ecs_of(succs[0]);
                succs.iter().all(|t| self.ecs_of(*t) == e)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, TransitionKind};

    /// Builds the paper's Figure 8(a) net:
    /// source `a` feeds `p1`; `p1` is an equal-choice place with successors
    /// `b` and `c`; `b -> p2 -> d`, `c -> p3(weight 2) ... e` consumes 2.
    fn figure8_net() -> PetriNet {
        let mut bl = NetBuilder::new("fig8");
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let p3 = bl.place("p3", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::Internal);
        let d = bl.transition("d", TransitionKind::Internal);
        let e = bl.transition("e", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p1, b, 1);
        bl.arc_p2t(p1, c, 1);
        bl.arc_t2p(b, p2, 1);
        bl.arc_p2t(p2, d, 1);
        bl.arc_t2p(c, p3, 1);
        bl.arc_p2t(p3, e, 2);
        bl.build().unwrap()
    }

    #[test]
    fn equal_conflict_partition() {
        let net = figure8_net();
        let ecs = EcsInfo::compute(&net);
        let b = net.transition_by_name("b").unwrap();
        let c = net.transition_by_name("c").unwrap();
        let d = net.transition_by_name("d").unwrap();
        let a = net.transition_by_name("a").unwrap();
        assert!(ecs.in_equal_conflict(b, c));
        assert!(!ecs.in_equal_conflict(b, d));
        assert!(!ecs.in_equal_conflict(a, b));
        // a, {b,c}, d, e => 4 ECSs
        assert_eq!(ecs.num_ecs(), 4);
        assert_eq!(ecs.members(ecs.ecs_of(b)), &[b, c]);
    }

    #[test]
    fn source_gets_singleton_ecs() {
        let net = figure8_net();
        let ecs = EcsInfo::compute(&net);
        let a = net.transition_by_name("a").unwrap();
        assert_eq!(ecs.members(ecs.ecs_of(a)), &[a]);
    }

    #[test]
    fn enabled_ecs_reflects_marking() {
        let net = figure8_net();
        let ecs = EcsInfo::compute(&net);
        let a = net.transition_by_name("a").unwrap();
        let b = net.transition_by_name("b").unwrap();
        let m0 = net.initial_marking();
        let enabled = ecs.enabled_ecs(&net, &m0);
        assert_eq!(enabled, vec![ecs.ecs_of(a)]);
        let m1 = net.fire(a, &m0).unwrap();
        let enabled = ecs.enabled_ecs(&net, &m1);
        assert!(enabled.contains(&ecs.ecs_of(a)));
        assert!(enabled.contains(&ecs.ecs_of(b)));
    }

    #[test]
    fn equal_choice_classification() {
        let net = figure8_net();
        let ecs = EcsInfo::compute(&net);
        assert!(ecs.is_equal_choice(&net));
        let classes = ecs.classify_places(&net, &ReachabilityLimits::default());
        let p1 = net.place_by_name("p1").unwrap();
        let p2 = net.place_by_name("p2").unwrap();
        assert_eq!(classes[&p1], ChoiceClass::EqualChoice);
        assert_eq!(classes[&p2], ChoiceClass::NonChoice);
    }

    /// A port place read by two different transitions of the same process
    /// is a unique choice: its two readers are never enabled together.
    #[test]
    fn unique_choice_port_place() {
        let mut bl = NetBuilder::new("ucp");
        let pc0 = bl.place("pc0", 1);
        let pc1 = bl.place("pc1", 0);
        let port = bl.place("port", 0);
        let src = bl.transition("env", TransitionKind::UncontrollableSource);
        let r1 = bl.transition("read1", TransitionKind::Internal);
        let r2 = bl.transition("read2", TransitionKind::Internal);
        bl.arc_t2p(src, port, 1);
        // read1: pc0 + port -> pc1 ; read2: pc1 + port -> pc0
        bl.arc_p2t(pc0, r1, 1);
        bl.arc_p2t(port, r1, 1);
        bl.arc_t2p(r1, pc1, 1);
        bl.arc_p2t(pc1, r2, 1);
        bl.arc_p2t(port, r2, 1);
        bl.arc_t2p(r2, pc0, 1);
        let net = bl.build().unwrap();
        let ecs = EcsInfo::compute(&net);
        assert!(!ecs.is_equal_choice(&net));
        let limits = ReachabilityLimits {
            max_markings: 2_000,
            max_tokens_per_place: Some(4),
        };
        let classes = ecs.classify_places(&net, &limits);
        let port = net.place_by_name("port").unwrap();
        assert_eq!(classes[&port], ChoiceClass::UniqueChoice);
        assert!(ecs.is_unique_choice(&net, &limits));
    }

    /// Two transitions of *different* processes competing for the same
    /// place are simultaneously enabled, so the place is not unique choice.
    #[test]
    fn non_unique_choice_detected() {
        let mut bl = NetBuilder::new("conflict");
        let shared = bl.place("shared", 1);
        let t1 = bl.transition("t1", TransitionKind::Internal);
        let t2 = bl.transition("t2", TransitionKind::Internal);
        let extra = bl.place("extra", 1);
        bl.arc_p2t(shared, t1, 1);
        bl.arc_p2t(shared, t2, 1);
        bl.arc_p2t(extra, t2, 1);
        let net = bl.build().unwrap();
        let ecs = EcsInfo::compute(&net);
        let classes = ecs.classify_places(&net, &ReachabilityLimits::default());
        let shared = net.place_by_name("shared").unwrap();
        assert_eq!(classes[&shared], ChoiceClass::Unknown);
        assert!(!ecs.is_unique_choice(&net, &ReachabilityLimits::default()));
    }
}
