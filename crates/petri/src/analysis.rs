//! Structural analyses: place degrees and net statistics.

use crate::ids::PlaceId;
use crate::net::{PetriNet, TransitionKind};
use serde::{Deserialize, Serialize};

/// Computes the *degree* of place `p` as defined in the paper (Def. 4.4):
///
/// ```text
/// degree(p) = max( max_weight(input(p)) + max_weight(output(p)) − 1,
///                  M0(p) )
/// ```
///
/// Intuitively, once a place holds `degree(p)` tokens it is *saturated*:
/// adding further tokens cannot newly enable any successor transition, so
/// accumulating beyond the degree is only useful if it feeds some other
/// non-saturated place. The degree drives the irrelevant-marking pruning
/// criterion of the scheduler.
pub fn place_degree(net: &PetriNet, p: PlaceId) -> u32 {
    let max_in = net
        .place_predecessors(p)
        .iter()
        .map(|&t| net.weight_t2p(t, p))
        .max()
        .unwrap_or(0);
    let max_out = net
        .place_successors(p)
        .iter()
        .map(|&t| net.weight_p2t(p, t))
        .max()
        .unwrap_or(0);
    let structural = (max_in + max_out).saturating_sub(1);
    structural.max(net.place(p).initial)
}

/// Aggregate structural information about a net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetAnalysis {
    /// Degree of every place, indexed by place id.
    pub degrees: Vec<u32>,
    /// Number of places.
    pub num_places: usize,
    /// Number of transitions.
    pub num_transitions: usize,
    /// Number of arcs (counting each direction separately).
    pub num_arcs: usize,
    /// Number of uncontrollable source transitions.
    pub num_uncontrollable_sources: usize,
    /// Number of controllable source transitions.
    pub num_controllable_sources: usize,
    /// Number of choice places (more than one successor).
    pub num_choice_places: usize,
    /// `true` if no place has more than one successor (marked-graph-like
    /// choice structure).
    pub is_conflict_free: bool,
}

impl NetAnalysis {
    /// Computes the analysis for `net`.
    pub fn of(net: &PetriNet) -> Self {
        let degrees: Vec<u32> = net.place_ids().map(|p| place_degree(net, p)).collect();
        let num_arcs: usize = net
            .transition_ids()
            .map(|t| net.preset(t).len() + net.postset(t).len())
            .sum();
        let num_choice_places = net
            .place_ids()
            .filter(|p| net.place_successors(*p).len() > 1)
            .count();
        NetAnalysis {
            num_places: net.num_places(),
            num_transitions: net.num_transitions(),
            num_arcs,
            num_uncontrollable_sources: net
                .transition_ids()
                .filter(|t| net.transition(*t).kind == TransitionKind::UncontrollableSource)
                .count(),
            num_controllable_sources: net
                .transition_ids()
                .filter(|t| net.transition(*t).kind == TransitionKind::ControllableSource)
                .count(),
            num_choice_places,
            is_conflict_free: num_choice_places == 0,
            degrees,
        }
    }

    /// Degree of place `p`.
    pub fn degree(&self, p: PlaceId) -> u32 {
        self.degrees[p.index()]
    }

    /// The maximum degree over all places (0 for a net without places).
    pub fn max_degree(&self) -> u32 {
        self.degrees.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, TransitionKind};

    #[test]
    fn degree_of_simple_place() {
        let mut b = NetBuilder::new("deg");
        let p = b.place("p", 0);
        let a = b.transition("a", TransitionKind::Internal);
        let c = b.transition("c", TransitionKind::Internal);
        b.arc_t2p(a, p, 1);
        b.arc_p2t(p, c, 1);
        let net = b.build().unwrap();
        let p = net.place_by_name("p").unwrap();
        // 1 + 1 - 1 = 1
        assert_eq!(place_degree(&net, p), 1);
    }

    #[test]
    fn degree_with_weights() {
        let mut b = NetBuilder::new("degw");
        let p = b.place("p", 0);
        let a = b.transition("a", TransitionKind::Internal);
        let c = b.transition("c", TransitionKind::Internal);
        b.arc_t2p(a, p, 2);
        b.arc_p2t(p, c, 3);
        let net = b.build().unwrap();
        let p = net.place_by_name("p").unwrap();
        // 2 + 3 - 1 = 4
        assert_eq!(place_degree(&net, p), 4);
    }

    #[test]
    fn degree_dominated_by_initial_marking() {
        let mut b = NetBuilder::new("deg0");
        let p = b.place("p", 7);
        let c = b.transition("c", TransitionKind::Internal);
        b.arc_p2t(p, c, 1);
        let net = b.build().unwrap();
        let p = net.place_by_name("p").unwrap();
        assert_eq!(place_degree(&net, p), 7);
    }

    #[test]
    fn degree_of_isolated_place_is_initial() {
        let mut b = NetBuilder::new("iso");
        b.place("p", 2);
        let net = b.build().unwrap();
        let p = net.place_by_name("p").unwrap();
        assert_eq!(place_degree(&net, p), 2);
    }

    #[test]
    fn analysis_counts() {
        let mut b = NetBuilder::new("stats");
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        let src = b.transition("src", TransitionKind::UncontrollableSource);
        let t1 = b.transition("t1", TransitionKind::Internal);
        let t2 = b.transition("t2", TransitionKind::Internal);
        b.arc_t2p(src, p1, 1);
        b.arc_p2t(p1, t1, 1);
        b.arc_p2t(p0, t1, 1);
        b.arc_p2t(p0, t2, 1);
        b.arc_t2p(t1, p0, 1);
        b.arc_t2p(t2, p0, 1);
        let net = b.build().unwrap();
        let a = NetAnalysis::of(&net);
        assert_eq!(a.num_places, 2);
        assert_eq!(a.num_transitions, 3);
        assert_eq!(a.num_uncontrollable_sources, 1);
        assert_eq!(a.num_controllable_sources, 0);
        assert_eq!(a.num_choice_places, 1);
        assert!(!a.is_conflict_free);
        assert_eq!(a.num_arcs, 6);
        assert!(a.max_degree() >= 1);
    }
}
