//! Petri-net structure, builder and firing rule.

use crate::error::{NetError, Result};
use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The role a place plays in the system model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlaceKind {
    /// Sequencing place internal to one process ("program counter" place).
    Internal,
    /// A place that models a communication channel between two processes.
    Channel,
    /// A place that models a port connected to the environment (unlinked).
    EnvironmentPort,
}

/// The role a transition plays in the system model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitionKind {
    /// Ordinary transition annotated with a fragment of process code.
    Internal,
    /// Source transition for an uncontrollable environment input port:
    /// the environment decides when it fires and the system must react.
    UncontrollableSource,
    /// Source transition for a controllable environment input port: the
    /// system decides when to request the input.
    ControllableSource,
    /// Sink transition for an environment output port.
    Sink,
}

impl TransitionKind {
    /// Returns `true` for either kind of source transition.
    pub fn is_source(self) -> bool {
        matches!(
            self,
            TransitionKind::UncontrollableSource | TransitionKind::ControllableSource
        )
    }
}

/// A place of the net together with its metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Place {
    /// Human readable name (unique within the net).
    pub name: String,
    /// Role of the place.
    pub kind: PlaceKind,
    /// Number of tokens in the initial marking.
    pub initial: u32,
    /// User-specified bound on the number of tokens (channel capacity),
    /// if any. `None` means unbounded.
    pub bound: Option<u32>,
}

/// A transition of the net together with its metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Human readable name (unique within the net).
    pub name: String,
    /// Role of the transition.
    pub kind: TransitionKind,
    /// Fragment of source code executed when the transition fires
    /// (used by code generation; empty for silent transitions).
    pub code: Vec<String>,
    /// Boolean guard expression of the data-dependent choice this
    /// transition resolves, if any (e.g. `"i > 1"`).
    pub guard: Option<String>,
    /// Whether this transition is the `true` or `false` branch of its guard.
    pub branch: Option<bool>,
    /// Name of the process the transition was compiled from, if any.
    pub process: Option<String>,
    /// Scheduling priority among sibling choices (lower is preferred);
    /// used for SELECT arms, `None` for everything else.
    pub priority: Option<u32>,
}

/// A weighted place/transition net with an initial marking.
///
/// The structure is immutable once built; use [`NetBuilder`] to construct
/// one incrementally. Arcs are stored as adjacency lists in both
/// directions so that enabling checks and firing are `O(preset size)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PetriNet {
    name: String,
    places: Vec<Place>,
    transitions: Vec<Transition>,
    /// For each transition, the list of `(place, weight)` pairs it consumes.
    pre: Vec<Vec<(PlaceId, u32)>>,
    /// For each transition, the list of `(place, weight)` pairs it produces.
    post: Vec<Vec<(PlaceId, u32)>>,
    /// For each place, the transitions that consume from it.
    place_post: Vec<Vec<TransitionId>>,
    /// For each place, the transitions that produce into it.
    place_pre: Vec<Vec<TransitionId>>,
    /// For each transition, the net token change it causes, as sorted
    /// `(place, post − pre)` pairs with zero entries elided. This is the
    /// dense delta representation used by [`PetriNet::fire_into`] /
    /// [`PetriNet::unfire_into`]: the schedule search applies and reverts
    /// transitions on one scratch marking in `O(changed places)` instead
    /// of cloning a marking per firing.
    changed: Vec<Vec<(PlaceId, i64)>>,
}

impl PetriNet {
    /// Name of the net.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Iterator over all place identifiers.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len()).map(PlaceId::new)
    }

    /// Iterator over all transition identifiers.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len()).map(TransitionId::new)
    }

    /// Returns the place metadata.
    ///
    /// # Panics
    /// Panics if `p` does not belong to this net.
    pub fn place(&self, p: PlaceId) -> &Place {
        &self.places[p.index()]
    }

    /// Returns the transition metadata.
    ///
    /// # Panics
    /// Panics if `t` does not belong to this net.
    pub fn transition(&self, t: TransitionId) -> &Transition {
        &self.transitions[t.index()]
    }

    /// Looks a place up by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places
            .iter()
            .position(|p| p.name == name)
            .map(PlaceId::new)
    }

    /// Looks a transition up by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(TransitionId::new)
    }

    /// The arc weight `F(p, t)` from place `p` to transition `t` (0 if absent).
    pub fn weight_p2t(&self, p: PlaceId, t: TransitionId) -> u32 {
        self.pre[t.index()]
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, w)| *w)
            .unwrap_or(0)
    }

    /// The arc weight `F(t, p)` from transition `t` to place `p` (0 if absent).
    pub fn weight_t2p(&self, t: TransitionId, p: PlaceId) -> u32 {
        self.post[t.index()]
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, w)| *w)
            .unwrap_or(0)
    }

    /// `(place, weight)` pairs consumed by `t`.
    pub fn preset(&self, t: TransitionId) -> &[(PlaceId, u32)] {
        &self.pre[t.index()]
    }

    /// `(place, weight)` pairs produced by `t`.
    pub fn postset(&self, t: TransitionId) -> &[(PlaceId, u32)] {
        &self.post[t.index()]
    }

    /// Transitions that consume from place `p` (successors of `p`).
    pub fn place_successors(&self, p: PlaceId) -> &[TransitionId] {
        &self.place_post[p.index()]
    }

    /// Transitions that produce into place `p` (predecessors of `p`).
    pub fn place_predecessors(&self, p: PlaceId) -> &[TransitionId] {
        &self.place_pre[p.index()]
    }

    /// Returns `true` if `t` is a source transition (no input places).
    ///
    /// Note that this is the *structural* definition from the paper
    /// (`F(p, t) = 0` for all `p`); the [`TransitionKind`] is additional
    /// metadata attached during linking.
    pub fn is_structural_source(&self, t: TransitionId) -> bool {
        self.pre[t.index()].is_empty()
    }

    /// The initial marking `M0` of the net.
    pub fn initial_marking(&self) -> Marking {
        Marking::from_counts(self.places.iter().map(|p| p.initial))
    }

    /// Returns `true` if `t` is enabled at marking `m`.
    pub fn is_enabled(&self, t: TransitionId, m: &Marking) -> bool {
        self.is_enabled_at(t, m.as_slice())
    }

    /// Returns `true` if `t` is enabled at the raw counts slice `counts`
    /// (a [`MarkingStore`](crate::MarkingStore) row or scratch buffer).
    pub fn is_enabled_at(&self, t: TransitionId, counts: &[u32]) -> bool {
        self.pre[t.index()]
            .iter()
            .all(|(p, w)| counts[p.index()] >= *w)
    }

    /// All transitions enabled at `m`, in identifier order.
    pub fn enabled_transitions(&self, m: &Marking) -> Vec<TransitionId> {
        self.transition_ids()
            .filter(|t| self.is_enabled(*t, m))
            .collect()
    }

    /// Fires `t` at `m` and returns the successor marking.
    ///
    /// # Errors
    /// Returns [`NetError::NotEnabled`] if `t` is not enabled at `m`.
    pub fn fire(&self, t: TransitionId, m: &Marking) -> Result<Marking> {
        if !self.is_enabled(t, m) {
            return Err(NetError::NotEnabled(t));
        }
        Ok(self.fire_unchecked(t, m))
    }

    /// Fires `t` at `m` without checking enabledness.
    ///
    /// # Panics
    /// Panics (by underflow) in debug builds if `t` is not enabled at `m`.
    pub fn fire_unchecked(&self, t: TransitionId, m: &Marking) -> Marking {
        let mut next = m.clone();
        for (p, w) in &self.pre[t.index()] {
            next.remove_tokens(*p, *w);
        }
        for (p, w) in &self.post[t.index()] {
            next.add_tokens(*p, *w);
        }
        next
    }

    /// The net token change of `t` as sorted `(place, post − pre)` pairs,
    /// zero entries elided. Precomputed at build time; this is the set of
    /// places whose token count differs between a marking and its
    /// successor under `t`.
    pub fn changed_places(&self, t: TransitionId) -> &[(PlaceId, i64)] {
        &self.changed[t.index()]
    }

    /// Fires `t` by applying its net delta to `m` in place, without
    /// checking enabledness. Unlike [`PetriNet::fire_unchecked`] no
    /// marking is cloned: the cost is `O(changed places)`.
    ///
    /// Because only *net* deltas are applied, places `t` consumes from
    /// and refills with equal weight (self-loops) are not touched at
    /// all: firing a disabled self-loop transition is **not** detected
    /// here (unlike `fire_unchecked`, whose per-arc subtraction would
    /// panic). Callers must only fire enabled transitions; the schedule
    /// search guarantees this via the ECS enabling check.
    ///
    /// # Panics
    /// Panics if a net delta underflows a token count (a sufficient but
    /// not necessary symptom of `t` being disabled at `m`).
    pub fn fire_into(&self, t: TransitionId, m: &mut Marking) {
        self.fire_into_slice(t, m.as_mut_slice());
    }

    /// Slice counterpart of [`PetriNet::fire_into`] for callers working on
    /// raw count buffers. The same self-loop caveat applies.
    ///
    /// # Panics
    /// Panics if a net delta underflows a token count.
    pub fn fire_into_slice(&self, t: TransitionId, counts: &mut [u32]) {
        for &(p, delta) in &self.changed[t.index()] {
            crate::marking::apply_delta(counts, p, delta);
        }
    }

    /// Reverts a previous [`PetriNet::fire_into`] of `t` on `m` in place.
    /// The self-loop caveat of [`PetriNet::fire_into`] applies here too.
    ///
    /// # Panics
    /// Panics if a net delta underflows a token count (a sufficient but
    /// not necessary symptom of `m` not being a successor marking of `t`).
    pub fn unfire_into(&self, t: TransitionId, m: &mut Marking) {
        self.unfire_into_slice(t, m.as_mut_slice());
    }

    /// Slice counterpart of [`PetriNet::unfire_into`].
    ///
    /// # Panics
    /// Panics if a net delta underflows a token count.
    pub fn unfire_into_slice(&self, t: TransitionId, counts: &mut [u32]) {
        for &(p, delta) in &self.changed[t.index()] {
            crate::marking::apply_delta(counts, p, -delta);
        }
    }

    /// Fires a sequence of transitions starting from `m`.
    ///
    /// # Errors
    /// Returns [`NetError::NotEnabled`] at the first transition of the
    /// sequence that is not enabled.
    pub fn fire_sequence(&self, seq: &[TransitionId], m: &Marking) -> Result<Marking> {
        let mut cur = m.clone();
        for &t in seq {
            cur = self.fire(t, &cur)?;
        }
        Ok(cur)
    }

    /// Uncontrollable source transitions of the net, in identifier order.
    pub fn uncontrollable_sources(&self) -> Vec<TransitionId> {
        self.transition_ids()
            .filter(|t| self.transition(*t).kind == TransitionKind::UncontrollableSource)
            .collect()
    }

    /// Controllable source transitions of the net, in identifier order.
    pub fn controllable_sources(&self) -> Vec<TransitionId> {
        self.transition_ids()
            .filter(|t| self.transition(*t).kind == TransitionKind::ControllableSource)
            .collect()
    }
}

/// Incremental builder for [`PetriNet`].
///
/// ```
/// use qss_petri::{NetBuilder, TransitionKind};
/// let mut b = NetBuilder::new("demo");
/// let p = b.place("p", 1);
/// let t = b.transition("t", TransitionKind::Internal);
/// b.arc_p2t(p, t, 1);
/// let net = b.build().unwrap();
/// assert_eq!(net.num_places(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetBuilder {
    name: String,
    places: Vec<Place>,
    transitions: Vec<Transition>,
    pre: Vec<Vec<(PlaceId, u32)>>,
    post: Vec<Vec<(PlaceId, u32)>>,
    zero_weight: Vec<String>,
}

impl NetBuilder {
    /// Creates an empty builder for a net called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds an internal place with `initial` tokens and returns its id.
    pub fn place(&mut self, name: impl Into<String>, initial: u32) -> PlaceId {
        self.place_with_kind(name, initial, PlaceKind::Internal, None)
    }

    /// Adds a place with an explicit kind and optional bound.
    pub fn place_with_kind(
        &mut self,
        name: impl Into<String>,
        initial: u32,
        kind: PlaceKind,
        bound: Option<u32>,
    ) -> PlaceId {
        let id = PlaceId::new(self.places.len());
        self.places.push(Place {
            name: name.into(),
            kind,
            initial,
            bound,
        });
        id
    }

    /// Adds a transition of the given kind and returns its id.
    pub fn transition(&mut self, name: impl Into<String>, kind: TransitionKind) -> TransitionId {
        self.transition_full(name, kind, Vec::new(), None, None, None)
    }

    /// Adds a transition with full metadata.
    #[allow(clippy::too_many_arguments)]
    pub fn transition_full(
        &mut self,
        name: impl Into<String>,
        kind: TransitionKind,
        code: Vec<String>,
        guard: Option<String>,
        branch: Option<bool>,
        process: Option<String>,
    ) -> TransitionId {
        let id = TransitionId::new(self.transitions.len());
        self.transitions.push(Transition {
            name: name.into(),
            kind,
            code,
            guard,
            branch,
            process,
            priority: None,
        });
        self.pre.push(Vec::new());
        self.post.push(Vec::new());
        id
    }

    /// Adds an arc from place `p` to transition `t` with weight `w`.
    ///
    /// If an arc between the same pair already exists its weight is
    /// increased by `w`.
    pub fn arc_p2t(&mut self, p: PlaceId, t: TransitionId, w: u32) {
        if w == 0 {
            self.zero_weight.push(format!("{p} -> {t}"));
            return;
        }
        let list = &mut self.pre[t.index()];
        if let Some(entry) = list.iter_mut().find(|(q, _)| *q == p) {
            entry.1 += w;
        } else {
            list.push((p, w));
        }
    }

    /// Adds an arc from transition `t` to place `p` with weight `w`.
    ///
    /// If an arc between the same pair already exists its weight is
    /// increased by `w`.
    pub fn arc_t2p(&mut self, t: TransitionId, p: PlaceId, w: u32) {
        if w == 0 {
            self.zero_weight.push(format!("{t} -> {p}"));
            return;
        }
        let list = &mut self.post[t.index()];
        if let Some(entry) = list.iter_mut().find(|(q, _)| *q == p) {
            entry.1 += w;
        } else {
            list.push((p, w));
        }
    }

    /// Overrides the metadata of an existing transition.
    ///
    /// # Panics
    /// Panics if `t` was not created by this builder.
    pub fn set_transition_meta(
        &mut self,
        t: TransitionId,
        code: Vec<String>,
        guard: Option<String>,
        branch: Option<bool>,
        process: Option<String>,
    ) {
        let tr = &mut self.transitions[t.index()];
        tr.code = code;
        tr.guard = guard;
        tr.branch = branch;
        tr.process = process;
    }

    /// Overrides the scheduling priority of an existing transition.
    ///
    /// # Panics
    /// Panics if `t` was not created by this builder.
    pub fn set_transition_priority(&mut self, t: TransitionId, priority: Option<u32>) {
        self.transitions[t.index()].priority = priority;
    }

    /// Overrides the bound of an existing place.
    ///
    /// # Panics
    /// Panics if `p` was not created by this builder.
    pub fn set_place_bound(&mut self, p: PlaceId, bound: Option<u32>) {
        self.places[p.index()].bound = bound;
    }

    /// Overrides the kind of an existing place.
    ///
    /// # Panics
    /// Panics if `p` was not created by this builder.
    pub fn set_place_kind(&mut self, p: PlaceId, kind: PlaceKind) {
        self.places[p.index()].kind = kind;
    }

    /// Number of places added so far.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions added so far.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Finalizes the net.
    ///
    /// # Errors
    /// Returns an error if any arc was declared with weight zero or if two
    /// places (or two transitions) share the same name.
    pub fn build(self) -> Result<PetriNet> {
        if let Some(arc) = self.zero_weight.first() {
            return Err(NetError::ZeroWeightArc { arc: arc.clone() });
        }
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for p in &self.places {
            if seen.insert(p.name.as_str(), ()).is_some() {
                return Err(NetError::DuplicateName(p.name.clone()));
            }
        }
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for t in &self.transitions {
            if seen.insert(t.name.as_str(), ()).is_some() {
                return Err(NetError::DuplicateName(t.name.clone()));
            }
        }
        let mut place_post = vec![Vec::new(); self.places.len()];
        let mut place_pre = vec![Vec::new(); self.places.len()];
        for (ti, inputs) in self.pre.iter().enumerate() {
            for (p, _) in inputs {
                place_post[p.index()].push(TransitionId::new(ti));
            }
        }
        for (ti, outputs) in self.post.iter().enumerate() {
            for (p, _) in outputs {
                place_pre[p.index()].push(TransitionId::new(ti));
            }
        }
        let changed = self
            .pre
            .iter()
            .zip(self.post.iter())
            .map(|(inputs, outputs)| {
                let mut delta: std::collections::BTreeMap<PlaceId, i64> =
                    std::collections::BTreeMap::new();
                for (p, w) in inputs {
                    *delta.entry(*p).or_insert(0) -= *w as i64;
                }
                for (p, w) in outputs {
                    *delta.entry(*p).or_insert(0) += *w as i64;
                }
                delta.into_iter().filter(|(_, d)| *d != 0).collect()
            })
            .collect();
        Ok(PetriNet {
            name: self.name,
            places: self.places,
            transitions: self.transitions,
            pre: self.pre,
            post: self.post,
            place_post,
            place_pre,
            changed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_net() -> PetriNet {
        // a -> p1 -> b -> p2 -> c (cycle back to p0)
        let mut b = NetBuilder::new("simple");
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        let ta = b.transition("a", TransitionKind::Internal);
        let tb = b.transition("b", TransitionKind::Internal);
        b.arc_p2t(p0, ta, 1);
        b.arc_t2p(ta, p1, 1);
        b.arc_p2t(p1, tb, 1);
        b.arc_t2p(tb, p0, 1);
        b.build().unwrap()
    }

    #[test]
    fn build_and_query_structure() {
        let net = simple_net();
        assert_eq!(net.num_places(), 2);
        assert_eq!(net.num_transitions(), 2);
        let p0 = net.place_by_name("p0").unwrap();
        let a = net.transition_by_name("a").unwrap();
        assert_eq!(net.weight_p2t(p0, a), 1);
        assert_eq!(net.weight_t2p(a, p0), 0);
        assert_eq!(net.place_successors(p0), &[a]);
    }

    #[test]
    fn firing_moves_token() {
        let net = simple_net();
        let a = net.transition_by_name("a").unwrap();
        let b = net.transition_by_name("b").unwrap();
        let m0 = net.initial_marking();
        assert!(net.is_enabled(a, &m0));
        assert!(!net.is_enabled(b, &m0));
        let m1 = net.fire(a, &m0).unwrap();
        assert!(!net.is_enabled(a, &m1));
        assert!(net.is_enabled(b, &m1));
        let m2 = net.fire(b, &m1).unwrap();
        assert_eq!(m2, m0);
    }

    #[test]
    fn firing_disabled_transition_fails() {
        let net = simple_net();
        let b = net.transition_by_name("b").unwrap();
        let m0 = net.initial_marking();
        assert_eq!(net.fire(b, &m0), Err(NetError::NotEnabled(b)));
    }

    #[test]
    fn fire_sequence_round_trip() {
        let net = simple_net();
        let a = net.transition_by_name("a").unwrap();
        let b = net.transition_by_name("b").unwrap();
        let m0 = net.initial_marking();
        let m = net.fire_sequence(&[a, b, a, b], &m0).unwrap();
        assert_eq!(m, m0);
        assert!(net.fire_sequence(&[b], &m0).is_err());
    }

    #[test]
    fn weighted_arcs_accumulate() {
        let mut b = NetBuilder::new("weighted");
        let p = b.place("p", 0);
        let t = b.transition("t", TransitionKind::Internal);
        b.arc_t2p(t, p, 2);
        b.arc_t2p(t, p, 3);
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        let p = net.place_by_name("p").unwrap();
        assert_eq!(net.weight_t2p(t, p), 5);
    }

    #[test]
    fn zero_weight_arc_is_rejected() {
        let mut b = NetBuilder::new("zero");
        let p = b.place("p", 0);
        let t = b.transition("t", TransitionKind::Internal);
        b.arc_p2t(p, t, 0);
        assert!(matches!(b.build(), Err(NetError::ZeroWeightArc { .. })));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = NetBuilder::new("dup");
        b.place("p", 0);
        b.place("p", 0);
        assert!(matches!(b.build(), Err(NetError::DuplicateName(_))));
    }

    #[test]
    fn source_classification() {
        let mut b = NetBuilder::new("src");
        let p = b.place("p", 0);
        let src = b.transition("in", TransitionKind::UncontrollableSource);
        let sink = b.transition("out", TransitionKind::Sink);
        b.arc_t2p(src, p, 1);
        b.arc_p2t(p, sink, 1);
        let net = b.build().unwrap();
        let src = net.transition_by_name("in").unwrap();
        let sink = net.transition_by_name("out").unwrap();
        assert!(net.is_structural_source(src));
        assert!(!net.is_structural_source(sink));
        assert_eq!(net.uncontrollable_sources(), vec![src]);
        assert!(net.controllable_sources().is_empty());
    }

    #[test]
    fn changed_places_elide_zero_deltas() {
        // t consumes 2 and produces 2 into the same place: net delta 0.
        let mut b = NetBuilder::new("selfloop");
        let p = b.place("p", 2);
        let q = b.place("q", 0);
        let t = b.transition("t", TransitionKind::Internal);
        b.arc_p2t(p, t, 2);
        b.arc_t2p(t, p, 2);
        b.arc_t2p(t, q, 3);
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        let q = net.place_by_name("q").unwrap();
        assert_eq!(net.changed_places(t), &[(q, 3)]);
    }

    #[test]
    fn fire_into_matches_fire_unchecked() {
        let net = simple_net();
        let a = net.transition_by_name("a").unwrap();
        let b = net.transition_by_name("b").unwrap();
        let m0 = net.initial_marking();
        let mut scratch = m0.clone();
        net.fire_into(a, &mut scratch);
        assert_eq!(scratch, net.fire_unchecked(a, &m0));
        net.fire_into(b, &mut scratch);
        assert_eq!(scratch, m0);
        // unfire_into reverts in reverse order.
        net.fire_into(a, &mut scratch);
        net.unfire_into(a, &mut scratch);
        assert_eq!(scratch, m0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn fire_into_disabled_underflows() {
        let net = simple_net();
        let b = net.transition_by_name("b").unwrap();
        let mut m = net.initial_marking();
        net.fire_into(b, &mut m);
    }

    #[test]
    fn multi_weight_enabling() {
        let mut b = NetBuilder::new("multi");
        let p = b.place("p", 1);
        let t = b.transition("t", TransitionKind::Internal);
        b.arc_p2t(p, t, 2);
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        let p = net.place_by_name("p").unwrap();
        let mut m = net.initial_marking();
        assert!(!net.is_enabled(t, &m));
        m.add_tokens(p, 1);
        assert!(net.is_enabled(t, &m));
    }
}
