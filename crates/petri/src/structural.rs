//! Structural static analysis: place bounds, siphons/traps, dead
//! transitions and choice classification.
//!
//! Everything in this module is *structural* — proved from the incidence
//! matrix and the initial marking alone, without enumerating reachable
//! markings — so it runs as a pre-pass before any schedule search:
//!
//! * **Place bounds.** A place covered by a sur-invariant (`y ≥ 0`,
//!   `yᵀ·C ≤ 0`, `y[p] > 0`) can never hold more than `(y·M0)/y[p]`
//!   tokens, under *any* firing sequence. The analyzer computes the
//!   generator cover once over all transitions (sound bounds against full
//!   reachability) and once over the internal transitions only (sources
//!   excluded): a place missed by a *complete* internal cover is provably
//!   unbounded even without the environment pumping it — the
//!   `QSS-E002` condition.
//! * **Dead transitions.** A conservative forward fixed point over
//!   "potentially markable places / potentially fireable transitions":
//!   a transition outside the fixed point can never fire, from any
//!   reachable marking. The over-approximation ignores arc weights, so a
//!   transition *inside* the fixed point may still be dead — the analyzer
//!   only ever claims death it can prove.
//! * **Siphons and traps.** Bounded exhaustive enumeration of minimal
//!   siphons (`•S ⊆ S•`: once empty, empty forever) and traps
//!   (`S• ⊆ •S`: once marked, marked forever) with a typed
//!   [`EnumerationStatus::GaveUp`] result when the net exceeds the
//!   enumeration limits. An initially unmarked siphon permanently
//!   disables every transition consuming from it.
//! * **Classification.** Structural sources/sinks and equal-conflict
//!   (extended free-choice) violations: places whose successor
//!   transitions have differing presets, i.e. choices the scheduler
//!   cannot resolve uniformly.

use crate::ids::{PlaceId, TransitionId};
use crate::invariant::{
    p_invariant_basis_dense, p_invariant_elimination, surinvariant_cover, PInvariant,
};
use crate::net::{PetriNet, TransitionKind};
use serde::{Deserialize, Serialize};

/// Resource limits for the structural analyzer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructuralLimits {
    /// Cap on intermediate Farkas rows, shared with
    /// [`crate::t_invariant_basis`]'s discipline: hitting it degrades the
    /// affected analyses to "incomplete" instead of aborting.
    pub row_cap: usize,
    /// Siphons/traps are enumerated exhaustively only for nets with at
    /// most this many places; larger nets report
    /// [`EnumerationStatus::GaveUp`] without attempting the `2^places`
    /// sweep.
    pub max_siphon_places: usize,
    /// Cap on reported minimal siphons/traps; exceeding it truncates the
    /// list and reports [`EnumerationStatus::GaveUp`].
    pub max_components: usize,
}

impl Default for StructuralLimits {
    fn default() -> Self {
        StructuralLimits {
            row_cap: 50_000,
            max_siphon_places: 14,
            max_components: 64,
        }
    }
}

/// Whether a bounded enumeration ran to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnumerationStatus {
    /// Every candidate was examined; the component list is exhaustive.
    Complete,
    /// A resource limit stopped the enumeration after examining
    /// `examined` candidates. The reported components are valid but the
    /// list is not exhaustive, so their *absence* proves nothing.
    GaveUp {
        /// Number of candidate place sets examined before giving up.
        examined: u64,
    },
}

impl EnumerationStatus {
    /// `true` if the enumeration examined every candidate.
    pub fn is_complete(&self) -> bool {
        matches!(self, EnumerationStatus::Complete)
    }
}

/// One minimal siphon or trap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaceSet {
    /// The places of the component, in place-id order.
    pub places: Vec<PlaceId>,
    /// `true` if some place of the component carries an initial token.
    pub initially_marked: bool,
}

/// The minimal siphons or traps of a net, found by bounded enumeration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentEnumeration {
    /// The minimal components found, ordered by place-id sets.
    pub components: Vec<PlaceSet>,
    /// Whether the enumeration was exhaustive.
    pub status: EnumerationStatus,
}

/// Structural facts about one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaceFacts {
    /// Proven bound on the place's token count under *any* firing
    /// sequence (from a covering sur-invariant over all transitions);
    /// `None` when no cover proves one — which does not imply the place
    /// is unbounded.
    pub bound: Option<u32>,
    /// `true` when the place is *provably* structurally unbounded under
    /// the internal (non-source) transitions alone: the complete
    /// sur-invariant cover of the source-stripped net misses it. Only
    /// ever set when that elimination ran to completion.
    pub internally_unbounded: bool,
}

/// The result of the structural pre-pass over one net.
///
/// All vectors are ordered by id, so serializing a report is
/// deterministic for a given net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructuralReport {
    /// Minimal-support P-invariant basis (`yᵀ·C = 0`).
    pub p_invariants: Vec<PInvariant>,
    /// `true` when the P-invariant elimination examined every row — the
    /// basis is exhaustive.
    pub p_invariants_complete: bool,
    /// Per-place facts, indexed by place.
    pub places: Vec<PlaceFacts>,
    /// `true` when the full-net sur-invariant cover (the source of
    /// [`PlaceFacts::bound`]) ran to completion.
    pub bounds_complete: bool,
    /// `true` when the internal (source-stripped) cover ran to
    /// completion; only then can `internally_unbounded` be set.
    pub internal_complete: bool,
    /// The maximum proven bound over all places, present only when
    /// *every* place has a proven bound — the value a narrow-cell marking
    /// slab (u8/u16 rows) would size its cells by.
    pub max_marking_bound: Option<u32>,
    /// Transitions that provably can never fire, in id order.
    pub dead_transitions: Vec<TransitionId>,
    /// Places that provably can never carry a token, in id order.
    pub never_marked_places: Vec<PlaceId>,
    /// Transitions with an empty preset (structural sources), in id order.
    pub source_transitions: Vec<TransitionId>,
    /// Transitions with an empty postset (structural sinks), in id order.
    pub sink_transitions: Vec<TransitionId>,
    /// Places whose successor transitions have differing presets —
    /// equal-conflict (extended free-choice) violations, in id order.
    pub free_choice_violations: Vec<PlaceId>,
    /// Minimal siphons (bounded enumeration).
    pub siphons: ComponentEnumeration,
    /// Minimal traps (bounded enumeration).
    pub traps: ComponentEnumeration,
}

impl StructuralReport {
    /// Proven bound of place `p`, if any.
    pub fn bound(&self, p: PlaceId) -> Option<u32> {
        self.places[p.index()].bound
    }

    /// `true` if transition `t` provably can never fire.
    pub fn is_dead(&self, t: TransitionId) -> bool {
        self.dead_transitions.contains(&t)
    }

    /// Places proven structurally unbounded under internal transitions
    /// alone, in id order.
    pub fn unbounded_places(&self) -> Vec<PlaceId> {
        self.places
            .iter()
            .enumerate()
            .filter(|(_, f)| f.internally_unbounded)
            .map(|(i, _)| PlaceId::new(i))
            .collect()
    }

    /// `true` when the net has no equal-conflict violations.
    pub fn is_free_choice(&self) -> bool {
        self.free_choice_violations.is_empty()
    }

    /// The minimal siphons that carry no initial token — each one
    /// permanently disables every transition consuming from it.
    pub fn unmarked_siphons(&self) -> Vec<&PlaceSet> {
        self.siphons
            .components
            .iter()
            .filter(|s| !s.initially_marked)
            .collect()
    }
}

/// Runs the structural pre-pass on `net` under `limits`.
pub fn structural_report(net: &PetriNet, limits: &StructuralLimits) -> StructuralReport {
    let (p_invariants, p_invariants_complete) = p_invariant_elimination(net, limits.row_cap);
    build_report(net, limits, p_invariants, p_invariants_complete)
}

/// [`structural_report`] with the P-invariant basis computed by the dense
/// oracle ([`p_invariant_basis_dense`]) instead of the sparse dual.
/// Retained for differential testing and benchmarking; do not use it in
/// production paths.
pub fn structural_report_dense(net: &PetriNet, limits: &StructuralLimits) -> StructuralReport {
    let p_invariants = p_invariant_basis_dense(net, limits.row_cap);
    build_report(net, limits, p_invariants, true)
}

fn build_report(
    net: &PetriNet,
    limits: &StructuralLimits,
    p_invariants: Vec<PInvariant>,
    p_invariants_complete: bool,
) -> StructuralReport {
    let np = net.num_places();
    let initial = net.initial_marking();
    let m0 = initial.as_slice();

    // Sur-invariant covers: all transitions (sound bounds against any
    // firing) and internal transitions only (provable unboundedness with
    // the environment factored out).
    let all: Vec<TransitionId> = net.transition_ids().collect();
    let internal: Vec<TransitionId> = net
        .transition_ids()
        .filter(|&t| {
            matches!(
                net.transition(t).kind,
                TransitionKind::Internal | TransitionKind::Sink
            )
        })
        .collect();
    let (full_cover, bounds_complete) = surinvariant_cover(net, &all, limits.row_cap);
    let (internal_cover, internal_complete) = surinvariant_cover(net, &internal, limits.row_cap);

    let mut places = Vec::with_capacity(np);
    for p in 0..np {
        let bound = full_cover
            .iter()
            .filter(|y| y[p] > 0)
            .map(|y| {
                let conserved: u64 = y.iter().zip(m0).map(|(&w, &m)| w * m as u64).sum();
                u32::try_from(conserved / y[p]).unwrap_or(u32::MAX)
            })
            .min();
        let internally_unbounded = internal_complete && internal_cover.iter().all(|y| y[p] == 0);
        places.push(PlaceFacts {
            bound,
            internally_unbounded,
        });
    }
    let max_marking_bound = places
        .iter()
        .map(|f| f.bound)
        .collect::<Option<Vec<u32>>>()
        .map(|bounds| bounds.into_iter().max().unwrap_or(0));

    let (dead_transitions, never_marked_places) = dead_fixpoint(net);

    let source_transitions: Vec<TransitionId> = net
        .transition_ids()
        .filter(|&t| net.preset(t).is_empty())
        .collect();
    let sink_transitions: Vec<TransitionId> = net
        .transition_ids()
        .filter(|&t| net.postset(t).is_empty())
        .collect();

    let sorted_preset = |t: TransitionId| {
        let mut arcs: Vec<(PlaceId, u32)> = net.preset(t).to_vec();
        arcs.sort_unstable();
        arcs
    };
    let free_choice_violations: Vec<PlaceId> = net
        .place_ids()
        .filter(|&p| {
            let succs = net.place_successors(p);
            succs
                .windows(2)
                .any(|w| sorted_preset(w[0]) != sorted_preset(w[1]))
        })
        .collect();

    let siphons = enumerate_components(net, limits, ComponentKind::Siphon);
    let traps = enumerate_components(net, limits, ComponentKind::Trap);

    StructuralReport {
        p_invariants,
        p_invariants_complete,
        places,
        bounds_complete,
        internal_complete,
        max_marking_bound,
        dead_transitions,
        never_marked_places,
        source_transitions,
        sink_transitions,
        free_choice_violations,
        siphons,
        traps,
    }
}

/// The conservative "potentially fireable" forward fixed point: returns
/// the provably dead transitions and the provably never-marked places.
fn dead_fixpoint(net: &PetriNet) -> (Vec<TransitionId>, Vec<PlaceId>) {
    let mut markable: Vec<bool> = net
        .initial_marking()
        .as_slice()
        .iter()
        .map(|&m| m > 0)
        .collect();
    let mut fireable = vec![false; net.num_transitions()];
    let mut changed = true;
    while changed {
        changed = false;
        for t in net.transition_ids() {
            if fireable[t.index()] {
                continue;
            }
            if net.preset(t).iter().all(|&(p, _)| markable[p.index()]) {
                fireable[t.index()] = true;
                changed = true;
                for &(p, _) in net.postset(t) {
                    markable[p.index()] = true;
                }
            }
        }
    }
    let dead = net
        .transition_ids()
        .filter(|&t| !fireable[t.index()])
        .collect();
    let never_marked = net.place_ids().filter(|&p| !markable[p.index()]).collect();
    (dead, never_marked)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ComponentKind {
    Siphon,
    Trap,
}

/// Exhaustively enumerates the minimal siphons or traps of `net`, bounded
/// by `limits`: nets with more than `max_siphon_places` places, or with
/// more than `max_components` minimal components, report
/// [`EnumerationStatus::GaveUp`].
fn enumerate_components(
    net: &PetriNet,
    limits: &StructuralLimits,
    kind: ComponentKind,
) -> ComponentEnumeration {
    let np = net.num_places();
    if np > limits.max_siphon_places {
        return ComponentEnumeration {
            components: Vec::new(),
            status: EnumerationStatus::GaveUp { examined: 0 },
        };
    }

    // Precompute per-transition preset/postset place masks.
    let mut pre = vec![0u32; net.num_transitions()];
    let mut post = vec![0u32; net.num_transitions()];
    for t in net.transition_ids() {
        for &(p, _) in net.preset(t) {
            pre[t.index()] |= 1 << p.index();
        }
        for &(p, _) in net.postset(t) {
            post[t.index()] |= 1 << p.index();
        }
    }
    let m0 = net.initial_marking();
    let marked_mask: u32 = m0
        .as_slice()
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m > 0)
        .fold(0, |acc, (i, _)| acc | 1 << i);

    // A set S is a siphon when every transition producing into S also
    // consumes from S, and a trap when every transition consuming from S
    // also produces into S. Masks are visited in ascending popcount
    // order, so a candidate is minimal exactly when no kept component is
    // a subset of it.
    let is_component = |mask: u32| -> bool {
        (0..net.num_transitions()).all(|t| match kind {
            ComponentKind::Siphon => post[t] & mask == 0 || pre[t] & mask != 0,
            ComponentKind::Trap => pre[t] & mask == 0 || post[t] & mask != 0,
        })
    };

    let mut masks: Vec<u32> = (1u32..1 << np).collect();
    masks.sort_by_key(|m| m.count_ones());
    let mut kept: Vec<u32> = Vec::new();
    let mut examined: u64 = 0;
    let mut gave_up = false;
    for mask in masks {
        examined += 1;
        if kept.iter().any(|&k| k | mask == mask) {
            continue; // a smaller component is contained: not minimal
        }
        if !is_component(mask) {
            continue;
        }
        if kept.len() == limits.max_components {
            gave_up = true;
            break;
        }
        kept.push(mask);
    }

    let components = kept
        .iter()
        .map(|&mask| PlaceSet {
            places: (0..np)
                .filter(|&p| mask & (1 << p) != 0)
                .map(PlaceId::new)
                .collect(),
            initially_marked: mask & marked_mask != 0,
        })
        .collect();
    ComponentEnumeration {
        components,
        status: if gave_up {
            EnumerationStatus::GaveUp { examined }
        } else {
            EnumerationStatus::Complete
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;
    use crate::reach::{ReachabilityGraph, ReachabilityLimits};

    /// src -> buf -> cons cycle through an idle place.
    fn producer_consumer() -> PetriNet {
        let mut b = NetBuilder::new("pc");
        let buf = b.place("buf", 0);
        let idle = b.place("idle", 1);
        let src = b.transition("produce", TransitionKind::UncontrollableSource);
        let cons = b.transition("consume", TransitionKind::Internal);
        b.arc_t2p(src, buf, 1);
        b.arc_p2t(buf, cons, 1);
        b.arc_p2t(idle, cons, 1);
        b.arc_t2p(cons, idle, 1);
        b.build().unwrap()
    }

    #[test]
    fn report_on_producer_consumer() {
        let net = producer_consumer();
        let report = structural_report(&net, &StructuralLimits::default());
        let buf = net.place_by_name("buf").unwrap();
        let idle = net.place_by_name("idle").unwrap();
        // `idle` is conserved; `buf` is pumped by the source, so it has no
        // full-net bound but is internally bounded.
        assert_eq!(report.bound(idle), Some(1));
        assert_eq!(report.bound(buf), None);
        assert!(report.bounds_complete);
        assert!(report.internal_complete);
        assert!(!report.places[buf.index()].internally_unbounded);
        assert_eq!(report.max_marking_bound, None);
        assert!(report.dead_transitions.is_empty());
        assert!(report.never_marked_places.is_empty());
        assert_eq!(report.source_transitions.len(), 1);
        assert!(report.is_free_choice());
        assert!(report.siphons.status.is_complete());
        // {idle} is both a minimal siphon and a minimal trap, and marked.
        assert!(report
            .siphons
            .components
            .iter()
            .any(|s| s.places == vec![idle] && s.initially_marked));
        assert!(report.unmarked_siphons().is_empty());
    }

    #[test]
    fn dead_transition_and_unmarked_siphon_detected() {
        // Two processes waiting on each other's channel, no tokens, no
        // sources: everything is dead and {a, b} is an unmarked siphon.
        let mut bld = NetBuilder::new("deadlock");
        let a = bld.place("a", 0);
        let b = bld.place("b", 0);
        let t1 = bld.transition("t1", TransitionKind::Internal);
        let t2 = bld.transition("t2", TransitionKind::Internal);
        bld.arc_p2t(a, t1, 1);
        bld.arc_t2p(t1, b, 1);
        bld.arc_p2t(b, t2, 1);
        bld.arc_t2p(t2, a, 1);
        let net = bld.build().unwrap();
        let report = structural_report(&net, &StructuralLimits::default());
        assert_eq!(report.dead_transitions.len(), 2);
        assert_eq!(report.never_marked_places.len(), 2);
        let unmarked = report.unmarked_siphons();
        // {a, b} is the (only) minimal siphon, and it carries no token.
        assert_eq!(unmarked.len(), 1);
        assert_eq!(unmarked[0].places.len(), 2);
    }

    #[test]
    fn internal_pump_is_provably_unbounded() {
        // An internal transition that nets +1 token on `p` per firing.
        let mut bld = NetBuilder::new("pump");
        let p = bld.place("p", 1);
        let t = bld.transition("t", TransitionKind::Internal);
        bld.arc_p2t(p, t, 1);
        bld.arc_t2p(t, p, 2);
        let net = bld.build().unwrap();
        let report = structural_report(&net, &StructuralLimits::default());
        let p = net.place_by_name("p").unwrap();
        assert!(report.internal_complete);
        assert!(report.places[p.index()].internally_unbounded);
        assert_eq!(report.unbounded_places(), vec![p]);
        assert_eq!(report.bound(p), None);
    }

    #[test]
    fn fully_bounded_net_records_max_marking_bound() {
        // A conservative choice cycle: both places covered, max bound 1.
        let mut bld = NetBuilder::new("cycle");
        let idle = bld.place("idle", 1);
        let mid = bld.place("mid", 0);
        let go = bld.transition("go", TransitionKind::Internal);
        let back = bld.transition("back", TransitionKind::Internal);
        bld.arc_p2t(idle, go, 1);
        bld.arc_t2p(go, mid, 1);
        bld.arc_p2t(mid, back, 1);
        bld.arc_t2p(back, idle, 1);
        let net = bld.build().unwrap();
        let report = structural_report(&net, &StructuralLimits::default());
        assert_eq!(report.max_marking_bound, Some(1));
        for p in net.place_ids() {
            assert_eq!(report.bound(p), Some(1));
        }
        // Sanity: the proven bounds hold on the exhaustive reachability
        // graph.
        let graph = ReachabilityGraph::explore(&net, &ReachabilityLimits::default()).unwrap();
        for (p, peak) in graph.place_peaks().iter().enumerate() {
            assert!(*peak <= report.bound(PlaceId::new(p)).unwrap());
        }
    }

    #[test]
    fn free_choice_violation_flagged() {
        // `shared` feeds t1 and t2, but t2 also needs `extra`: the
        // conflict is not equal-preset.
        let mut bld = NetBuilder::new("nfc");
        let shared = bld.place("shared", 1);
        let extra = bld.place("extra", 1);
        let t1 = bld.transition("t1", TransitionKind::Internal);
        let t2 = bld.transition("t2", TransitionKind::Internal);
        bld.arc_p2t(shared, t1, 1);
        bld.arc_p2t(shared, t2, 1);
        bld.arc_p2t(extra, t2, 1);
        let net = bld.build().unwrap();
        let report = structural_report(&net, &StructuralLimits::default());
        let shared = net.place_by_name("shared").unwrap();
        assert_eq!(report.free_choice_violations, vec![shared]);
        assert!(!report.is_free_choice());
    }

    #[test]
    fn wide_net_gives_up_on_siphons_with_typed_status() {
        let mut bld = NetBuilder::new("wide");
        for i in 0..20 {
            bld.place(format!("p{i}"), 0);
        }
        let net = bld.build().unwrap();
        let report = structural_report(&net, &StructuralLimits::default());
        assert_eq!(
            report.siphons.status,
            EnumerationStatus::GaveUp { examined: 0 }
        );
        assert!(report.siphons.components.is_empty());
    }

    #[test]
    fn dense_report_oracle_agrees() {
        let net = producer_consumer();
        let limits = StructuralLimits::default();
        assert_eq!(
            structural_report(&net, &limits),
            structural_report_dense(&net, &limits)
        );
    }
}
