//! Error types for the Petri-net kernel.

use crate::{PlaceId, TransitionId};
use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetError>;

/// Errors produced while building or analysing a Petri net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A place identifier does not belong to the net.
    UnknownPlace(PlaceId),
    /// A transition identifier does not belong to the net.
    UnknownTransition(TransitionId),
    /// An arc was declared with weight zero.
    ZeroWeightArc {
        /// Human readable description of the offending arc.
        arc: String,
    },
    /// Attempted to fire a transition that is not enabled.
    NotEnabled(TransitionId),
    /// Two places or transitions share the same name.
    DuplicateName(String),
    /// The net violates a structural assumption (e.g. not Unique-Choice).
    Structural(String),
    /// A reachability exploration exceeded its configured limits.
    LimitExceeded(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownPlace(p) => write!(f, "unknown place {p}"),
            NetError::UnknownTransition(t) => write!(f, "unknown transition {t}"),
            NetError::ZeroWeightArc { arc } => write!(f, "arc {arc} has zero weight"),
            NetError::NotEnabled(t) => write!(f, "transition {t} is not enabled"),
            NetError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            NetError::Structural(msg) => write!(f, "structural error: {msg}"),
            NetError::LimitExceeded(msg) => write!(f, "exploration limit exceeded: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            NetError::UnknownPlace(PlaceId::new(1)),
            NetError::UnknownTransition(TransitionId::new(2)),
            NetError::ZeroWeightArc {
                arc: "p0 -> t1".into(),
            },
            NetError::NotEnabled(TransitionId::new(0)),
            NetError::DuplicateName("x".into()),
            NetError::Structural("bad".into()),
            NetError::LimitExceeded("too many nodes".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
