//! Hash-consed marking storage on a flat fixed-width slab.
//!
//! A [`MarkingStore`] is an append-only arena that *interns* markings:
//! every distinct token vector is stored exactly once and identified by a
//! compact [`MarkingId`] handle. Equality of interned markings is equality
//! of the handles — an integer comparison — and hashing a handle hashes
//! four bytes instead of a whole token vector. The reachability explorer,
//! the EP schedule search and schedule graphs all store `MarkingId`s and
//! resolve them against one store, so a marking visited a thousand times
//! costs one slab slot.
//!
//! # Flat-slab layout
//!
//! All rows live in **one** backing `Vec<u32>` with a fixed *stride* (the
//! place count of the net, fixed by the first interned marking): row `i`
//! occupies `slab[i·stride .. (i+1)·stride]`. There is no per-marking
//! `Vec`, so interning allocates nothing beyond amortized slab growth, the
//! rows are contiguous in id order (cache-friendly scans, trivially
//! snapshot-able by cloning one vector), and [`MarkingStore::resolve`]
//! hands out `&[u32]` row slices.
//!
//! Successor derivation ([`MarkingStore::fire`] / [`MarkingStore::unfire`])
//! uses a *reserve-then-commit* protocol: the source row is copied to the
//! slab tail, the transition's net delta and the incremental hash update
//! are applied **in the tail**, and the candidate is then either rolled
//! back (`truncate`, when an equal row already exists) or committed by
//! linking it into the dedup index — zero temporary allocation either way.
//!
//! # Handle discipline
//!
//! Ids are dense (`0..len()`) in interning order. A handle is only
//! meaningful together with the store that produced it; the caller is
//! responsible for not mixing handles across stores (the same discipline
//! [`Marking`](crate::Marking) demands for nets). Debug builds assert that resolved ids
//! are in range, which catches handles minted by a foreign store with a
//! different stride or fewer rows; equal-stride foreign handles are
//! indistinguishable by construction.
//!
//! Markings are deduplicated through the same incremental
//! [`Marking::path_hash`](crate::Marking::path_hash) the schedule search maintains, so callers that
//! already track the hash of a mutating scratch marking can look it up
//! without rehashing ([`MarkingStore::lookup_hashed`]). Hash collisions
//! are handled by exact comparison against the slab: two different
//! markings can never receive the same id.

use crate::fx::FxHashMap;
use crate::ids::TransitionId;
use crate::marking::{marking_hash, place_count_hash};
use crate::net::PetriNet;
use serde::{Deserialize, Serialize};

/// Compact handle of a marking interned in a [`MarkingStore`].
///
/// Ids are dense (`0..store.len()`) in interning order. A handle is only
/// meaningful together with the store that produced it (see the module
/// docs on handle discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MarkingId(pub u32);

impl MarkingId {
    /// Raw slab index of the marking.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interning arena for markings, backed by one flat `u32` slab.
///
/// ```
/// use qss_petri::MarkingStore;
/// let mut store = MarkingStore::new();
/// let a = store.intern(&[1, 0]);
/// let b = store.intern(&[1, 0]);
/// let c = store.intern(&[0, 1]);
/// assert_eq!(a, b); // equal markings share one id (and one slab row)
/// assert_ne!(a, c);
/// assert_eq!(store.resolve(a), &[1, 0]);
/// assert_eq!(store.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MarkingStore {
    /// Row width (the net's place count), fixed by the first intern;
    /// `STRIDE_UNSET` until then.
    stride: usize,
    /// Number of committed rows.
    num: usize,
    /// The slab: row `i` occupies `slab[i * stride..(i + 1) * stride]`.
    slab: Vec<u32>,
    /// Per committed row: its [`marking_hash`], kept so successor
    /// derivation updates the hash incrementally per changed place.
    hashes: Vec<u64>,
    /// `marking_hash` → most recently interned id with that hash. Further
    /// ids sharing the hash are chained through `same_hash`, so an intern
    /// costs one map operation and no per-bucket allocation.
    index: FxHashMap<u64, MarkingId>,
    /// Per id: the previously interned id with the same hash (intrusive
    /// collision chain; `u32::MAX` terminates).
    same_hash: Vec<u32>,
}

/// Terminator of the `same_hash` collision chains.
const NO_ID: u32 = u32::MAX;
/// Sentinel stride of a store that has not interned anything yet.
const STRIDE_UNSET: usize = usize::MAX;

impl Default for MarkingStore {
    fn default() -> Self {
        MarkingStore::new()
    }
}

impl MarkingStore {
    /// Creates an empty store; the stride is fixed by the first intern.
    pub fn new() -> Self {
        MarkingStore {
            stride: STRIDE_UNSET,
            num: 0,
            slab: Vec::new(),
            hashes: Vec::new(),
            index: FxHashMap::default(),
            same_hash: Vec::new(),
        }
    }

    /// Creates an empty store whose rows are `stride` counts wide.
    pub fn with_stride(stride: usize) -> Self {
        let mut store = MarkingStore::new();
        store.stride = stride;
        store
    }

    /// The fixed row width, or `None` while nothing has been interned in
    /// a [`MarkingStore::new`] store.
    pub fn stride(&self) -> Option<usize> {
        (self.stride != STRIDE_UNSET).then_some(self.stride)
    }

    /// Number of distinct markings interned.
    pub fn len(&self) -> usize {
        self.num
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.num == 0
    }

    /// Fixes the stride on first use and rejects mismatching widths
    /// afterwards (interning a marking of another net into this store).
    fn fix_stride(&mut self, width: usize) {
        if self.stride == STRIDE_UNSET {
            self.stride = width;
        }
        assert_eq!(
            width, self.stride,
            "marking width does not match the store's fixed stride"
        );
    }

    /// Row `i` of the slab.
    fn row(&self, i: usize) -> &[u32] {
        &self.slab[i * self.stride..(i + 1) * self.stride]
    }

    /// Interns the counts slice `m` (one count per place, in id order),
    /// returning the id of the unique row equal to it. The counts are
    /// copied into the slab only when the marking was not present yet —
    /// no temporary allocation in either case.
    #[must_use]
    pub fn intern(&mut self, m: &[u32]) -> MarkingId {
        self.intern_hashed(marking_hash(m), m)
    }

    /// Like [`MarkingStore::intern`] for callers that already know
    /// `marking_hash(m)` (e.g. the search's incrementally maintained
    /// hash).
    ///
    /// The hash is trusted; passing a wrong hash breaks the dedup
    /// invariant, so debug builds verify it.
    #[must_use]
    pub fn intern_hashed(&mut self, hash: u64, m: &[u32]) -> MarkingId {
        debug_assert_eq!(hash, marking_hash(m), "caller-supplied hash is stale");
        self.fix_stride(m.len());
        if let Some(id) = self.lookup_hashed(hash, m) {
            return id;
        }
        self.slab.extend_from_slice(m);
        self.commit(hash)
    }

    /// Links the row already written at the slab tail into the dedup
    /// index, making it id `num`.
    fn commit(&mut self, hash: u64) -> MarkingId {
        debug_assert_eq!(self.slab.len(), (self.num + 1) * self.stride);
        let id = MarkingId(self.num as u32);
        let prev = self.index.insert(hash, id).map(|p| p.0).unwrap_or(NO_ID);
        self.same_hash.push(prev);
        self.hashes.push(hash);
        self.num += 1;
        id
    }

    /// The id of the row equal to `m`, if `m` was ever interned. Never
    /// inserts.
    #[must_use]
    pub fn lookup(&self, m: &[u32]) -> Option<MarkingId> {
        self.lookup_hashed(marking_hash(m), m)
    }

    /// Like [`MarkingStore::lookup`] with a caller-supplied
    /// [`marking_hash`].
    #[must_use]
    pub fn lookup_hashed(&self, hash: u64, m: &[u32]) -> Option<MarkingId> {
        debug_assert_eq!(hash, marking_hash(m), "caller-supplied hash is stale");
        if m.len() != self.stride {
            // Covers the unset-stride case: nothing interned yet.
            return None;
        }
        let mut cursor = self.index.get(&hash).map(|id| id.0).unwrap_or(NO_ID);
        while cursor != NO_ID {
            if self.row(cursor as usize) == m {
                return Some(MarkingId(cursor));
            }
            cursor = self.same_hash[cursor as usize];
        }
        None
    }

    /// The counts of the marking behind `id`, as a row slice of the slab.
    ///
    /// # Panics
    /// Panics if `id` is out of range; debug builds assert it belongs to
    /// this store (ids from a store with a different stride or length are
    /// rejected — see the module docs on handle discipline).
    pub fn resolve(&self, id: MarkingId) -> &[u32] {
        debug_assert!(
            id.index() < self.num,
            "MarkingId({}) does not belong to this store of {} markings \
             (stride {:?}); handles must not cross stores",
            id.0,
            self.num,
            self.stride()
        );
        self.row(id.index())
    }

    /// Iterator over the interned markings (slab rows), in id order.
    pub fn markings(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.num).map(|i| self.row(i))
    }

    /// Iterator over `(id, counts)` pairs, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (MarkingId, &[u32])> {
        (0..self.num).map(|i| (MarkingId(i as u32), self.row(i)))
    }

    /// Fires `t` on the marking behind `from` and interns the successor,
    /// applying the net-delta list (see [`PetriNet::fire_into`], whose
    /// self-loop caveat applies: `t` must be enabled at `from`). The
    /// candidate row is built directly in the slab tail and rolled back
    /// if an equal row exists — no temporary allocation.
    ///
    /// # Panics
    /// Panics if a delta underflows a token count.
    #[must_use]
    pub fn fire(&mut self, net: &PetriNet, t: TransitionId, from: MarkingId) -> MarkingId {
        let (id, _) = self
            .derive(net, t, from, usize::MAX, false)
            .expect("an unbounded derive always lands");
        id
    }

    /// Reverts a firing of `t`: interns the predecessor marking obtained
    /// by un-applying `t`'s net delta to the marking behind `from`.
    ///
    /// # Panics
    /// Panics if a delta underflows a token count.
    #[must_use]
    pub fn unfire(&mut self, net: &PetriNet, t: TransitionId, from: MarkingId) -> MarkingId {
        let (id, _) = self
            .derive(net, t, from, usize::MAX, true)
            .expect("an unbounded derive always lands");
        id
    }

    /// Like [`MarkingStore::fire`], but refuses to grow the store beyond
    /// `cap` distinct markings: returns `None` when the successor would be
    /// a new row past the cap, and `(id, newly_interned)` otherwise. The
    /// bounded reachability explorer uses this to enforce its marking
    /// limit without materializing successors it will discard.
    #[must_use]
    pub fn fire_bounded(
        &mut self,
        net: &PetriNet,
        t: TransitionId,
        from: MarkingId,
        cap: usize,
    ) -> Option<(MarkingId, bool)> {
        self.derive(net, t, from, cap, false)
    }

    /// The reserve-then-commit successor derivation behind
    /// [`MarkingStore::fire`] / [`MarkingStore::unfire`] /
    /// [`MarkingStore::fire_bounded`].
    fn derive(
        &mut self,
        net: &PetriNet,
        t: TransitionId,
        from: MarkingId,
        cap: usize,
        revert: bool,
    ) -> Option<(MarkingId, bool)> {
        debug_assert!(
            from.index() < self.num,
            "MarkingId({}) does not belong to this store of {} markings",
            from.0,
            self.num
        );
        // Reserve: copy the source row to the slab tail and apply the net
        // delta (and the incremental hash update) in place there.
        let start = self.num * self.stride;
        let src = from.index() * self.stride;
        self.slab.extend_from_within(src..src + self.stride);
        let mut hash = self.hashes[from.index()];
        for &(p, delta) in net.changed_places(t) {
            let delta = if revert { -delta } else { delta };
            let cell = &mut self.slab[start + p.index()];
            let old = *cell;
            let next = old as i64 + delta;
            assert!(next >= 0, "token count underflow");
            assert!(next <= u32::MAX as i64, "token count overflow");
            *cell = next as u32;
            hash = hash
                .wrapping_sub(place_count_hash(p, old))
                .wrapping_add(place_count_hash(p, next as u32));
        }
        // Commit or roll back. The dedup probe runs `lookup_hashed` with
        // the tail itself as the candidate (committed rows never reach
        // the tail, so the candidate cannot match itself); in debug
        // builds this also cross-checks the incremental hash update
        // against a full rehash of the tail.
        if let Some(id) = self.lookup_hashed(hash, &self.slab[start..]) {
            self.slab.truncate(start);
            return Some((id, false));
        }
        if self.num >= cap {
            self.slab.truncate(start);
            return None;
        }
        Some((self.commit(hash), true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::Marking;
    use crate::net::{NetBuilder, TransitionKind};

    #[test]
    fn intern_dedups_and_resolves() {
        let mut store = MarkingStore::new();
        let a = store.intern(&[2, 0, 1]);
        let b = store.intern(&[2, 0, 1]);
        let c = store.intern(&[2, 1, 0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
        assert_eq!(store.stride(), Some(3));
        assert_eq!(store.resolve(a), &[2, 0, 1]);
        assert_eq!(store.resolve(c), &[2, 1, 0]);
    }

    #[test]
    fn ids_are_dense_in_interning_order() {
        let mut store = MarkingStore::new();
        for i in 0..5u32 {
            let id = store.intern(&[i]);
            assert_eq!(id.index(), i as usize);
        }
        let pairs: Vec<_> = store.iter().map(|(id, m)| (id.0, m[0])).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn lookup_never_inserts() {
        let mut store = MarkingStore::new();
        let m = [1u32, 2];
        assert_eq!(store.lookup(&m), None);
        assert!(store.is_empty());
        let id = store.intern(&m);
        assert_eq!(store.lookup(&m), Some(id));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn interning_from_a_marking_slice_round_trips() {
        let mut store = MarkingStore::new();
        let m = Marking::from_counts([3, 0, 7]);
        let id = store.intern_hashed(m.path_hash(), m.as_slice());
        assert_eq!(store.resolve(id), m.as_slice());
        assert_eq!(store.lookup_hashed(m.path_hash(), m.as_slice()), Some(id));
    }

    #[test]
    fn fire_and_unfire_round_trip_through_the_store() {
        let mut b = NetBuilder::new("t");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let t = b.transition("t", TransitionKind::Internal);
        b.arc_p2t(p, t, 1);
        b.arc_t2p(t, q, 1);
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        let mut store = MarkingStore::new();
        let m0 = store.intern(net.initial_marking().as_slice());
        let m1 = store.fire(&net, t, m0);
        assert_eq!(store.resolve(m1), &[0, 1]);
        // Un-firing reproduces the *same id* as the initial marking.
        assert_eq!(store.unfire(&net, t, m1), m0);
        // Re-firing dedups onto the existing successor (and the rollback
        // left the slab exactly two rows long).
        assert_eq!(store.fire(&net, t, m0), m1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn fire_bounded_respects_the_cap_without_committing() {
        let mut b = NetBuilder::new("grow");
        let p = b.place("p", 0);
        let src = b.transition("src", TransitionKind::UncontrollableSource);
        b.arc_t2p(src, p, 1);
        let net = b.build().unwrap();
        let src = net.transition_by_name("src").unwrap();
        let mut store = MarkingStore::new();
        let m0 = store.intern(net.initial_marking().as_slice());
        let (m1, new) = store.fire_bounded(&net, src, m0, 2).unwrap();
        assert!(new);
        // The cap blocks a third distinct marking...
        assert_eq!(store.fire_bounded(&net, src, m1, 2), None);
        assert_eq!(store.len(), 2);
        // ...but deduplication onto existing rows still works at the cap.
        assert_eq!(store.fire_bounded(&net, src, m0, 2), Some((m1, false)));
    }

    #[test]
    fn markings_with_colliding_buckets_stay_distinct() {
        // Exercise the bucket scan: intern many markings; every distinct
        // one must resolve back exactly.
        let mut store = MarkingStore::new();
        let ids: Vec<MarkingId> = (0..64u32).map(|i| store.intern(&[i % 8, i / 8])).collect();
        for (i, id) in ids.iter().enumerate() {
            let i = i as u32;
            assert_eq!(store.resolve(*id), &[i % 8, i / 8]);
        }
        assert_eq!(store.len(), 64);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn interning_a_mismatching_width_panics() {
        let mut store = MarkingStore::with_stride(3);
        let _ = store.intern(&[1, 2]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must not cross stores")]
    fn resolving_a_foreign_id_is_rejected_in_debug_builds() {
        let mut wide = MarkingStore::new();
        let _ = wide.intern(&[0, 0, 0, 0]);
        let foreign = MarkingId(3); // a plausible id of some other store
        let narrow = {
            let mut s = MarkingStore::new();
            let _ = s.intern(&[1]);
            s
        };
        let _ = narrow.resolve(foreign);
    }

    #[test]
    fn zero_width_markings_all_share_one_row() {
        let mut store = MarkingStore::new();
        let a = store.intern(&[]);
        let b = store.intern(&[]);
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        assert_eq!(store.resolve(a), &[] as &[u32]);
    }
}
