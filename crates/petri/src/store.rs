//! Hash-consed marking storage.
//!
//! A [`MarkingStore`] is an append-only arena that *interns* markings:
//! every distinct token vector is stored exactly once and identified by a
//! compact [`MarkingId`] handle. Equality of interned markings is equality
//! of the handles — an integer comparison — and hashing a handle hashes
//! four bytes instead of a whole token vector. The reachability explorer,
//! the EP schedule search and schedule graphs all store `MarkingId`s and
//! resolve them against one store, so a marking visited a thousand times
//! costs one slab slot.
//!
//! Markings are deduplicated through the same incremental
//! [`Marking::path_hash`] the schedule search maintains, so callers that
//! already track the hash of a mutating scratch marking can look it up
//! without rehashing ([`MarkingStore::lookup_hashed`]). Hash collisions
//! are handled by exact comparison against the slab: two different
//! markings can never receive the same id.

use crate::fx::FxHashMap;
use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::PetriNet;
use serde::{Deserialize, Serialize};

/// Compact handle of a marking interned in a [`MarkingStore`].
///
/// Ids are dense (`0..store.len()`) in interning order. A handle is only
/// meaningful together with the store that produced it; the caller is
/// responsible for not mixing handles across stores (the same discipline
/// [`Marking`] demands for nets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MarkingId(pub u32);

impl MarkingId {
    /// Raw slab index of the marking.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interning arena for [`Marking`]s.
///
/// ```
/// use qss_petri::{Marking, MarkingStore};
/// let mut store = MarkingStore::new();
/// let a = store.intern(&Marking::from_counts([1, 0]));
/// let b = store.intern(&Marking::from_counts([1, 0]));
/// let c = store.intern(&Marking::from_counts([0, 1]));
/// assert_eq!(a, b); // equal markings share one id (and one slab slot)
/// assert_ne!(a, c);
/// assert_eq!(store.resolve(a).as_slice(), &[1, 0]);
/// assert_eq!(store.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MarkingStore {
    /// The slab: every distinct marking, in interning order.
    markings: Vec<Marking>,
    /// `path_hash` → most recently interned id with that hash. Further
    /// ids sharing the hash are chained through `same_hash`, so an intern
    /// costs one map operation and no per-bucket allocation.
    index: FxHashMap<u64, MarkingId>,
    /// Per id: the previously interned id with the same hash (intrusive
    /// collision chain; `u32::MAX` terminates).
    same_hash: Vec<u32>,
}

/// Terminator of the `same_hash` collision chains.
const NO_ID: u32 = u32::MAX;

impl MarkingStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MarkingStore::default()
    }

    /// Number of distinct markings interned.
    pub fn len(&self) -> usize {
        self.markings.len()
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.markings.is_empty()
    }

    /// Interns `m`, returning the id of the (unique) slab entry equal to
    /// it. The marking is cloned only when it was not present yet.
    pub fn intern(&mut self, m: &Marking) -> MarkingId {
        self.intern_hashed(m.path_hash(), m)
    }

    /// Interns an owned marking, avoiding the clone on first occurrence.
    pub fn intern_owned(&mut self, m: Marking) -> MarkingId {
        let hash = m.path_hash();
        if let Some(id) = self.lookup_hashed(hash, &m) {
            return id;
        }
        self.push_new(hash, m)
    }

    /// Like [`MarkingStore::intern`] for callers that already know
    /// `m.path_hash()` (e.g. the search's incrementally maintained hash).
    ///
    /// The hash is trusted; passing a wrong hash breaks the dedup
    /// invariant, so debug builds verify it.
    pub fn intern_hashed(&mut self, hash: u64, m: &Marking) -> MarkingId {
        debug_assert_eq!(hash, m.path_hash(), "caller-supplied hash is stale");
        if let Some(id) = self.lookup_hashed(hash, m) {
            return id;
        }
        self.push_new(hash, m.clone())
    }

    /// Appends a marking known to be absent, linking it into the
    /// collision chain of `hash`.
    fn push_new(&mut self, hash: u64, m: Marking) -> MarkingId {
        let id = MarkingId(self.markings.len() as u32);
        let prev = self.index.insert(hash, id).map(|p| p.0).unwrap_or(NO_ID);
        self.same_hash.push(prev);
        self.markings.push(m);
        id
    }

    /// The id of the slab entry equal to `m`, if `m` was ever interned.
    /// Never inserts.
    pub fn lookup(&self, m: &Marking) -> Option<MarkingId> {
        self.lookup_hashed(m.path_hash(), m)
    }

    /// Like [`MarkingStore::lookup`] with a caller-supplied
    /// [`Marking::path_hash`].
    pub fn lookup_hashed(&self, hash: u64, m: &Marking) -> Option<MarkingId> {
        debug_assert_eq!(hash, m.path_hash(), "caller-supplied hash is stale");
        let mut cursor = self.index.get(&hash).map(|id| id.0).unwrap_or(NO_ID);
        while cursor != NO_ID {
            if &self.markings[cursor as usize] == m {
                return Some(MarkingId(cursor));
            }
            cursor = self.same_hash[cursor as usize];
        }
        None
    }

    /// The marking behind `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this store.
    pub fn resolve(&self, id: MarkingId) -> &Marking {
        &self.markings[id.index()]
    }

    /// Iterator over the interned markings, in id order.
    pub fn markings(&self) -> impl Iterator<Item = &Marking> {
        self.markings.iter()
    }

    /// Iterator over `(id, marking)` pairs, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (MarkingId, &Marking)> {
        self.markings
            .iter()
            .enumerate()
            .map(|(i, m)| (MarkingId(i as u32), m))
    }

    /// Fires `t` on the marking behind `from` and interns the successor,
    /// applying the net-delta list (see [`PetriNet::fire_into`], whose
    /// self-loop caveat applies: `t` must be enabled at `from`).
    ///
    /// # Panics
    /// Panics if a delta underflows a token count.
    pub fn fire(&mut self, net: &PetriNet, t: TransitionId, from: MarkingId) -> MarkingId {
        let mut next = self.markings[from.index()].clone();
        net.fire_into(t, &mut next);
        self.intern_owned(next)
    }

    /// Reverts a firing of `t`: interns the predecessor marking obtained
    /// by un-applying `t`'s net delta to the marking behind `from`.
    ///
    /// # Panics
    /// Panics if a delta underflows a token count.
    pub fn unfire(&mut self, net: &PetriNet, t: TransitionId, from: MarkingId) -> MarkingId {
        let mut prev = self.markings[from.index()].clone();
        net.unfire_into(t, &mut prev);
        self.intern_owned(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, TransitionKind};

    #[test]
    fn intern_dedups_and_resolves() {
        let mut store = MarkingStore::new();
        let a = store.intern(&Marking::from_counts([2, 0, 1]));
        let b = store.intern(&Marking::from_counts([2, 0, 1]));
        let c = store.intern(&Marking::from_counts([2, 1, 0]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
        assert_eq!(store.resolve(a).as_slice(), &[2, 0, 1]);
        assert_eq!(store.resolve(c).as_slice(), &[2, 1, 0]);
    }

    #[test]
    fn ids_are_dense_in_interning_order() {
        let mut store = MarkingStore::new();
        for i in 0..5u32 {
            let id = store.intern(&Marking::from_counts([i]));
            assert_eq!(id.index(), i as usize);
        }
        let pairs: Vec<_> = store
            .iter()
            .map(|(id, m)| (id.0, m.tokens(crate::ids::PlaceId::new(0))))
            .collect();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn lookup_never_inserts() {
        let mut store = MarkingStore::new();
        let m = Marking::from_counts([1, 2]);
        assert_eq!(store.lookup(&m), None);
        assert!(store.is_empty());
        let id = store.intern_owned(m.clone());
        assert_eq!(store.lookup(&m), Some(id));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn fire_and_unfire_round_trip_through_the_store() {
        let mut b = NetBuilder::new("t");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let t = b.transition("t", TransitionKind::Internal);
        b.arc_p2t(p, t, 1);
        b.arc_t2p(t, q, 1);
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        let mut store = MarkingStore::new();
        let m0 = store.intern(&net.initial_marking());
        let m1 = store.fire(&net, t, m0);
        assert_eq!(store.resolve(m1).as_slice(), &[0, 1]);
        // Un-firing reproduces the *same id* as the initial marking.
        assert_eq!(store.unfire(&net, t, m1), m0);
        // Re-firing dedups onto the existing successor.
        assert_eq!(store.fire(&net, t, m0), m1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn markings_with_colliding_buckets_stay_distinct() {
        // Exercise the bucket scan: intern many markings; every distinct
        // one must resolve back exactly.
        let mut store = MarkingStore::new();
        let ids: Vec<MarkingId> = (0..64u32)
            .map(|i| store.intern(&Marking::from_counts([i % 8, i / 8])))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let i = i as u32;
            assert_eq!(store.resolve(*id).as_slice(), &[i % 8, i / 8]);
        }
        assert_eq!(store.len(), 64);
    }
}
