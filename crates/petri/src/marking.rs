//! Markings: token-count vectors over the places of a net.

use crate::ids::PlaceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A marking assigns a number of tokens to every place of a net.
///
/// Markings are plain vectors indexed by [`PlaceId`]; they do not keep a
/// reference to the net they belong to, so the caller is responsible for
/// only combining markings with the net that produced them.
///
/// ```
/// use qss_petri::{Marking, PlaceId};
/// let mut m = Marking::from_counts([1, 0, 2]);
/// assert_eq!(m.tokens(PlaceId::new(2)), 2);
/// m.add_tokens(PlaceId::new(1), 3);
/// assert_eq!(m.total_tokens(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Marking {
    counts: Vec<u32>,
}

impl Marking {
    /// Creates a marking with `num_places` empty places.
    pub fn empty(num_places: usize) -> Self {
        Marking {
            counts: vec![0; num_places],
        }
    }

    /// Creates a marking from explicit token counts, one per place in
    /// identifier order.
    pub fn from_counts(counts: impl IntoIterator<Item = u32>) -> Self {
        Marking {
            counts: counts.into_iter().collect(),
        }
    }

    /// Number of places covered by this marking.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if the marking covers no places at all.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Tokens currently in place `p`.
    ///
    /// # Panics
    /// Panics if `p` is out of range for this marking.
    pub fn tokens(&self, p: PlaceId) -> u32 {
        self.counts[p.index()]
    }

    /// Sets the number of tokens in place `p`.
    ///
    /// # Panics
    /// Panics if `p` is out of range for this marking.
    pub fn set_tokens(&mut self, p: PlaceId, tokens: u32) {
        self.counts[p.index()] = tokens;
    }

    /// Adds `n` tokens to place `p`.
    ///
    /// # Panics
    /// Panics if `p` is out of range or the count overflows `u32`.
    pub fn add_tokens(&mut self, p: PlaceId, n: u32) {
        let c = &mut self.counts[p.index()];
        *c = c.checked_add(n).expect("token count overflow");
    }

    /// Removes `n` tokens from place `p`.
    ///
    /// # Panics
    /// Panics if `p` is out of range or fewer than `n` tokens are present.
    pub fn remove_tokens(&mut self, p: PlaceId, n: u32) {
        let c = &mut self.counts[p.index()];
        *c = c.checked_sub(n).expect("token count underflow");
    }

    /// Applies a signed token delta to place `p` (the primitive behind
    /// [`PetriNet::fire_into`](crate::PetriNet::fire_into)).
    ///
    /// # Panics
    /// Panics if `p` is out of range or the count leaves the `u32` range
    /// ("token count underflow"/"token count overflow").
    pub fn apply_delta(&mut self, p: PlaceId, delta: i64) {
        apply_delta(&mut self.counts, p, delta);
    }

    /// A 64-bit hash of the whole marking, defined as the wrapping sum of
    /// [`place_count_hash`] over every place. Because the combiner is
    /// addition, the hash can be maintained *incrementally* when one place
    /// changes: `h += place_count_hash(p, new) − place_count_hash(p, old)`.
    /// The schedule search uses this to index on-path ancestor markings.
    /// Equal to [`marking_hash`] over [`Marking::as_slice`].
    pub fn path_hash(&self) -> u64 {
        marking_hash(&self.counts)
    }

    /// Total number of tokens over all places.
    pub fn total_tokens(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Returns `true` if every place holds at least as many tokens as in
    /// `other` (`self >= other` component-wise).
    ///
    /// This is the *covering* relation used by the irrelevant-marking
    /// criterion.
    ///
    /// # Panics
    /// Panics if the two markings have different lengths.
    pub fn covers(&self, other: &Marking) -> bool {
        assert_eq!(self.len(), other.len(), "markings of different nets");
        self.counts
            .iter()
            .zip(other.counts.iter())
            .all(|(a, b)| a >= b)
    }

    /// Places where `self` holds strictly more tokens than `other`.
    ///
    /// # Panics
    /// Panics if the two markings have different lengths.
    pub fn strictly_greater_places(&self, other: &Marking) -> Vec<PlaceId> {
        assert_eq!(self.len(), other.len(), "markings of different nets");
        self.counts
            .iter()
            .zip(other.counts.iter())
            .enumerate()
            .filter(|(_, (a, b))| a > b)
            .map(|(i, _)| PlaceId::new(i))
            .collect()
    }

    /// Places holding at least one token.
    pub fn marked_places(&self) -> Vec<PlaceId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| PlaceId::new(i))
            .collect()
    }

    /// Raw counts slice, in place-identifier order.
    pub fn as_slice(&self) -> &[u32] {
        &self.counts
    }

    /// Mutable raw counts slice, in place-identifier order.
    pub fn as_mut_slice(&mut self) -> &mut [u32] {
        &mut self.counts
    }

    /// Iterator over `(place, tokens)` pairs for marked places only.
    pub fn iter_marked(&self) -> impl Iterator<Item = (PlaceId, u32)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (PlaceId::new(i), c))
    }
}

/// The [`Marking::path_hash`] of a raw counts slice, for callers working
/// on [`MarkingStore`](crate::MarkingStore) rows or scratch buffers that
/// never materialize a [`Marking`].
pub fn marking_hash(counts: &[u32]) -> u64 {
    counts.iter().enumerate().fold(0u64, |h, (i, &c)| {
        h.wrapping_add(place_count_hash(PlaceId::new(i), c))
    })
}

/// Applies a signed token delta to `counts[p]` — the slice counterpart of
/// [`Marking::apply_delta`], with the same checked arithmetic.
///
/// # Panics
/// Panics if `p` is out of range or the count leaves the `u32` range.
pub fn apply_delta(counts: &mut [u32], p: PlaceId, delta: i64) {
    let c = &mut counts[p.index()];
    let next = *c as i64 + delta;
    assert!(next >= 0, "token count underflow");
    assert!(next <= u32::MAX as i64, "token count overflow");
    *c = next as u32;
}

/// Formats a raw counts slice the way [`Marking`] displays (the multiset
/// of marked places, `p1 p3^2`; the empty marking as `0`).
pub fn format_marking(counts: &[u32]) -> String {
    let marked: Vec<String> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| {
            let p = PlaceId::new(i);
            if c == 1 {
                p.to_string()
            } else {
                format!("{p}^{c}")
            }
        })
        .collect();
    if marked.is_empty() {
        "0".to_owned()
    } else {
        marked.join(" ")
    }
}

/// Mixes one `(place, token count)` pair into a well-distributed 64-bit
/// value (a splitmix64 finalizer over the packed pair). Summed over all
/// places by [`Marking::path_hash`]; exposed so callers can update the sum
/// incrementally as individual places change.
pub fn place_count_hash(p: PlaceId, count: u32) -> u64 {
    let mut z = ((p.index() as u64) << 32) ^ (count as u64);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl fmt::Display for Marking {
    /// Formats as the multiset of marked places, e.g. `p1 p3^2`; the empty
    /// marking is shown as `0` to match the paper's figures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_marking(&self.counts))
    }
}

impl FromIterator<u32> for Marking {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Marking::from_counts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Marking::from_counts([1, 2, 0]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.tokens(PlaceId::new(0)), 1);
        assert_eq!(m.tokens(PlaceId::new(1)), 2);
        assert_eq!(m.total_tokens(), 3);
        assert!(!m.is_empty());
        assert!(Marking::empty(0).is_empty());
    }

    #[test]
    fn add_and_remove() {
        let mut m = Marking::empty(2);
        m.add_tokens(PlaceId::new(0), 4);
        m.remove_tokens(PlaceId::new(0), 1);
        assert_eq!(m.tokens(PlaceId::new(0)), 3);
        m.set_tokens(PlaceId::new(1), 7);
        assert_eq!(m.tokens(PlaceId::new(1)), 7);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn remove_too_many_panics() {
        let mut m = Marking::empty(1);
        m.remove_tokens(PlaceId::new(0), 1);
    }

    #[test]
    fn covering_relation() {
        let a = Marking::from_counts([2, 1, 0]);
        let b = Marking::from_counts([1, 1, 0]);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
        assert_eq!(a.strictly_greater_places(&b), vec![PlaceId::new(0)]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let m = Marking::from_counts([0, 1, 2]);
        assert_eq!(m.to_string(), "p1 p2^2");
        assert_eq!(Marking::empty(3).to_string(), "0");
    }

    #[test]
    fn marked_places_and_iter() {
        let m = Marking::from_counts([0, 3, 0, 1]);
        assert_eq!(m.marked_places(), vec![PlaceId::new(1), PlaceId::new(3)]);
        let pairs: Vec<_> = m.iter_marked().collect();
        assert_eq!(pairs, vec![(PlaceId::new(1), 3), (PlaceId::new(3), 1)]);
    }

    #[test]
    fn apply_delta_round_trips() {
        let mut m = Marking::from_counts([2, 0]);
        m.apply_delta(PlaceId::new(0), -2);
        m.apply_delta(PlaceId::new(1), 5);
        assert_eq!(m.as_slice(), &[0, 5]);
        m.apply_delta(PlaceId::new(1), -5);
        assert_eq!(m.as_slice(), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn apply_delta_underflow_panics() {
        let mut m = Marking::from_counts([1]);
        m.apply_delta(PlaceId::new(0), -2);
    }

    #[test]
    fn path_hash_is_incremental() {
        let mut m = Marking::from_counts([1, 4, 0]);
        let mut h = m.path_hash();
        // Change place 1 from 4 to 7 and update the hash incrementally.
        let p = PlaceId::new(1);
        h = h
            .wrapping_sub(place_count_hash(p, 4))
            .wrapping_add(place_count_hash(p, 7));
        m.set_tokens(p, 7);
        assert_eq!(h, m.path_hash());
        // Different markings get different hashes (no strict guarantee,
        // but these must not collide for the index to be useful).
        assert_ne!(
            Marking::from_counts([0, 1]).path_hash(),
            Marking::from_counts([1, 0]).path_hash()
        );
    }

    #[test]
    fn from_iterator() {
        let m: Marking = [1u32, 2, 3].into_iter().collect();
        assert_eq!(m.as_slice(), &[1, 2, 3]);
    }
}
