//! A fast, non-cryptographic hasher (the FxHash algorithm from rustc) for
//! the hot-path hash maps of the kernel and the scheduler.
//!
//! The standard library's default SipHash is DoS-resistant but costs real
//! time on the schedule search's per-node probes; all keys hashed here are
//! internal (marking hashes, token counts, marking vectors), so the
//! multiply-rotate mix is both safe and markedly faster.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(
                chunk
                    .try_into()
                    .expect("chunks_exact(8) yields 8-byte chunks"),
            ));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i.wrapping_mul(0x9e37_79b9), i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i.wrapping_mul(0x9e37_79b9)), Some(&(i as u32)));
        }
    }

    #[test]
    fn hash_distinguishes_nearby_keys() {
        use std::hash::Hash;
        let h = |k: u64| {
            let mut hasher = FxHasher::default();
            k.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
    }
}
