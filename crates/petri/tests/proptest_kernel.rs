//! Property-based tests of the Petri-net kernel: firing, markings, ECS
//! partitions, place degrees, bounded reachability, T-invariants (the
//! sparse Farkas elimination against its retained dense oracle) and the
//! hash-consing marking store, on randomly generated nets.

use proptest::prelude::*;
use qss_petri::{
    incidence_matrix, p_invariant_basis, p_invariant_basis_dense, place_degree, t_invariant_basis,
    t_invariant_basis_dense, CellWidth, EcsInfo, KernelScratch, Marking, MarkingStore, NetBuilder,
    NetKernels, PetriNet, PlaceId, ReachabilityGraph, ReachabilityLimits, TransitionKind,
};

/// A random connected net description: `places[p]` is the initial token
/// count; every transition consumes from one place and produces into
/// another with small weights.
#[derive(Debug, Clone)]
struct RandomNet {
    initial: Vec<u32>,
    arcs: Vec<(usize, usize, u32, u32)>,
}

fn random_net_strategy() -> impl Strategy<Value = RandomNet> {
    (2usize..6, 1usize..8).prop_flat_map(|(num_places, num_transitions)| {
        let initial = prop::collection::vec(0u32..3, num_places);
        let arcs = prop::collection::vec(
            (0..num_places, 0..num_places, 1u32..3, 1u32..3),
            num_transitions,
        );
        (initial, arcs).prop_map(|(initial, arcs)| RandomNet { initial, arcs })
    })
}

fn build(net: &RandomNet) -> PetriNet {
    let mut b = NetBuilder::new("random");
    let places: Vec<PlaceId> = net
        .initial
        .iter()
        .enumerate()
        .map(|(i, &tokens)| b.place(format!("p{i}"), tokens))
        .collect();
    for (i, (from, to, consume, produce)) in net.arcs.iter().enumerate() {
        let t = b.transition(format!("t{i}"), TransitionKind::Internal);
        b.arc_p2t(places[*from], t, *consume);
        b.arc_t2p(t, places[*to], *produce);
    }
    b.build().expect("random net builds")
}

/// Arc weights straddling the `u8`/`u16` cell boundaries, so narrow need
/// rows are exercised exactly where a narrowing bug would bite.
const KERNEL_WEIGHTS: &[u32] = &[1, 2, 3, 254, 255, 256, 257, 65534, 65535, 65536, 65537];

/// Token counts straddling the same boundaries (plus the saturation
/// extremes): the saturating count conversion must keep `count >= need`
/// exact at 254/255/256, 65535/65536 and `u32::MAX`.
const KERNEL_COUNTS: &[u32] = &[
    0,
    1,
    2,
    253,
    254,
    255,
    256,
    257,
    65534,
    65535,
    65536,
    65537,
    1 << 20,
    u32::MAX,
];

/// A net with boundary-value weights plus a batch of boundary-value
/// counts rows to evaluate enabledness on.
#[derive(Debug, Clone)]
struct KernelCase {
    net: RandomNet,
    rows: Vec<Vec<u32>>,
}

/// Generates [`KernelCase`]s with `places`/`trans` drawn from the given
/// ranges. With `duplicate_presets`, a third of the transitions copy the
/// previous transition's input arc exactly, forming multi-member ECSs the
/// representative-based ECS sweep must handle (the hub-net shape).
fn kernel_case_strategy(
    places: std::ops::Range<usize>,
    trans: std::ops::Range<usize>,
    duplicate_presets: bool,
) -> impl Strategy<Value = KernelCase> {
    (places, trans).prop_flat_map(move |(num_places, num_transitions)| {
        let initial = prop::collection::vec(0usize..KERNEL_COUNTS.len(), num_places);
        let arcs = prop::collection::vec(
            (
                0..num_places,
                0..num_places,
                0usize..KERNEL_WEIGHTS.len(),
                1u32..3,
                0u32..3,
            ),
            num_transitions,
        );
        let rows = prop::collection::vec(
            prop::collection::vec(0usize..KERNEL_COUNTS.len(), num_places),
            1usize..5,
        );
        (initial, arcs, rows).prop_map(move |(initial, arcs, rows)| {
            let mut built: Vec<(usize, usize, u32, u32)> = Vec::with_capacity(arcs.len());
            for (from, to, weight_index, produce, dup) in arcs {
                let (from, consume) = match built.last() {
                    Some(&(prev_from, _, prev_consume, _)) if duplicate_presets && dup == 0 => {
                        (prev_from, prev_consume)
                    }
                    _ => (from, KERNEL_WEIGHTS[weight_index]),
                };
                built.push((from, to, consume, produce));
            }
            KernelCase {
                net: RandomNet {
                    initial: initial.into_iter().map(|i| KERNEL_COUNTS[i]).collect(),
                    arcs: built,
                },
                rows: rows
                    .into_iter()
                    .map(|row| row.into_iter().map(|i| KERNEL_COUNTS[i]).collect())
                    .collect(),
            }
        })
    })
}

/// Checks every compiled kernel variant (auto-selected widths for a range
/// of claimed bounds, plus every forced width/layout the weights admit)
/// against the scalar `is_enabled_at` oracle on every row of the case.
/// Returns a description of the first mismatch.
fn kernel_mismatch(case: &KernelCase) -> Option<String> {
    let net = build(&case.net);
    let ecs = EcsInfo::compute(&net);
    let max_weight = case.net.arcs.iter().map(|a| a.2).max().unwrap_or(0);
    let mut variants = vec![
        NetKernels::compile(&net, &ecs, None),
        NetKernels::compile(&net, &ecs, Some(1)),
        NetKernels::compile(&net, &ecs, Some(255)),
        NetKernels::compile(&net, &ecs, Some(65535)),
        NetKernels::compile(&net, &ecs, Some(u32::MAX)),
    ];
    for cell in [CellWidth::U8, CellWidth::U16, CellWidth::U32] {
        if max_weight <= cell.max() {
            for dense in [true, false] {
                variants.push(NetKernels::compile_forced(&net, &ecs, cell, dense));
            }
        }
    }
    let mut rows = case.rows.clone();
    rows.push(case.net.initial.clone());
    let mut scratch = KernelScratch::default();
    let mut enabled_ecs = Vec::new();
    for kernels in &variants {
        let shape = format!("{:?}/dense={}", kernels.cell(), kernels.is_dense());
        for row in &rows {
            let set = kernels.enabled_set_at(row, &mut scratch);
            for t in net.transition_ids() {
                let scalar = net.is_enabled_at(t, row);
                if set.contains(t) != scalar {
                    return Some(format!(
                        "enabled_set_at disagrees on {t} ({shape}): {row:?}"
                    ));
                }
                if kernels.is_enabled_at(t, row) != scalar {
                    return Some(format!("is_enabled_at disagrees on {t} ({shape}): {row:?}"));
                }
            }
            kernels.enabled_ecs_into(row, &mut scratch, &mut enabled_ecs);
            if enabled_ecs != ecs.enabled_ecs_at(&net, row) {
                return Some(format!("enabled_ecs_into disagrees ({shape}): {row:?}"));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunked/bit-packed enabledness equals the scalar per-arc walk on
    /// small densely connected nets, across every cell width and layout,
    /// at the u8/u16 narrowing boundaries.
    #[test]
    fn kernels_match_scalar_on_dense_nets(case in kernel_case_strategy(2..7, 1..8, false)) {
        let mismatch = kernel_mismatch(&case);
        prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap_or_default());
    }

    /// Same equivalence on wide nets whose u32 need rows straddle the
    /// dense-row byte cap (the dense/sparse auto-selection boundary).
    #[test]
    fn kernels_match_scalar_on_wide_nets(case in kernel_case_strategy(40..81, 3..11, false)) {
        let mismatch = kernel_mismatch(&case);
        prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap_or_default());
    }

    /// Same equivalence on hub-shaped nets (hundreds of places, duplicated
    /// presets forming multi-member ECSs): the sparse CSR fallback plus
    /// the representative-based ECS sweep.
    #[test]
    fn kernels_match_scalar_on_hub_nets(case in kernel_case_strategy(100..201, 8..25, true)) {
        let mismatch = kernel_mismatch(&case);
        prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap_or_default());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Firing is exactly the incidence-matrix column update and never
    /// produces negative token counts.
    #[test]
    fn firing_matches_incidence_matrix(desc in random_net_strategy(), steps in 1usize..20) {
        let net = build(&desc);
        let c = incidence_matrix(&net);
        let mut marking = net.initial_marking();
        for _ in 0..steps {
            let enabled = net.enabled_transitions(&marking);
            let Some(&t) = enabled.first() else { break };
            let next = net.fire(t, &marking).unwrap();
            for p in net.place_ids() {
                let delta = c.entry(p, t);
                prop_assert_eq!(next.tokens(p) as i64, marking.tokens(p) as i64 + delta);
            }
            marking = next;
        }
    }

    /// A disabled transition can never be fired, and an enabled one always
    /// can.
    #[test]
    fn fire_agrees_with_is_enabled(desc in random_net_strategy()) {
        let net = build(&desc);
        let m = net.initial_marking();
        for t in net.transition_ids() {
            prop_assert_eq!(net.fire(t, &m).is_ok(), net.is_enabled(t, &m));
        }
    }

    /// Transitions in the same ECS have identical presets and identical
    /// enabling at every marking of the bounded reachability graph.
    #[test]
    fn ecs_members_enable_together(desc in random_net_strategy()) {
        let net = build(&desc);
        let ecs = EcsInfo::compute(&net);
        let limits = ReachabilityLimits { max_markings: 200, max_tokens_per_place: Some(6) };
        let graph = ReachabilityGraph::explore(&net, &limits).unwrap();
        for e in ecs.ecs_ids() {
            let members = ecs.members(e);
            for m in graph.markings() {
                let enabled: Vec<bool> = members.iter().map(|t| net.is_enabled_at(*t, m)).collect();
                prop_assert!(enabled.windows(2).all(|w| w[0] == w[1]),
                    "ECS members must enable together");
            }
        }
    }

    /// Place degrees dominate the structural saturation point: once a
    /// place holds `max(degree, heaviest outgoing weight)` tokens, adding
    /// more never enables a successor transition that was not already
    /// enabled (the degree only falls below that weight for places with no
    /// producers, which can never be refilled anyway).
    #[test]
    fn degree_is_a_saturation_point(desc in random_net_strategy()) {
        let net = build(&desc);
        for p in net.place_ids() {
            let max_out = net
                .place_successors(p)
                .iter()
                .map(|&t| net.weight_p2t(p, t))
                .max()
                .unwrap_or(0);
            let saturation = place_degree(&net, p).max(max_out);
            let mut saturated = Marking::empty(net.num_places());
            saturated.set_tokens(p, saturation);
            let mut beyond = saturated.clone();
            beyond.add_tokens(p, 5);
            for &t in net.place_successors(p) {
                // Only compare the contribution of p itself: fill every
                // other input place generously in both markings.
                let mut a = saturated.clone();
                let mut b = beyond.clone();
                for (q, w) in net.preset(t) {
                    if *q != p {
                        a.set_tokens(*q, *w);
                        b.set_tokens(*q, *w);
                    }
                }
                prop_assert_eq!(net.is_enabled(t, &a), net.is_enabled(t, &b));
            }
        }
    }

    /// Every T-invariant of the computed basis satisfies C·x = 0.
    #[test]
    fn t_invariant_basis_is_valid(desc in random_net_strategy()) {
        let net = build(&desc);
        for inv in t_invariant_basis(&net, 5_000) {
            prop_assert!(inv.is_valid_for(&net));
            prop_assert!(!inv.is_zero());
        }
    }

    /// Bounded reachability never reports a marking that violates the
    /// per-place cap by more than one firing's worth of tokens, and always
    /// contains the initial marking.
    #[test]
    fn reachability_respects_limits(desc in random_net_strategy()) {
        let net = build(&desc);
        let limits = ReachabilityLimits { max_markings: 100, max_tokens_per_place: Some(4) };
        if let Ok(graph) = ReachabilityGraph::explore(&net, &limits) {
            prop_assert!(graph.contains(net.initial_marking().as_slice()));
            prop_assert!(graph.num_markings() <= 100);
            let max_produce = net
                .transition_ids()
                .flat_map(|t| net.postset(t).iter().map(|(_, w)| *w).collect::<Vec<_>>())
                .max()
                .unwrap_or(0);
            for m in graph.markings() {
                for &c in m {
                    prop_assert!(c <= 4 + max_produce.max(3));
                }
            }
            // The CSR successor rows are real: firing the edge transition
            // at the source marking lands exactly on the target row.
            for (v, t, w) in graph.edges() {
                let mut next = graph.marking(v).to_vec();
                net.fire_into_slice(t, &mut next);
                prop_assert_eq!(&next[..], graph.marking(w));
            }
            prop_assert_eq!(graph.edges().count(), graph.num_edges());
        }
    }

    /// The sparse-row Farkas elimination produces exactly the basis of
    /// the retained dense implementation — same invariants, same order.
    #[test]
    fn sparse_farkas_matches_dense_oracle(desc in random_net_strategy(), row_cap in 4usize..64) {
        let net = build(&desc);
        prop_assert_eq!(
            t_invariant_basis(&net, 5_000),
            t_invariant_basis_dense(&net, 5_000)
        );
        // Including under aggressive row caps, where both bail out early.
        prop_assert_eq!(
            t_invariant_basis(&net, row_cap),
            t_invariant_basis_dense(&net, row_cap)
        );
    }

    /// Every P-invariant of the computed basis is a left annuller of the
    /// incidence matrix (`yᵀ·C = 0`), non-zero, and the sparse Farkas
    /// dual agrees with the retained dense oracle — same invariants, same
    /// order, including under aggressive row caps.
    #[test]
    fn p_invariant_sparse_matches_dense_oracle(desc in random_net_strategy(), row_cap in 4usize..64) {
        let net = build(&desc);
        let basis = p_invariant_basis(&net, 5_000);
        for inv in &basis {
            prop_assert!(inv.is_valid_for(&net));
            prop_assert!(!inv.is_zero());
        }
        prop_assert_eq!(basis, p_invariant_basis_dense(&net, 5_000));
        prop_assert_eq!(
            p_invariant_basis(&net, row_cap),
            p_invariant_basis_dense(&net, row_cap)
        );
    }

    /// Intern/resolve round-trips, and interning is a bijection between
    /// distinct markings and ids (the dedup invariant).
    #[test]
    fn marking_store_interning_is_a_bijection(
        rows in prop::collection::vec(prop::collection::vec(0u32..4, 3), 1..24)
    ) {
        let mut store = MarkingStore::new();
        let markings: Vec<Marking> = rows.iter().cloned().map(Marking::from_counts).collect();
        let ids: Vec<_> = markings.iter().map(|m| store.intern(m.as_slice())).collect();
        for (m, &id) in markings.iter().zip(&ids) {
            // Round-trip: the id resolves back to an equal marking...
            prop_assert_eq!(store.resolve(id), m.as_slice());
            // ...and lookup finds the same id without inserting.
            prop_assert_eq!(store.lookup(m.as_slice()), Some(id));
        }
        for (i, a) in markings.iter().enumerate() {
            for (j, b) in markings.iter().enumerate() {
                // Dedup invariant: equal markings ⇔ equal ids.
                prop_assert_eq!(a == b, ids[i] == ids[j]);
            }
        }
        let distinct = {
            let mut sorted = markings.clone();
            sorted.sort();
            sorted.dedup();
            sorted.len()
        };
        prop_assert_eq!(store.len(), distinct);
    }

    /// The flat-slab store assigns exactly the same ids as a naive
    /// `Vec<Marking>` interner that linearly scans owned markings — the
    /// slab layout changes the storage, never the id assignment.
    #[test]
    fn flat_store_agrees_with_naive_interner_id_for_id(
        rows in prop::collection::vec(prop::collection::vec(0u32..4, 4), 1..32)
    ) {
        let mut store = MarkingStore::new();
        let mut naive: Vec<Marking> = Vec::new();
        for row in &rows {
            let m = Marking::from_counts(row.iter().copied());
            let naive_id = match naive.iter().position(|n| *n == m) {
                Some(i) => i,
                None => {
                    naive.push(m.clone());
                    naive.len() - 1
                }
            };
            let id = store.intern(m.as_slice());
            prop_assert_eq!(id.index(), naive_id);
        }
        prop_assert_eq!(store.len(), naive.len());
        for (i, m) in naive.iter().enumerate() {
            prop_assert_eq!(store.resolve(qss_petri::MarkingId(i as u32)), m.as_slice());
        }
    }

    /// Walking a net through `MarkingStore::fire`/`unfire` (reserve-then-
    /// commit delta application in the slab tail) always lands on the same
    /// ids as freshly interning independently computed successor markings.
    #[test]
    fn marking_store_fire_matches_fresh_interning(desc in random_net_strategy(), steps in 1usize..24) {
        let net = build(&desc);
        let mut store = MarkingStore::new();
        let mut id = store.intern(net.initial_marking().as_slice());
        let mut marking = net.initial_marking();
        let mut trail = Vec::new();
        for _ in 0..steps {
            let enabled = net.enabled_transitions(&marking);
            let Some(&t) = enabled.first() else { break };
            id = store.fire(&net, t, id);
            marking = net.fire(t, &marking).unwrap();
            // Delta application and fresh interning agree on the id.
            prop_assert_eq!(id, store.intern(marking.as_slice()));
            prop_assert_eq!(store.resolve(id), marking.as_slice());
            trail.push(t);
        }
        // Unwinding through unfire retraces the same interned ids.
        for &t in trail.iter().rev() {
            id = store.unfire(&net, t, id);
            net.unfire_into(t, &mut marking);
            prop_assert_eq!(store.lookup(marking.as_slice()), Some(id));
        }
        let m0 = net.initial_marking();
        prop_assert_eq!(store.resolve(id), m0.as_slice());
    }

    /// Marking display/round-trip helpers are consistent.
    #[test]
    fn marking_helpers_are_consistent(counts in prop::collection::vec(0u32..9, 1..8)) {
        let m = Marking::from_counts(counts.clone());
        prop_assert_eq!(m.total_tokens(), counts.iter().map(|&c| c as u64).sum::<u64>());
        prop_assert_eq!(m.marked_places().len(), counts.iter().filter(|&&c| c > 0).count());
        prop_assert_eq!(m.len(), counts.len());
        let display = m.to_string();
        prop_assert!(!display.is_empty());
        if m.total_tokens() == 0 {
            prop_assert_eq!(display, "0");
        }
    }
}
