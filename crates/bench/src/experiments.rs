//! The experiment implementations behind the figure/table binaries.

use qss_codegen::{generate_task, CodeCostModel, GeneratedTask, TaskOptions};
use qss_core::{
    find_schedule_with_stats, schedule_system, ScheduleOptions, SystemSchedules, TerminationKind,
};
use qss_flowc::LinkedSystem;
use qss_petri::{NetBuilder, PetriNet, TransitionId, TransitionKind};
use qss_sim::{
    pfc_events, pfc_spec, pfc_system, run_multitask, run_singletask, size_report, CycleCostModel,
    MultiTaskConfig, PfcParams, SingleTaskConfig, SizeReport,
};
use std::fmt::Write as _;

/// Everything needed to run the PFC experiments: the linked system, its
/// schedules and the generated single task.
pub struct PfcSetup {
    /// Workload parameters.
    pub params: PfcParams,
    /// The linked PFC system.
    pub system: LinkedSystem,
    /// One schedule per uncontrollable input (there is exactly one, `init`).
    pub schedules: SystemSchedules,
    /// The generated single task.
    pub task: GeneratedTask,
}

/// Builds the PFC system, its schedule and the generated task.
///
/// # Panics
/// Panics if the embedded PFC specification fails to schedule, which would
/// indicate a regression in the scheduler.
pub fn pfc_setup(params: PfcParams) -> PfcSetup {
    let system = pfc_system(&params).expect("PFC links");
    let schedules =
        schedule_system(&system, &ScheduleOptions::default()).expect("PFC is schedulable");
    let task = generate_task(
        &system,
        &schedules.schedules[0],
        &schedules.channel_bounds,
        &TaskOptions::default(),
    )
    .expect("PFC task generation");
    PfcSetup {
        params,
        system,
        schedules,
        task,
    }
}

/// One row of Figure 20: the multi-task implementation at a given buffer
/// size, in cycles, for the three compiler profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure20Row {
    /// Channel buffer size.
    pub buffer_size: u32,
    /// Multi-task cycles per profile (`pfc`, `pfc-O`, `pfc-O2`).
    pub multitask_cycles: [u64; 3],
}

/// The data behind Figure 20.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure20Data {
    /// Number of frames transmitted.
    pub frames: usize,
    /// One row per buffer size.
    pub rows: Vec<Figure20Row>,
    /// Single generated task cycles per profile (buffer size is fixed to
    /// the unit bounds computed by the scheduler).
    pub singletask_cycles: [u64; 3],
}

/// Reproduces Figure 20: execution time of the four-task implementation as
/// a function of the channel buffer size, against the single generated
/// task, for the three compiler profiles.
pub fn figure20(setup: &PfcSetup, frames: usize, buffer_sizes: &[u32]) -> Figure20Data {
    let events = pfc_events(frames);
    let profiles = CycleCostModel::profiles();
    let singletask_cycles = profiles.map(|profile| {
        run_singletask(
            &setup.system,
            &setup.schedules.schedules,
            &events,
            &SingleTaskConfig::new(profile),
        )
        .expect("single-task run")
        .cycles
    });
    let rows = buffer_sizes
        .iter()
        .map(|&buffer_size| Figure20Row {
            buffer_size,
            multitask_cycles: profiles.map(|profile| {
                run_multitask(
                    &setup.system,
                    &events,
                    &MultiTaskConfig::new(buffer_size, profile),
                )
                .expect("multi-task run")
                .cycles
            }),
        })
        .collect();
    Figure20Data {
        frames,
        rows,
        singletask_cycles,
    }
}

/// Renders Figure 20 as a text table.
pub fn render_figure20(data: &Figure20Data) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 20 — execution cycles vs. channel buffer size ({} frames)",
        data.frames
    );
    let _ = writeln!(
        out,
        "{:>8} | {:>12} {:>12} {:>12}",
        "buffer", "pfc", "pfc-O", "pfc-O2"
    );
    let _ = writeln!(out, "{}", "-".repeat(52));
    for row in &data.rows {
        let _ = writeln!(
            out,
            "{:>8} | {:>12} {:>12} {:>12}",
            row.buffer_size,
            row.multitask_cycles[0],
            row.multitask_cycles[1],
            row.multitask_cycles[2]
        );
    }
    let _ = writeln!(
        out,
        "{:>8} | {:>12} {:>12} {:>12}   <- single generated task (unit buffers)",
        "1 task", data.singletask_cycles[0], data.singletask_cycles[1], data.singletask_cycles[2]
    );
    let best = data
        .rows
        .iter()
        .map(|r| r.multitask_cycles[0])
        .min()
        .unwrap_or(0);
    let worst = data
        .rows
        .iter()
        .map(|r| r.multitask_cycles[0])
        .max()
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "speed-up of the single task (pfc profile): {:.1}x (best 4-task config) to {:.1}x (worst)",
        best as f64 / data.singletask_cycles[0].max(1) as f64,
        worst as f64 / data.singletask_cycles[0].max(1) as f64
    );
    out
}

/// One row of Table 1: cycle counts for a given number of frames.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Number of frames transmitted.
    pub frames: usize,
    /// `(single-task kcycles, four-task kcycles, ratio)` per profile.
    pub per_profile: [(u64, u64, f64); 3],
}

/// Reproduces Table 1: thousands of cycles for the single task and the
/// four-process implementation (buffers of size 100) over varying frame
/// counts.
pub fn table1(setup: &PfcSetup, frame_counts: &[usize]) -> Vec<Table1Row> {
    let profiles = CycleCostModel::profiles();
    frame_counts
        .iter()
        .map(|&frames| {
            let events = pfc_events(frames);
            let per_profile = profiles.map(|profile| {
                let single = run_singletask(
                    &setup.system,
                    &setup.schedules.schedules,
                    &events,
                    &SingleTaskConfig::new(profile),
                )
                .expect("single-task run");
                let multi =
                    run_multitask(&setup.system, &events, &MultiTaskConfig::new(100, profile))
                        .expect("multi-task run");
                let ratio = multi.cycles as f64 / single.cycles.max(1) as f64;
                (single.kcycles(), multi.kcycles(), ratio)
            });
            Table1Row {
                frames,
                per_profile,
            }
        })
        .collect()
}

/// Renders Table 1 as a text table.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — kilocycles, single task vs. 4 processes (buffers of 100)"
    );
    let _ = writeln!(
        out,
        "{:>7} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6}",
        "frames",
        "1task",
        "4procs",
        "ratio",
        "1task",
        "4procs",
        "ratio",
        "1task",
        "4procs",
        "ratio"
    );
    let _ = writeln!(
        out,
        "{:>7} | {:^24} | {:^24} | {:^24}",
        "", "pfc", "pfc-O", "pfc-O2"
    );
    let _ = writeln!(out, "{}", "-".repeat(88));
    for row in rows {
        let _ = write!(out, "{:>7} |", row.frames);
        for (single, multi, ratio) in row.per_profile {
            let _ = write!(out, " {single:>8} {multi:>8} {ratio:>6.1} |");
        }
        let _ = writeln!(out);
    }
    out
}

/// The data behind Table 2: code sizes under the three profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Data {
    /// One size report per profile.
    pub reports: Vec<SizeReport>,
}

/// Reproduces Table 2: estimated object-code size of the generated task
/// against the four processes compiled as separate tasks with inlined
/// communication primitives.
pub fn table2(setup: &PfcSetup) -> Table2Data {
    let spec = pfc_spec(&setup.params);
    let reports = CodeCostModel::profiles()
        .iter()
        .map(|model| size_report(&setup.system, spec.processes(), &setup.task, model, true))
        .collect();
    Table2Data { reports }
}

/// Renders Table 2 as a text table.
pub fn render_table2(data: &Table2Data) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — estimated code size in bytes (inlined communication primitives)"
    );
    let _ = writeln!(
        out,
        "{:>8} | {:>7} | {:>7} {:>7} {:>7} {:>7} {:>8} | {:>6}",
        "profile", "1 task", "contr", "prod", "filt", "cons", "total", "ratio"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for report in &data.reports {
        let by_name = |name: &str| {
            report
                .per_process
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| *s)
                .unwrap_or(0)
        };
        let _ = writeln!(
            out,
            "{:>8} | {:>7} | {:>7} {:>7} {:>7} {:>7} {:>8} | {:>6.1}",
            report.profile,
            report.task,
            by_name("controller"),
            by_name("producer"),
            by_name("filter"),
            by_name("consumer"),
            report.processes_total,
            report.ratio
        );
    }
    out
}

/// One row of the Figure 7 comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure7Row {
    /// Divider parameter `k`.
    pub k: u32,
    /// Outcome with a fixed a-priori place bound of 2 (a constant that does
    /// not grow with `k`): `Some(nodes explored)` if a schedule was found.
    pub fixed_bound: Option<usize>,
    /// The smallest uniform place bound for which the bounded search finds
    /// a schedule — it has to grow with `k`, showing that no constant bound
    /// works for the whole family.
    pub minimal_working_bound: Option<u32>,
    /// Nodes explored by the irrelevant-marking criterion (no user bound).
    pub irrelevance: Option<usize>,
}

/// Reproduces the Figure 7 experiment: the divider net is schedulable with
/// the irrelevance criterion but defeats a-priori place bounds chosen from
/// the maximal place degree.
pub fn figure7(ks: &[u32]) -> Vec<Figure7Row> {
    ks.iter()
        .map(|&k| {
            let (net, source) = divider_net(k);
            let with_bound = |bound: u32| {
                let opts = ScheduleOptions {
                    termination: TerminationKind::PlaceBounds { default: bound },
                    ..Default::default()
                };
                find_schedule_with_stats(&net, source, &opts)
                    .ok()
                    .map(|(_, st)| st.nodes_created)
            };
            let fixed_bound = with_bound(2);
            let minimal_working_bound = (1..=2 * k).find(|&b| with_bound(b).is_some());
            let irrelevance = find_schedule_with_stats(&net, source, &ScheduleOptions::default())
                .ok()
                .map(|(_, st)| st.nodes_created);
            Figure7Row {
                k,
                fixed_bound,
                minimal_working_bound,
                irrelevance,
            }
        })
        .collect()
}

/// The divider chain used by the Figure 7 comparison: transition `b`
/// divides the firings of `a` by `k` and `c` divides them by `k` again, so
/// `p1` must accumulate up to `k` tokens and `p2` up to `k` tokens while
/// the chained division forces `a` to fire `k²` times per cycle — more
/// than any constant bound proportional to the place degrees.
pub fn divider_net(k: u32) -> (PetriNet, TransitionId) {
    let mut b = NetBuilder::new("divider");
    let p1 = b.place("p1", 0);
    let p2 = b.place("p2", 0);
    let a = b.transition("a", TransitionKind::UncontrollableSource);
    let tb = b.transition("b", TransitionKind::Internal);
    let tc = b.transition("c", TransitionKind::Internal);
    b.arc_t2p(a, p1, 1);
    b.arc_p2t(p1, tb, k);
    b.arc_t2p(tb, p2, 1);
    b.arc_p2t(p2, tc, k);
    let net = b.build().expect("divider net builds");
    let a = net.transition_by_name("a").expect("source exists");
    (net, a)
}

/// Renders the Figure 7 comparison.
pub fn render_figure7(rows: &[Figure7Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — a-priori place bounds vs. the irrelevance criterion on the divider family"
    );
    let _ = writeln!(
        out,
        "{:>4} | {:>20} | {:>18} | {:>20}",
        "k", "fixed bound 2", "min working bound", "irrelevance (nodes)"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for row in rows {
        let fmt = |o: &Option<usize>| match o {
            Some(n) => format!("schedule, {n} nodes"),
            None => "NO SCHEDULE".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>4} | {:>20} | {:>18} | {:>20}",
            row.k,
            fmt(&row.fixed_bound),
            row.minimal_working_bound
                .map(|b| b.to_string())
                .unwrap_or_else(|| "none".to_string()),
            fmt(&row.irrelevance)
        );
    }
    out
}

/// One row of the heuristic ablation: search effort with and without the
/// T-invariant / ordering heuristics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AblationRow {
    /// Name of the net.
    pub name: String,
    /// `(tree nodes, schedule nodes)` with all heuristics enabled.
    pub with_heuristics: (usize, usize),
    /// `(tree nodes, schedule nodes)` with heuristics disabled.
    pub without_heuristics: (usize, usize),
}

/// Ablation of the search heuristics (Sec. 5.5) on the PFC net and the
/// divider nets.
pub fn ablation() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    let mut add = |name: &str, net: &PetriNet, source: TransitionId| {
        let with = find_schedule_with_stats(net, source, &ScheduleOptions::default())
            .map(|(s, st)| (st.nodes_created, s.num_nodes()))
            .unwrap_or((usize::MAX, 0));
        let without_opts = ScheduleOptions {
            // Keep the heuristic-free search bounded: reporting "failed"
            // after a modest budget is the interesting data point.
            max_nodes: 50_000,
            ..ScheduleOptions::default().without_heuristics()
        };
        let without = find_schedule_with_stats(net, source, &without_opts)
            .map(|(s, st)| (st.nodes_created, s.num_nodes()))
            .unwrap_or((usize::MAX, 0));
        rows.push(AblationRow {
            name: name.to_string(),
            with_heuristics: with,
            without_heuristics: without,
        });
    };
    for k in [3u32, 5, 8] {
        let (net, source) = divider_net(k);
        add(&format!("divider k={k}"), &net, source);
    }
    let system = pfc_system(&PfcParams::tiny()).expect("PFC links");
    let source = system.uncontrollable_sources()[0];
    add("pfc (tiny frames)", &system.net, source);
    rows
}

/// Renders the ablation table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation — search-tree nodes with / without the Sec. 5.5 heuristics"
    );
    let _ = writeln!(
        out,
        "{:>18} | {:>20} | {:>20}",
        "net", "with (tree/sched)", "without (tree/sched)"
    );
    let _ = writeln!(out, "{}", "-".repeat(66));
    for row in rows {
        let fmt = |(tree, sched): (usize, usize)| {
            if tree == usize::MAX {
                "failed".to_string()
            } else {
                format!("{tree} / {sched}")
            }
        };
        let _ = writeln!(
            out,
            "{:>18} | {:>20} | {:>20}",
            row.name,
            fmt(row.with_heuristics),
            fmt(row.without_heuristics)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure20_shows_single_task_advantage() {
        let setup = pfc_setup(PfcParams::tiny());
        let data = figure20(&setup, 2, &[1, 4, 16]);
        assert_eq!(data.rows.len(), 3);
        // Larger buffers never slow the 4-task system down.
        assert!(data.rows[0].multitask_cycles[0] >= data.rows[2].multitask_cycles[0]);
        // The single task beats every 4-task configuration in every profile.
        for row in &data.rows {
            for profile in 0..3 {
                assert!(row.multitask_cycles[profile] > data.singletask_cycles[profile]);
            }
        }
        let text = render_figure20(&data);
        assert!(text.contains("Figure 20"));
        assert!(text.contains("speed-up"));
    }

    #[test]
    fn table1_ratios_grow_with_optimisation() {
        let setup = pfc_setup(PfcParams::tiny());
        let rows = table1(&setup, &[2, 4]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let (_, _, ratio_pfc) = row.per_profile[0];
            let (_, _, ratio_o2) = row.per_profile[2];
            assert!(ratio_pfc > 1.0);
            // Optimisation shrinks computation but not OS overhead, so the
            // single-task advantage grows (3.9 -> 5.2 in the paper).
            assert!(ratio_o2 > ratio_pfc);
        }
        assert!(render_table1(&rows).contains("Table 1"));
    }

    #[test]
    fn table2_single_task_is_much_smaller() {
        let setup = pfc_setup(PfcParams::tiny());
        let data = table2(&setup);
        assert_eq!(data.reports.len(), 3);
        for report in &data.reports {
            assert_eq!(report.per_process.len(), 4);
            assert!(report.ratio > 3.0, "ratio {} too small", report.ratio);
        }
        assert!(render_table2(&data).contains("Table 2"));
    }

    #[test]
    fn figure7_place_bounds_fail_where_irrelevance_succeeds() {
        let rows = figure7(&[3, 5]);
        for row in &rows {
            assert!(
                row.irrelevance.is_some(),
                "irrelevance must schedule k={}",
                row.k
            );
            // A constant bound that does not grow with k fails...
            assert!(
                row.fixed_bound.is_none(),
                "the constant bound should fail for k={}",
                row.k
            );
            // ... and the smallest working bound grows with k.
            assert_eq!(row.minimal_working_bound, Some(row.k));
        }
        assert!(render_figure7(&rows).contains("Figure 7"));
    }

    #[test]
    fn ablation_runs_on_all_nets() {
        let rows = ablation();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.with_heuristics.0 < usize::MAX);
        }
        assert!(render_ablation(&rows).contains("Ablation"));
    }
}
