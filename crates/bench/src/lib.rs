//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation section (Sec. 8) plus the ablation studies called out in
//! `DESIGN.md`.
//!
//! Each experiment has a plain function returning structured rows (used by
//! both the command-line binaries and the Criterion benchmarks) and a
//! `render_*` helper producing the text table printed by the binaries.
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Figure 20 (cycles vs. buffer size) | [`figure20`] | `cargo run -p qss-bench --release --bin figure20` |
//! | Table 1 (cycles vs. frame count) | [`table1`] | `... --bin table1` |
//! | Table 2 (code size) | [`table2`] | `... --bin table2` |
//! | Figure 7 (irrelevance vs. place bounds) | [`figure7`] | `... --bin figure7` |
//! | Heuristic ablations | [`ablation`] | `... --bin ablation` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod testgen;

pub use experiments::{
    ablation, figure20, figure7, pfc_setup, render_ablation, render_figure20, render_figure7,
    render_table1, render_table2, table1, table2, AblationRow, Figure20Data, Figure20Row,
    Figure7Row, PfcSetup, Table1Row, Table2Data,
};
