//! Shared random-net generator for the generative differential suites.
//!
//! The differential tests pit the incremental interned engine against the
//! `qss_core::reference` oracle on randomly generated nets. The generator
//! lives here (rather than inside one test file) so every suite — the
//! root differential tests, the kernel property tests and ad-hoc bench
//! experiments — draws from the same distribution, and so the strategy
//! can implement *domain-aware shrinking*: a failing net is minimized by
//! dropping arcs, emptying initial markings and flattening weights, which
//! turns a five-transition counterexample into the two-arc core that
//! actually disagrees.

use proptest::{Strategy, TestRng};
use qss_petri::{NetBuilder, PetriNet, TransitionId, TransitionKind};

/// A random net description: one uncontrollable source feeding place 0,
/// plus `arcs` internal transitions each consuming from one place and
/// producing into another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomNet {
    /// Initial tokens per place (also fixes the place count).
    pub initial: Vec<u32>,
    /// Weight of the arc from the source into place 0.
    pub source_weight: u32,
    /// Internal transitions as `(from-place, to-place, consume, produce)`.
    pub arcs: Vec<(usize, usize, u32, u32)>,
}

/// The shape of net a [`RandomNetStrategy`] generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetProfile {
    /// 2–4 places, 1–5 internal transitions, initial tokens in 0–1: the
    /// small, densely connected nets the differential suite has always
    /// run on.
    #[default]
    Dense,
    /// 12–32 places with mostly empty initial markings and transitions
    /// scattered over the whole place range: wide, sparsely marked rows
    /// that stress the fixed-width marking slab (long strides, few marked
    /// cells, many distinct rows per search).
    Wide,
    /// Hundreds of places (96–256) with a few high-fan-in *hub* places
    /// that a large share of the arcs route through, plus deliberate
    /// preset duplication so choices nest into multi-member ECSs. Rows
    /// this wide push the enabledness kernels past the dense need-row cap
    /// into the sparse CSR fallback — the regime where chunked and scalar
    /// engines diverge most in shape, so where their equivalence needs
    /// the most pinning.
    Hub,
}

/// Strategy generating [`RandomNet`]s of a given [`NetProfile`].
///
/// Implemented directly (not via `prop_flat_map`) so that
/// [`Strategy::shrink`] can propose structurally smaller *nets* instead
/// of being blocked by the opaque mapping.
#[derive(Debug, Clone, Default)]
pub struct RandomNetStrategy {
    profile: NetProfile,
}

impl Strategy for RandomNetStrategy {
    type Value = RandomNet;

    fn generate(&self, rng: &mut TestRng) -> RandomNet {
        let (num_places, num_transitions) = match self.profile {
            NetProfile::Dense => (
                Strategy::generate(&(2usize..5), rng),
                Strategy::generate(&(1usize..6), rng),
            ),
            NetProfile::Wide => (
                Strategy::generate(&(12usize..33), rng),
                Strategy::generate(&(3usize..9), rng),
            ),
            NetProfile::Hub => (
                Strategy::generate(&(96usize..257), rng),
                Strategy::generate(&(16usize..42), rng),
            ),
        };
        let initial: Vec<u32> = (0..num_places)
            .map(|_| match self.profile {
                NetProfile::Dense => Strategy::generate(&(0u32..2), rng),
                // Sparse tokens: roughly one place in five is marked.
                NetProfile::Wide => {
                    if Strategy::generate(&(0u32..5), rng) == 0 {
                        1
                    } else {
                        0
                    }
                }
                // Very sparse: roughly one place in eight is marked.
                NetProfile::Hub => {
                    if Strategy::generate(&(0u32..8), rng) == 0 {
                        1
                    } else {
                        0
                    }
                }
            })
            .collect();
        let arcs: Vec<(usize, usize, u32, u32)> = match self.profile {
            NetProfile::Dense | NetProfile::Wide => (0..num_transitions)
                .map(|_| {
                    (
                        Strategy::generate(&(0..num_places), rng),
                        Strategy::generate(&(0..num_places), rng),
                        Strategy::generate(&(1u32..3), rng),
                        Strategy::generate(&(1u32..3), rng),
                    )
                })
                .collect(),
            NetProfile::Hub => {
                // A few high-fan-in hub places attract ~40% of the arc
                // endpoints, and a third of the transitions duplicate the
                // previous preset exactly — identical presets land in one
                // ECS, so the duplicates nest data-dependent choices.
                let hubs: Vec<usize> = (0..Strategy::generate(&(2usize..7), rng))
                    .map(|_| Strategy::generate(&(0..num_places), rng))
                    .collect();
                let pick_place = |rng: &mut TestRng| -> usize {
                    if Strategy::generate(&(0u32..5), rng) < 2 {
                        hubs[Strategy::generate(&(0..hubs.len()), rng)]
                    } else {
                        Strategy::generate(&(0..num_places), rng)
                    }
                };
                let mut arcs: Vec<(usize, usize, u32, u32)> = Vec::with_capacity(num_transitions);
                for _ in 0..num_transitions {
                    let (from, consume) = match arcs.last() {
                        Some(&(prev_from, _, prev_consume, _))
                            if Strategy::generate(&(0u32..3), rng) == 0 =>
                        {
                            (prev_from, prev_consume)
                        }
                        _ => (pick_place(rng), Strategy::generate(&(1u32..3), rng)),
                    };
                    let to = pick_place(rng);
                    let produce = Strategy::generate(&(1u32..3), rng);
                    arcs.push((from, to, consume, produce));
                }
                arcs
            }
        };
        let source_weight = Strategy::generate(&(1u32..3), rng);
        RandomNet {
            initial,
            source_weight,
            arcs,
        }
    }

    /// Domain-aware shrinking: drop whole transitions first (the biggest
    /// structural simplification), then empty initially marked places,
    /// then flatten arc and source weights to 1.
    fn shrink(&self, value: &RandomNet) -> Vec<RandomNet> {
        let mut out = Vec::new();
        for i in 0..value.arcs.len() {
            let mut next = value.clone();
            next.arcs.remove(i);
            out.push(next);
        }
        for (i, &tokens) in value.initial.iter().enumerate() {
            if tokens > 0 {
                let mut next = value.clone();
                next.initial[i] = 0;
                out.push(next);
            }
        }
        for (i, &(_, _, consume, produce)) in value.arcs.iter().enumerate() {
            if consume > 1 {
                let mut next = value.clone();
                next.arcs[i].2 = 1;
                out.push(next);
            }
            if produce > 1 {
                let mut next = value.clone();
                next.arcs[i].3 = 1;
                out.push(next);
            }
        }
        if value.source_weight > 1 {
            let mut next = value.clone();
            next.source_weight = 1;
            out.push(next);
        }
        out
    }
}

/// The dense-profile strategy the differential suites have always used.
pub fn random_net_strategy() -> RandomNetStrategy {
    RandomNetStrategy {
        profile: NetProfile::Dense,
    }
}

/// The wide-profile strategy (many places, sparse tokens) that stresses
/// the fixed-width marking slab.
pub fn wide_net_strategy() -> RandomNetStrategy {
    RandomNetStrategy {
        profile: NetProfile::Wide,
    }
}

/// The hub-profile strategy (hundreds of places, high-fan-in hubs, nested
/// choices) that pushes the enabledness kernels into their sparse CSR
/// fallback.
pub fn hub_net_strategy() -> RandomNetStrategy {
    RandomNetStrategy {
        profile: NetProfile::Hub,
    }
}

/// Builds the Petri net described by `desc` and returns it together with
/// its uncontrollable source transition.
pub fn build_random(desc: &RandomNet) -> (PetriNet, TransitionId) {
    let mut b = NetBuilder::new("random");
    let places: Vec<_> = desc
        .initial
        .iter()
        .enumerate()
        .map(|(i, &tokens)| b.place(format!("p{i}"), tokens))
        .collect();
    let src = b.transition("src", TransitionKind::UncontrollableSource);
    b.arc_t2p(src, places[0], desc.source_weight);
    for (i, (from, to, consume, produce)) in desc.arcs.iter().enumerate() {
        let t = b.transition(format!("t{i}"), TransitionKind::Internal);
        b.arc_p2t(places[*from], t, *consume);
        b.arc_t2p(t, places[*to], *produce);
    }
    let net = b.build().expect("random net builds");
    let src = net.transition_by_name("src").unwrap();
    (net, src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_nets_build_and_shrink_within_the_domain() {
        for strategy in [
            random_net_strategy(),
            wide_net_strategy(),
            hub_net_strategy(),
        ] {
            let mut rng = TestRng::new("testgen-domain");
            for _ in 0..64 {
                let desc = strategy.generate(&mut rng);
                let (net, src) = build_random(&desc);
                assert_eq!(net.num_places(), desc.initial.len());
                assert_eq!(net.num_transitions(), desc.arcs.len() + 1);
                assert!(net.uncontrollable_sources().contains(&src));
                for cand in strategy.shrink(&desc) {
                    // Every shrink candidate stays buildable and is simpler
                    // in at least one dimension.
                    let (cnet, _) = build_random(&cand);
                    assert!(cnet.num_transitions() <= net.num_transitions());
                    assert_ne!(cand, desc);
                }
            }
        }
    }

    #[test]
    fn wide_profile_is_wide_and_sparse() {
        let strategy = wide_net_strategy();
        let mut rng = TestRng::new("testgen-wide");
        let (mut total_places, mut total_marked) = (0usize, 0usize);
        for _ in 0..32 {
            let desc = strategy.generate(&mut rng);
            assert!(desc.initial.len() >= 12, "wide nets have many places");
            total_places += desc.initial.len();
            total_marked += desc.initial.iter().filter(|&&c| c > 0).count();
        }
        // Sparse: on average well under a third of the places start marked.
        assert!(total_marked * 3 < total_places);
    }

    #[test]
    fn hub_profile_has_hubs_and_nested_choices() {
        use qss_petri::EcsInfo;
        let strategy = hub_net_strategy();
        let mut rng = TestRng::new("testgen-hub");
        let mut nets_with_multi_ecs = 0usize;
        let mut nets_with_hub = 0usize;
        let samples = 32;
        for _ in 0..samples {
            let desc = strategy.generate(&mut rng);
            assert!(desc.initial.len() >= 96, "hub nets have hundreds of places");
            let (net, _) = build_random(&desc);
            let ecs = EcsInfo::compute(&net);
            // Preset duplication creates multi-member ECSs (nested choices).
            if ecs.ecs_ids().any(|e| ecs.members(e).len() > 1) {
                nets_with_multi_ecs += 1;
            }
            // Hub places concentrate fan-in/fan-out well above uniform.
            let mut fan = vec![0usize; desc.initial.len()];
            for &(from, to, _, _) in &desc.arcs {
                fan[from] += 1;
                fan[to] += 1;
            }
            if fan.iter().any(|&f| f >= 5) {
                nets_with_hub += 1;
            }
        }
        assert!(nets_with_multi_ecs * 2 > samples, "most nets nest choices");
        assert!(nets_with_hub * 2 > samples, "most nets grow a hub");
    }

    #[test]
    fn shrinking_reaches_a_fixpoint() {
        // Repeatedly taking the first candidate terminates (no cycles).
        let strategy = random_net_strategy();
        let mut rng = TestRng::new("testgen-fixpoint");
        let mut desc = strategy.generate(&mut rng);
        for _ in 0..1000 {
            match strategy.shrink(&desc).into_iter().next() {
                Some(next) => desc = next,
                None => return,
            }
        }
        panic!("shrinking did not terminate");
    }
}
