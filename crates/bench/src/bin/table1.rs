//! Regenerates Table 1: kilocycles for the single generated task and the
//! 4-process implementation (buffers of size 100) over varying numbers of
//! frames, for the three compiler profiles.
//!
//! Usage: `cargo run --release -p qss-bench --bin table1 [max_frames]`
//! (default: the paper's 10 / 50 / 100 / 500 / 1000 frame counts).

use qss_bench::{pfc_setup, render_table1, table1};
use qss_sim::PfcParams;

fn main() {
    let max_frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let frame_counts: Vec<usize> = [10usize, 50, 100, 500, 1000]
        .into_iter()
        .filter(|&f| f <= max_frames)
        .collect();
    let setup = pfc_setup(PfcParams::default());
    let rows = table1(&setup, &frame_counts);
    print!("{}", render_table1(&rows));
}
