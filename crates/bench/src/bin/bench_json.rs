//! Emits `BENCH_schedule.json`: median wall-time per schedule-search
//! benchmark case for the incremental path-state engine *and* the
//! recompute-from-scratch reference oracle, plus the speedup. This file
//! seeds the perf trajectory every future performance PR is measured
//! against.
//!
//! The incremental side is measured through the production path — a
//! [`SearchContext`] built once per net with the EP search repeated on it,
//! which is how `schedule_system` and a long-running scheduling service
//! use the engine. The reference side re-derives everything per call, as
//! the original engine did.
//!
//! Run with `cargo run -p qss_bench --release --bin bench_json`.
//! Set `QSS_BENCH_FAST=1` for a quick smoke run with fewer samples.

use qss_bench::experiments::divider_net;
use qss_core::{reference, ScheduleOptions, SearchContext, TerminationKind};
use qss_petri::{t_invariant_basis, t_invariant_basis_dense};
use qss_sim::{pfc_system, PfcParams};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// One measured case: the incremental engine against the oracle.
struct CaseResult {
    name: String,
    median_ms: f64,
    reference_median_ms: f64,
}

/// Median wall-clock milliseconds of `f` over `samples` runs (after one
/// warm-up run).
fn median_ms(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let samples = if std::env::var_os("QSS_BENCH_FAST").is_some() {
        3
    } else {
        15
    };
    let mut cases: Vec<CaseResult> = Vec::new();

    for k in [4u32, 8, 12] {
        let (net, source) = divider_net(k);
        let context = SearchContext::new(&net);
        let options = ScheduleOptions::default();
        cases.push(CaseResult {
            name: format!("schedule_search/divider_irrelevance/{k}"),
            median_ms: median_ms(samples, || {
                black_box(context.find_schedule(&net, source, &options).unwrap());
            }),
            reference_median_ms: median_ms(samples, || {
                black_box(reference::find_schedule(&net, source, &options).unwrap());
            }),
        });
    }

    {
        let k = 12u32;
        let (net, source) = divider_net(k);
        let context = SearchContext::new(&net);
        let options = ScheduleOptions {
            termination: TerminationKind::PlaceBounds { default: 2 * k },
            ..Default::default()
        };
        cases.push(CaseResult {
            name: format!("schedule_search/divider_place_bounds/{k}"),
            median_ms: median_ms(samples, || {
                black_box(context.find_schedule(&net, source, &options).unwrap());
            }),
            reference_median_ms: median_ms(samples, || {
                black_box(reference::find_schedule(&net, source, &options).unwrap());
            }),
        });
    }

    {
        let system = pfc_system(&PfcParams::tiny()).expect("PFC links");
        let source = system.uncontrollable_sources()[0];
        let context = SearchContext::new(&system.net);
        let options = ScheduleOptions::default();
        cases.push(CaseResult {
            name: "schedule_search/pfc_with_heuristics".to_string(),
            median_ms: median_ms(samples, || {
                black_box(
                    context
                        .find_schedule(&system.net, source, &options)
                        .unwrap(),
                );
            }),
            reference_median_ms: median_ms(samples, || {
                black_box(reference::find_schedule(&system.net, source, &options).unwrap());
            }),
        });

        // The cold-start analysis cost: the sparse-row Farkas elimination
        // against the retained dense oracle (same row cap as the
        // production `EcsSorter`). This is what a scheduling service pays
        // the first time it sees a net, before `SearchContext` reuse
        // amortises it away.
        cases.push(CaseResult {
            name: "analysis/t_invariant_basis_pfc".to_string(),
            median_ms: median_ms(samples, || {
                black_box(t_invariant_basis(&system.net, 50_000));
            }),
            reference_median_ms: median_ms(samples, || {
                black_box(t_invariant_basis_dense(&system.net, 50_000));
            }),
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"suite\": \"schedule_search\",\n");
    let _ = writeln!(json, "  \"samples_per_case\": {samples},");
    json.push_str("  \"command\": \"cargo run -p qss_bench --release --bin bench_json\",\n");
    json.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let speedup = case.reference_median_ms / case.median_ms;
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"median_ms\": {:.4}, \"reference_median_ms\": {:.4}, \"speedup_vs_reference\": {:.2}}}",
            case.name, case.median_ms, case.reference_median_ms, speedup
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_schedule.json".to_string());
    std::fs::write(&path, &json).expect("write BENCH_schedule.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
