//! Emits `BENCH_schedule.json`: best-of-K and median wall-time per
//! schedule-search benchmark case for the incremental path-state engine
//! *and* the recompute-from-scratch reference oracle, plus the speedup.
//! This file seeds the perf trajectory every future performance PR is
//! measured against.
//!
//! Every case is measured with explicit warmup runs followed by K timed
//! samples, and **both** the best and the median sample are reported: on
//! a noisy shared container the best-of-K is the trustworthy
//! regression signal (it approaches the true cost of the code, while the
//! median also absorbs scheduler noise), so compare `best_ms` across PRs
//! and use `median_ms` as the sanity check.
//!
//! The incremental side is measured through the production path — a
//! [`SearchContext`] built once per net with the EP search repeated on it,
//! which is how `schedule_system` and a long-running scheduling service
//! use the engine. The reference side re-derives everything per call, as
//! the original engine did. The `server/schedule_warm_vs_cold` case
//! closes the loop end-to-end: a real `qssd` over loopback TCP with its
//! context cache enabled (warm) against one with the cache disabled
//! (cold, the reference column).
//!
//! Run with `cargo run -p qss_bench --release --bin bench_json`.
//! Set `QSS_BENCH_FAST=1` for a quick smoke run with fewer samples.

use proptest::{Strategy, TestRng};
use qss_bench::experiments::divider_net;
use qss_bench::testgen::{build_random, hub_net_strategy, random_net_strategy, wide_net_strategy};
use qss_core::{reference, ScheduleOptions, SearchBudget, SearchContext, TerminationKind};
use qss_obs::{Observer, SpanId};
use qss_petri::{
    p_invariant_basis, p_invariant_basis_dense, structural_report, structural_report_dense,
    t_invariant_basis, t_invariant_basis_dense, EcsInfo, FxHashMap, KernelScratch, Marking,
    MarkingStore, NetKernels, StructuralLimits,
};
use qss_sim::{pfc_system, PfcParams};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured case: the incremental engine against the oracle.
struct CaseResult {
    name: String,
    /// For `kernel/*` cases, which enabledness engines the two columns
    /// ran (layout and cell width of the chunked side); `None` elsewhere.
    kernel: Option<String>,
    best_ms: f64,
    median_ms: f64,
    reference_best_ms: f64,
    reference_median_ms: f64,
}

/// `(best, median)` wall-clock milliseconds of `f` over `samples` timed
/// runs, after `warmup` untimed runs.
fn best_and_median_ms(warmup: usize, samples: usize, mut f: impl FnMut()) -> (f64, f64) {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[0], times[times.len() / 2])
}

/// The shape `qss_petri::MarkingStore` had before the flat slab: one
/// owned `Vec<u32>` per distinct marking behind the same hash-chained,
/// `FxHashMap`-indexed dedup structure (the same hasher the real store
/// uses, so the case measures only what flattening removed — the
/// per-distinct-marking heap allocation and the pointer chase on every
/// dedup comparison).
#[derive(Default)]
struct VecOfMarkingsInterner {
    markings: Vec<Marking>,
    index: FxHashMap<u64, u32>,
    same_hash: Vec<u32>,
}

impl VecOfMarkingsInterner {
    fn intern(&mut self, m: &Marking) -> u32 {
        let hash = m.path_hash();
        let mut cursor = self.index.get(&hash).copied().unwrap_or(u32::MAX);
        while cursor != u32::MAX {
            if &self.markings[cursor as usize] == m {
                return cursor;
            }
            cursor = self.same_hash[cursor as usize];
        }
        let id = self.markings.len() as u32;
        let prev = self.index.insert(hash, id).unwrap_or(u32::MAX);
        self.same_hash.push(prev);
        self.markings.push(m.clone());
        id
    }
}

/// Drives one deterministic intern-churn round: a scratch marking of
/// `WIDTH` places mutated in place and interned after every mutation
/// (the access pattern of the EP search's path tracker).
const CHURN_WIDTH: usize = 32;
const CHURN_INTERNS: usize = 8192;

fn churn_step(scratch: &mut [u32], i: usize) {
    // Monotone values make every mutated row previously unseen, so each
    // step takes the new-marking path — one heap allocation per step in
    // the Vec-of-Markings shape, a slab append in the flat store. The
    // driver re-interns every eighth row to exercise dedup hits too.
    scratch[i % CHURN_WIDTH] = i as u32;
}

/// The `server/schedule_warm_vs_cold` workload: a two-stage hot path
/// driven by the one uncontrollable input, inside a system with
/// `ballast` further controllable-input processes. The ballast inflates
/// the *net* (every process adds places, transitions and T-invariant
/// rows, so `SearchContext::new` is expensive) while staying out of the
/// single-source *schedule* (controllable inputs are only fired on
/// request, so the reaction — and the returned artifact — stays small).
/// That is the traffic shape where a context cache pays: big system,
/// small per-request reaction.
fn service_net_source(ballast: usize) -> String {
    let mut src = String::from(
        "SYSTEM warmcold {\n\
         \x20   CHANNEL hot.snd -> relay.rcv;\n\
         \x20   INPUT hot.rcv UNCONTROLLABLE;\n",
    );
    for i in 0..ballast {
        let _ = writeln!(src, "    INPUT b{i}.rcv CONTROLLABLE;");
    }
    src.push_str("}\n");
    for (name, body) in [("hot", "x + 1"), ("relay", "x * 2")] {
        let _ = writeln!(
            src,
            "PROCESS {name} (In DPORT rcv, Out DPORT snd) {{\n    int x;\n    \
             while (1) {{ READ_DATA(rcv, x, 1); WRITE_DATA(snd, {body}, 1); }}\n}}"
        );
    }
    for i in 0..ballast {
        let _ = writeln!(
            src,
            "PROCESS b{i} (In DPORT rcv, Out DPORT snd) {{\n    int x;\n    \
             while (1) {{ READ_DATA(rcv, x, 1); WRITE_DATA(snd, x + {i}, 1); }}\n}}"
        );
    }
    src
}

fn main() {
    let (warmup, samples) = if std::env::var_os("QSS_BENCH_FAST").is_some() {
        (1, 5)
    } else {
        (3, 25)
    };
    let mut cases: Vec<CaseResult> = Vec::new();
    let mut push_case_annotated =
        |name: String,
         kernel: Option<String>,
         mut f: Box<dyn FnMut()>,
         mut reference: Box<dyn FnMut()>| {
            let (best_ms, median_ms) = best_and_median_ms(warmup, samples, &mut f);
            let (reference_best_ms, reference_median_ms) =
                best_and_median_ms(warmup, samples, &mut reference);
            cases.push(CaseResult {
                name,
                kernel,
                best_ms,
                median_ms,
                reference_best_ms,
                reference_median_ms,
            });
        };
    let mut push_case = |name: String, f: Box<dyn FnMut()>, reference: Box<dyn FnMut()>| {
        push_case_annotated(name, None, f, reference);
    };

    for k in [4u32, 8, 12] {
        let (net, source) = divider_net(k);
        let context = SearchContext::new(&net);
        let options = ScheduleOptions::default();
        let (rnet, roptions) = (net.clone(), options.clone());
        push_case(
            format!("schedule_search/divider_irrelevance/{k}"),
            Box::new(move || {
                black_box(context.find_schedule(&net, source, &options).unwrap());
            }),
            Box::new(move || {
                black_box(reference::find_schedule(&rnet, source, &roptions).unwrap());
            }),
        );
    }

    {
        let k = 12u32;
        let (net, source) = divider_net(k);
        let context = SearchContext::new(&net);
        let options = ScheduleOptions {
            termination: TerminationKind::PlaceBounds { default: 2 * k },
            ..Default::default()
        };
        let (rnet, roptions) = (net.clone(), options.clone());
        push_case(
            format!("schedule_search/divider_place_bounds/{k}"),
            Box::new(move || {
                black_box(context.find_schedule(&net, source, &options).unwrap());
            }),
            Box::new(move || {
                black_box(reference::find_schedule(&rnet, source, &roptions).unwrap());
            }),
        );
    }

    {
        let system = pfc_system(&PfcParams::tiny()).expect("PFC links");
        let source = system.uncontrollable_sources()[0];
        let context = SearchContext::new(&system.net);
        let options = ScheduleOptions::default();
        let (rsystem, roptions) = (system.clone(), options.clone());
        let (bsystem, csystem) = (system.clone(), system.clone());
        let (dsystem, esystem) = (system.clone(), system.clone());
        let (fsystem, gsystem) = (system.clone(), system.clone());
        push_case(
            "schedule_search/pfc_with_heuristics".to_string(),
            Box::new(move || {
                black_box(
                    context
                        .find_schedule(&system.net, source, &options)
                        .unwrap(),
                );
            }),
            Box::new(move || {
                black_box(reference::find_schedule(&rsystem.net, source, &roptions).unwrap());
            }),
        );

        // The cold-start analysis cost: the sparse-row Farkas elimination
        // against the retained dense oracle (same row cap as the
        // production `EcsSorter`). This is what a scheduling service pays
        // the first time it sees a net, before `SearchContext` reuse
        // amortises it away.
        push_case(
            "analysis/t_invariant_basis_pfc".to_string(),
            Box::new(move || {
                black_box(t_invariant_basis(&bsystem.net, 50_000));
            }),
            Box::new(move || {
                black_box(t_invariant_basis_dense(&csystem.net, 50_000));
            }),
        );

        // The Farkas dual: the P-invariant basis over the same net with
        // the same row cap, sparse elimination against the dense oracle.
        // This is the other half of the analyzer's cold-start cost.
        push_case(
            "analysis/p_invariant_basis_pfc".to_string(),
            Box::new(move || {
                black_box(p_invariant_basis(&dsystem.net, 50_000));
            }),
            Box::new(move || {
                black_box(p_invariant_basis_dense(&esystem.net, 50_000));
            }),
        );

        // The full structural pre-pass `qssc analyze` and the `analyze`
        // server kind run per net: P-invariants, sur-invariant place
        // bounds, siphon/trap enumeration and the place/transition facts,
        // sparse against the dense-elimination oracle.
        let limits = StructuralLimits::default();
        let rlimits = limits.clone();
        push_case(
            "analysis/structural_report".to_string(),
            Box::new(move || {
                black_box(structural_report(&fsystem.net, &limits));
            }),
            Box::new(move || {
                black_box(structural_report_dense(&gsystem.net, &rlimits));
            }),
        );
    }

    {
        // The budget-overhead cases: the same searches with a fully armed
        // budget (deadline + cancellation flag, both unreachable) against
        // the plain unbudgeted call on the same context. The delta is the
        // whole cost of cooperative cancellation on the search hot path —
        // one step-counter increment per node expansion plus an amortised
        // clock/flag consultation every `CHECK_INTERVAL` steps — which the
        // budget layer promises is negligible.
        let far_deadline = Instant::now() + Duration::from_secs(3600);
        let armed = SearchBudget::unlimited()
            .with_deadline(far_deadline)
            .with_cancel(Arc::new(AtomicBool::new(false)));

        let (net, source) = divider_net(12);
        let context = SearchContext::new(&net);
        let options = ScheduleOptions::default();
        let (pnet, pcontext, poptions) = (net.clone(), SearchContext::new(&net), options.clone());
        let budget = armed.clone();
        push_case(
            "schedule_search/budget_overhead/divider_irrelevance_12".to_string(),
            Box::new(move || {
                black_box(
                    context
                        .find_schedule_with_stats_budgeted(&net, source, &options, &budget)
                        .unwrap(),
                );
            }),
            Box::new(move || {
                black_box(pcontext.find_schedule(&pnet, source, &poptions).unwrap());
            }),
        );

        let system = pfc_system(&PfcParams::tiny()).expect("PFC links");
        let source = system.uncontrollable_sources()[0];
        let context = SearchContext::new(&system.net);
        let options = ScheduleOptions::default();
        let (psystem, poptions) = (system.clone(), options.clone());
        let pcontext = SearchContext::new(&psystem.net);
        push_case(
            "schedule_search/budget_overhead/pfc_with_heuristics".to_string(),
            Box::new(move || {
                black_box(
                    context
                        .find_schedule_with_stats_budgeted(&system.net, source, &options, &armed)
                        .unwrap(),
                );
            }),
            Box::new(move || {
                black_box(
                    pcontext
                        .find_schedule(&psystem.net, source, &poptions)
                        .unwrap(),
                );
            }),
        );
    }

    {
        // The service case: one `schedule` request against a live `qssd`
        // over loopback TCP, warm vs cold. The "warm" server holds its
        // `SearchContext` cache (requests after the first reuse the
        // per-net analyses); the "reference" server runs with the cache
        // disabled (`cache_capacity: 0`), so every request re-derives the
        // ECS partition and T-invariant basis — the per-request cost the
        // ContextCache exists to amortise. Protocol and search work are
        // identical on both sides; the delta is context reuse alone.
        let source = service_net_source(48);
        let spawn = |cache_capacity: usize| {
            qss_server::Server::bind(qss_server::ServerConfig {
                workers: 2,
                queue_capacity: 16,
                cache_capacity,
                ..qss_server::ServerConfig::default()
            })
            .expect("bind loopback server")
            .spawn()
        };
        let warm = spawn(16);
        let cold = spawn(0);
        let mut warm_client = qss_server::Client::connect(warm.addr()).expect("connect warm");
        let mut cold_client = qss_server::Client::connect(cold.addr()).expect("connect cold");
        let (warm_source, cold_source) = (source.clone(), source);
        push_case(
            "server/schedule_warm_vs_cold".to_string(),
            Box::new(move || {
                black_box(
                    warm_client
                        .schedule(&warm_source, None)
                        .expect("warm schedule"),
                );
            }),
            Box::new(move || {
                black_box(
                    cold_client
                        .schedule(&cold_source, None)
                        .expect("cold schedule"),
                );
            }),
        );
        warm.shutdown_and_join().expect("warm server drains");
        cold.shutdown_and_join().expect("cold server drains");
    }

    {
        // The flat-slab interning microbench: a mutating scratch marking
        // interned after every mutation, against the pre-refactor
        // one-Vec-per-marking interner shape. This is the allocation the
        // flat arena removed from the search hot path.
        push_case(
            "store/intern_churn".to_string(),
            Box::new(move || {
                let mut store = MarkingStore::with_stride(CHURN_WIDTH);
                let mut scratch = vec![0u32; CHURN_WIDTH];
                for i in 0..CHURN_INTERNS {
                    churn_step(&mut scratch, i);
                    black_box(store.intern(&scratch));
                    if i % 8 == 0 {
                        black_box(store.intern(&scratch));
                    }
                }
                black_box(store.len());
            }),
            Box::new(move || {
                let mut store = VecOfMarkingsInterner::default();
                let mut scratch = Marking::from_counts(vec![0u32; CHURN_WIDTH]);
                for i in 0..CHURN_INTERNS {
                    churn_step(scratch.as_mut_slice(), i);
                    black_box(store.intern(&scratch));
                    if i % 8 == 0 {
                        black_box(store.intern(&scratch));
                    }
                }
                black_box(store.markings.len());
            }),
        );
    }

    {
        // The enabledness-kernel sweeps: the chunked need-row kernels
        // (`NetKernels::enabled_set_at`, bit-packed whole-net enabledness
        // in wide compares) against the scalar per-arc walk
        // (`is_enabled_at` per transition) on the same deterministic nets
        // and the same synthetic slab rows. One case per testgen profile:
        // `dense` (tiny strides, dense u32 rows), `wide` (medium strides,
        // still dense) and `hub` (hundreds of places — past the dense
        // row cap, so the sparse CSR fallback). The iteration counts keep
        // each sample in comfortably-timeable territory across profiles.
        for (profile, strategy, iters) in [
            ("dense", random_net_strategy(), 400usize),
            ("wide", wide_net_strategy(), 100),
            ("hub", hub_net_strategy(), 25),
        ] {
            let mut rng = TestRng::new(&format!("bench-kernel-{profile}"));
            let desc = strategy.generate(&mut rng);
            let (net, _source) = build_random(&desc);
            let ecs = EcsInfo::compute(&net);
            let kernels = NetKernels::compile(&net, &ecs, None);
            let stride = net.num_places();
            let kernel_note = format!(
                "chunked {} {:?} vs scalar per-arc",
                if kernels.is_dense() {
                    "dense"
                } else {
                    "sparse"
                },
                kernels.cell(),
            );
            // 256 deterministic slab rows with small counts, the regime
            // the search actually sweeps.
            let rows: Vec<u32> = (0..256 * stride)
                .map(|_| (rng.next_u64() % 4) as u32)
                .collect();
            let (scalar_net, scalar_rows) = (net.clone(), rows.clone());
            let mut scratch = KernelScratch::default();
            push_case_annotated(
                format!("kernel/enabled_sweep_{profile}"),
                Some(kernel_note),
                Box::new(move || {
                    let mut enabled = 0usize;
                    for _ in 0..iters {
                        for row in rows.chunks_exact(stride) {
                            enabled += kernels.enabled_set_at(row, &mut scratch).count();
                        }
                    }
                    black_box(enabled);
                }),
                Box::new(move || {
                    let mut enabled = 0usize;
                    for _ in 0..iters {
                        for row in scalar_rows.chunks_exact(stride) {
                            for t in scalar_net.transition_ids() {
                                if scalar_net.is_enabled_at(t, row) {
                                    enabled += 1;
                                }
                            }
                        }
                    }
                    black_box(enabled);
                }),
            );
        }
    }

    {
        // The observability tax, priced per request on three
        // representative workloads: the divider search, the PFC search
        // and the hub enabledness sweep. Each iteration wraps the
        // workload in exactly the bookkeeping `qssd` pays per request —
        // one clock read, one span begin/end pair and one histogram
        // record — against the bare workload as the reference column.
        // The `off` cases hold the disabled [`Observer`] (the promise is
        // `speedup_vs_reference` ~1.00: no-op observability is free);
        // the `on` cases arm the registry and a journal, pricing full
        // recording.
        let divider_work = || -> Box<dyn FnMut()> {
            let (net, source) = divider_net(8);
            let context = SearchContext::new(&net);
            let options = ScheduleOptions::default();
            Box::new(move || {
                black_box(context.find_schedule(&net, source, &options).unwrap());
            })
        };
        let pfc_work = || -> Box<dyn FnMut()> {
            let system = pfc_system(&PfcParams::tiny()).expect("PFC links");
            let source = system.uncontrollable_sources()[0];
            let context = SearchContext::new(&system.net);
            let options = ScheduleOptions::default();
            Box::new(move || {
                black_box(
                    context
                        .find_schedule(&system.net, source, &options)
                        .unwrap(),
                );
            })
        };
        let hub_work = || -> Box<dyn FnMut()> {
            let mut rng = TestRng::new("bench-obs-hub");
            let desc = hub_net_strategy().generate(&mut rng);
            let (net, _source) = build_random(&desc);
            let ecs = EcsInfo::compute(&net);
            let kernels = NetKernels::compile(&net, &ecs, None);
            let stride = net.num_places();
            let rows: Vec<u32> = (0..256 * stride)
                .map(|_| (rng.next_u64() % 4) as u32)
                .collect();
            let mut scratch = KernelScratch::default();
            Box::new(move || {
                let mut enabled = 0usize;
                for row in rows.chunks_exact(stride) {
                    enabled += kernels.enabled_set_at(row, &mut scratch).count();
                }
                black_box(enabled);
            })
        };
        let instrument = |observer: Observer, mut work: Box<dyn FnMut()>| -> Box<dyn FnMut()> {
            Box::new(move || {
                let started = observer.now_micros();
                let span = observer.span_begin("request kind=schedule", SpanId::NONE, "bench");
                work();
                observer.span_end(span, "request kind=schedule", "bench");
                let elapsed = observer.now_micros().saturating_sub(started);
                observer.histogram("latency_us.schedule").record(elapsed);
            })
        };
        type WorkFactory<'a> = &'a dyn Fn() -> Box<dyn FnMut()>;
        let workloads: [(&str, WorkFactory); 3] = [
            ("divider_irrelevance_8", &divider_work),
            ("pfc_with_heuristics", &pfc_work),
            ("hub_enabled_sweep", &hub_work),
        ];
        for (workload, factory) in workloads {
            for mode in ["off", "on"] {
                let observer = match mode {
                    "off" => Observer::disabled(),
                    _ => Observer::armed(4096),
                };
                push_case_annotated(
                    format!("obs/overhead_{mode}/{workload}"),
                    None,
                    instrument(observer, factory()),
                    factory(),
                );
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"suite\": \"schedule_search\",\n");
    let _ = writeln!(json, "  \"warmup_per_case\": {warmup},");
    let _ = writeln!(json, "  \"samples_per_case\": {samples},");
    json.push_str("  \"command\": \"cargo run -p qss_bench --release --bin bench_json\",\n");
    json.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let speedup = case.reference_best_ms / case.best_ms;
        let kernel = case
            .kernel
            .as_ref()
            .map(|k| format!("\"kernel\": \"{k}\", "))
            .unwrap_or_default();
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", {}\"best_ms\": {:.4}, \"median_ms\": {:.4}, \"reference_best_ms\": {:.4}, \"reference_median_ms\": {:.4}, \"speedup_vs_reference\": {:.2}}}",
            case.name,
            kernel,
            case.best_ms,
            case.median_ms,
            case.reference_best_ms,
            case.reference_median_ms,
            speedup
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_schedule.json".to_string());
    std::fs::write(&path, &json).expect("write BENCH_schedule.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
