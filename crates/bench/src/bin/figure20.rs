//! Regenerates Figure 20: execution cycles of the 4-task implementation as
//! a function of the channel buffer size, against the single generated
//! task, under the three compiler-optimisation profiles.
//!
//! Usage: `cargo run --release -p qss-bench --bin figure20 [frames]`
//! (default: 10 frames of 10×10 pixels, as in the paper).

use qss_bench::{figure20, pfc_setup, render_figure20};
use qss_sim::PfcParams;

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let setup = pfc_setup(PfcParams::default());
    let buffer_sizes = [1u32, 2, 5, 10, 20, 50, 100];
    let data = figure20(&setup, frames, &buffer_sizes);
    print!("{}", render_figure20(&data));
}
