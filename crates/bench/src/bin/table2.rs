//! Regenerates Table 2: estimated object-code size of the generated single
//! task against the four processes compiled as separate RTOS tasks with
//! inlined communication primitives.
//!
//! Usage: `cargo run --release -p qss-bench --bin table2`

use qss_bench::{pfc_setup, render_table2, table2};
use qss_sim::PfcParams;

fn main() {
    let setup = pfc_setup(PfcParams::default());
    let data = table2(&setup);
    print!("{}", render_table2(&data));
}
