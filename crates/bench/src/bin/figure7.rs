//! Regenerates the Figure 7 comparison: pruning the schedule search with
//! a-priori place bounds (which must grow with the divider parameter `k`)
//! versus the irrelevant-marking criterion (which needs no user input).
//!
//! Usage: `cargo run --release -p qss-bench --bin figure7`

use qss_bench::{figure7, render_figure7};

fn main() {
    let rows = figure7(&[2, 3, 5, 8, 13]);
    print!("{}", render_figure7(&rows));
}
