//! Ablation of the Sec. 5.5 search heuristics (T-invariant promising
//! vectors, source-last ordering, singleton-first ordering, greedy entering
//! points): search-tree size with and without them.
//!
//! Usage: `cargo run --release -p qss-bench --bin ablation`

use qss_bench::{ablation, render_ablation};

fn main() {
    let rows = ablation();
    print!("{}", render_ablation(&rows));
}
