//! Criterion benchmark of the code generator (Table 2 pipeline): schedule
//! decomposition into code segments and C emission for the PFC task, plus
//! the code-segment-sharing ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use qss_bench::pfc_setup;
use qss_codegen::{generate_task, SegmentGraph, TaskOptions};
use qss_sim::PfcParams;

fn bench_codegen(c: &mut Criterion) {
    let setup = pfc_setup(PfcParams::tiny());
    let schedule = &setup.schedules.schedules[0];
    let mut group = c.benchmark_group("codegen");
    group.sample_size(30);
    group.bench_function("segment_graph", |b| {
        b.iter(|| SegmentGraph::build(schedule, &setup.system.net).unwrap())
    });
    group.bench_function("generate_task_shared", |b| {
        b.iter(|| {
            generate_task(
                &setup.system,
                schedule,
                &setup.schedules.channel_bounds,
                &TaskOptions::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("generate_task_unshared", |b| {
        let options = TaskOptions {
            share_code_segments: false,
            ..Default::default()
        };
        b.iter(|| {
            generate_task(
                &setup.system,
                schedule,
                &setup.schedules.channel_bounds,
                &options,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
