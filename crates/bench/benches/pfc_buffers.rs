//! Criterion benchmark behind Figure 20: wall-clock cost of simulating the
//! PFC application under the 4-task RTOS model at different buffer sizes
//! versus the generated single task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qss_bench::pfc_setup;
use qss_sim::{
    pfc_events, run_multitask, run_singletask, CycleCostModel, MultiTaskConfig, PfcParams,
    SingleTaskConfig,
};

fn bench_buffer_sizes(c: &mut Criterion) {
    let setup = pfc_setup(PfcParams::tiny());
    let events = pfc_events(4);
    let mut group = c.benchmark_group("figure20_pfc_buffers");
    group.sample_size(10);
    for buffer in [1u32, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("multitask", buffer),
            &buffer,
            |b, &buffer| {
                b.iter(|| {
                    run_multitask(
                        &setup.system,
                        &events,
                        &MultiTaskConfig::new(buffer, CycleCostModel::unoptimized()),
                    )
                    .expect("multitask run")
                })
            },
        );
    }
    group.bench_function("singletask", |b| {
        b.iter(|| {
            run_singletask(
                &setup.system,
                &setup.schedules.schedules,
                &events,
                &SingleTaskConfig::new(CycleCostModel::unoptimized()),
            )
            .expect("singletask run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_buffer_sizes);
criterion_main!(benches);
