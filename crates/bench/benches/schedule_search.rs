//! Criterion benchmark of the compile-time scheduler itself: the EP/EP_ECS
//! search on the PFC net and on the Figure 7 divider family, including the
//! heuristic ablation (Sec. 5.5), the termination-criterion ablation
//! (Sec. 4.4) and the incremental-engine-vs-reference-oracle comparison
//! that `BENCH_schedule.json` tracks over time.
//!
//! The incremental cases run through the production path (a
//! [`SearchContext`] built once, searches repeated on it); the
//! `*_reference` cases run `qss_core::reference`, which re-derives every
//! per-node and per-net analysis from scratch exactly as the original
//! engine did.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qss_bench::experiments::divider_net;
use qss_core::{reference, ScheduleOptions, SearchContext, TerminationKind};
use qss_sim::{pfc_system, PfcParams};

fn bench_schedule_search(c: &mut Criterion) {
    let system = pfc_system(&PfcParams::tiny()).expect("PFC links");
    let source = system.uncontrollable_sources()[0];
    let pfc_context = SearchContext::new(&system.net);

    let mut group = c.benchmark_group("schedule_search");
    group.sample_size(20);
    group.bench_function("pfc_with_heuristics", |b| {
        b.iter(|| {
            pfc_context
                .find_schedule(&system.net, source, &ScheduleOptions::default())
                .unwrap()
        })
    });
    group.bench_function("pfc_with_heuristics_reference", |b| {
        b.iter(|| {
            reference::find_schedule(&system.net, source, &ScheduleOptions::default()).unwrap()
        })
    });
    group.bench_function("pfc_without_heuristics", |b| {
        // The exhaustive, heuristic-free search may legitimately fail to
        // find a schedule within its node budget; measure the attempt.
        let opts = ScheduleOptions {
            max_nodes: 50_000,
            ..ScheduleOptions::default().without_heuristics()
        };
        b.iter(|| pfc_context.find_schedule(&system.net, source, &opts).ok())
    });
    for k in [4u32, 8, 12] {
        let (net, src) = divider_net(k);
        let context = SearchContext::new(&net);
        group.bench_with_input(BenchmarkId::new("divider_irrelevance", k), &k, |b, _| {
            b.iter(|| {
                context
                    .find_schedule(&net, src, &ScheduleOptions::default())
                    .unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("divider_irrelevance_reference", k),
            &k,
            |b, _| {
                b.iter(|| reference::find_schedule(&net, src, &ScheduleOptions::default()).unwrap())
            },
        );
        group.bench_with_input(BenchmarkId::new("divider_place_bounds", k), &k, |b, _| {
            let opts = ScheduleOptions {
                termination: TerminationKind::PlaceBounds { default: 2 * k },
                ..Default::default()
            };
            b.iter(|| context.find_schedule(&net, src, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_search);
criterion_main!(benches);
