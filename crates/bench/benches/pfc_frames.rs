//! Criterion benchmark behind Table 1: cost of processing an increasing
//! number of frames with the single generated task and the 4-task model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qss_bench::pfc_setup;
use qss_sim::{
    pfc_events, run_multitask, run_singletask, CycleCostModel, MultiTaskConfig, PfcParams,
    SingleTaskConfig,
};

fn bench_frames(c: &mut Criterion) {
    let setup = pfc_setup(PfcParams::tiny());
    let mut group = c.benchmark_group("table1_pfc_frames");
    group.sample_size(10);
    for frames in [2usize, 8, 32] {
        let events = pfc_events(frames);
        group.throughput(Throughput::Elements(frames as u64));
        group.bench_with_input(
            BenchmarkId::new("singletask", frames),
            &events,
            |b, events| {
                b.iter(|| {
                    run_singletask(
                        &setup.system,
                        &setup.schedules.schedules,
                        events,
                        &SingleTaskConfig::new(CycleCostModel::optimized()),
                    )
                    .expect("singletask run")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("multitask_buf100", frames),
            &events,
            |b, events| {
                b.iter(|| {
                    run_multitask(
                        &setup.system,
                        events,
                        &MultiTaskConfig::new(100, CycleCostModel::optimized()),
                    )
                    .expect("multitask run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_frames);
criterion_main!(benches);
