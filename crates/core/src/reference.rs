//! Reference (recompute-from-scratch) implementation of the EP / EP_ECS
//! schedule search — the differential-testing oracle for the incremental
//! engine in [`crate::ep`].
//!
//! This is the original, straightforward transcription of Figure 9 of the
//! paper: every per-node context is re-derived by walking the parent chain
//! (`ancestor_markings`, `equal_marking_ancestor`, `path_firings`), which
//! makes the search superlinear in tree depth. It is retained verbatim
//! because its simplicity makes it easy to audit against the paper, and
//! the differential tests + `bench_json` emitter compare the incremental
//! engine against it node for node. Do not use it in production paths.

use crate::ep::{ScheduleOptions, SearchStats};
use crate::error::{Result, ScheduleError};
use crate::heuristics::EcsSorter;
use crate::schedule::{NodeId, Schedule, ScheduleNode};
use crate::termination::Termination;
use qss_petri::{EcsId, EcsInfo, Marking, PetriNet, TransitionId, TransitionKind};
use std::collections::BTreeMap;

/// Reference counterpart of [`crate::find_schedule`].
///
/// # Errors
/// Same contract as [`crate::find_schedule`].
pub fn find_schedule(
    net: &PetriNet,
    source: TransitionId,
    options: &ScheduleOptions,
) -> Result<Schedule> {
    find_schedule_with_stats(net, source, options).map(|(s, _)| s)
}

/// Reference counterpart of [`crate::find_schedule_with_stats`].
///
/// # Errors
/// Same contract as [`crate::find_schedule_with_stats`].
pub fn find_schedule_with_stats(
    net: &PetriNet,
    source: TransitionId,
    options: &ScheduleOptions,
) -> Result<(Schedule, SearchStats)> {
    if net.transition(source).kind != TransitionKind::UncontrollableSource {
        return Err(ScheduleError::NotUncontrollableSource(source));
    }
    let sorter = EcsSorter::new(net);
    if sorter.has_no_invariants() && net.num_transitions() > 0 {
        return Err(ScheduleError::NoTInvariants);
    }
    let run_once = |opts: &ScheduleOptions| {
        let mut search = Search {
            net,
            ecs: EcsInfo::compute(net),
            term: Termination::new(net, opts.termination),
            options: opts,
            source,
            sorter: sorter.clone(),
            nodes: Vec::new(),
            budget_exhausted: false,
        };
        search.run()
    };
    match run_once(options) {
        Ok(result) => Ok(result),
        Err(first_error) if options.greedy_entering_point => {
            // The greedy pass is incomplete; fall back to the exhaustive
            // minimum-entering-point search of the paper before giving up.
            let exhaustive = ScheduleOptions {
                greedy_entering_point: false,
                ..options.clone()
            };
            run_once(&exhaustive).map_err(|_| first_error)
        }
        Err(e) => Err(e),
    }
}

/// One node of the search tree.
struct TreeNode {
    marking: Marking,
    parent: Option<usize>,
    in_transition: Option<TransitionId>,
    depth: usize,
    children: Vec<(TransitionId, usize)>,
    chosen_ecs: Option<EcsId>,
}

struct Search<'a> {
    net: &'a PetriNet,
    ecs: EcsInfo,
    term: Termination,
    options: &'a ScheduleOptions,
    source: TransitionId,
    sorter: EcsSorter,
    nodes: Vec<TreeNode>,
    budget_exhausted: bool,
}

impl<'a> Search<'a> {
    fn run(&mut self) -> Result<(Schedule, SearchStats)> {
        let m0 = self.net.initial_marking();
        let root_ecs = self.ecs.ecs_of(self.source);
        self.nodes.push(TreeNode {
            marking: m0.clone(),
            parent: None,
            in_transition: None,
            depth: 0,
            children: Vec::new(),
            chosen_ecs: Some(root_ecs),
        });
        let m1 = self.net.fire_unchecked(self.source, &m0);
        self.nodes.push(TreeNode {
            marking: m1,
            parent: Some(0),
            in_transition: Some(self.source),
            depth: 1,
            children: Vec::new(),
            chosen_ecs: None,
        });
        self.nodes[0].children.push((self.source, 1));

        let result = self.ep(1, 0);
        if self.budget_exhausted {
            return Err(ScheduleError::SearchBudgetExhausted {
                source: self.source,
                max_nodes: self.options.max_nodes,
            });
        }
        match result {
            Some(0) => {
                let schedule = self.build_schedule();
                let stats = SearchStats {
                    nodes_created: self.nodes.len(),
                    schedule_nodes: schedule.num_nodes(),
                    schedule_edges: schedule.num_edges(),
                };
                Ok((schedule, stats))
            }
            _ => Err(ScheduleError::NoSchedule {
                source: self.source,
                explored_nodes: self.nodes.len(),
            }),
        }
    }

    /// `u` is an ancestor of `v` (possibly `u == v`).
    fn is_ancestor(&self, u: usize, v: usize) -> bool {
        let mut cur = v;
        loop {
            if cur == u {
                return true;
            }
            if self.nodes[cur].depth <= self.nodes[u].depth {
                return false;
            }
            match self.nodes[cur].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// The minimal (closest to the root) proper ancestor of `v` with the
    /// same marking, if any.
    fn equal_marking_ancestor(&self, v: usize) -> Option<usize> {
        let mut found = None;
        let mut cur = self.nodes[v].parent;
        while let Some(u) = cur {
            if self.nodes[u].marking == self.nodes[v].marking {
                found = Some(u);
            }
            cur = self.nodes[u].parent;
        }
        found
    }

    /// Markings of the proper ancestors of `v` (used by the irrelevance
    /// criterion).
    fn ancestor_markings(&self, v: usize) -> Vec<&Marking> {
        let mut result = Vec::with_capacity(self.nodes[v].depth);
        let mut cur = self.nodes[v].parent;
        while let Some(u) = cur {
            result.push(&self.nodes[u].marking);
            cur = self.nodes[u].parent;
        }
        result
    }

    /// Firing counts of every transition along the path from the root to
    /// `v` (inclusive).
    fn path_firings(&self, v: usize) -> Vec<u64> {
        let mut fired = vec![0u64; self.net.num_transitions()];
        let mut cur = Some(v);
        while let Some(u) = cur {
            if let Some(t) = self.nodes[u].in_transition {
                fired[t.index()] += 1;
            }
            cur = self.nodes[u].parent;
        }
        fired
    }

    /// Enabled ECSs at `v`, filtered by the single-source constraint and
    /// ordered by the search heuristics.
    fn candidate_ecs(&self, v: usize) -> Vec<EcsId> {
        let marking = &self.nodes[v].marking;
        let mut candidates: Vec<EcsId> = self
            .ecs
            .enabled_ecs(self.net, marking)
            .into_iter()
            .filter(|e| {
                if !self.options.single_source {
                    return true;
                }
                // Exclude other uncontrollable sources (Sec. 5.5.1).
                self.ecs.members(*e).iter().all(|t| {
                    self.net.transition(*t).kind != TransitionKind::UncontrollableSource
                        || *t == self.source
                })
            })
            .collect();
        let promising = if self.options.use_invariant_heuristic {
            self.sorter.promising_vector(&self.path_firings(v))
        } else {
            None
        };
        candidates.sort_by_key(|e| {
            let members = self.ecs.members(*e);
            let promising_rank = match &promising {
                Some(p) => {
                    if members.iter().any(|t| EcsSorter::is_promising(p, *t)) {
                        0
                    } else {
                        1
                    }
                }
                None => 0,
            };
            let source_rank = if self.options.source_last
                && members
                    .iter()
                    .any(|t| self.net.transition(*t).kind.is_source())
            {
                1
            } else {
                0
            };
            let singleton_rank = if self.options.prefer_singleton_ecs && members.len() > 1 {
                1
            } else {
                0
            };
            // SELECT arms carry an explicit priority (lower = preferred);
            // non-SELECT transitions rank as priority 0.
            let select_priority = members
                .iter()
                .map(|t| self.net.transition(*t).priority.unwrap_or(0))
                .min()
                .unwrap_or(0);
            (
                promising_rank,
                source_rank,
                singleton_rank,
                select_priority,
                e.index(),
            )
        });
        candidates
    }

    /// The EP function of Figure 9(a): finds an entering point of `v` that
    /// is an ancestor of `target` if possible, otherwise the entering point
    /// closest to the root, otherwise `None`.
    fn ep(&mut self, v: usize, target: usize) -> Option<usize> {
        if self.budget_exhausted {
            return None;
        }
        // Termination conditions.
        let ancestors = self.ancestor_markings(v);
        if self
            .term
            .should_prune(&self.nodes[v].marking.clone(), &ancestors)
        {
            return None;
        }
        // Equal-marking ancestor: unique entering point.
        if let Some(u) = self.equal_marking_ancestor(v) {
            return Some(u);
        }
        let mut best: Option<usize> = None;
        for e in self.candidate_ecs(v) {
            let result = self.ep_ecs(e, v, target);
            if self.budget_exhausted {
                return None;
            }
            if let Some(u) = result {
                if self.is_ancestor(u, target) {
                    self.nodes[v].chosen_ecs = Some(e);
                    return Some(u);
                }
                if self.options.greedy_entering_point {
                    // Greedy mode: accept the first defined entering point
                    // rather than searching all ECSs for the minimum.
                    self.nodes[v].chosen_ecs = Some(e);
                    return Some(u);
                }
                let better = match best {
                    None => true,
                    Some(b) => self.nodes[u].depth < self.nodes[b].depth,
                };
                if better {
                    self.nodes[v].chosen_ecs = Some(e);
                    best = Some(u);
                }
            }
        }
        best
    }

    /// The EP_ECS function of Figure 9(b): the entering point of ECS `e`
    /// enabled at node `v`, i.e. the minimum over the entering points of
    /// the children created for each transition of the ECS, provided each
    /// of them is a proper ancestor of `v`.
    fn ep_ecs(&mut self, e: EcsId, v: usize, target: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut current_target = target;
        let members: Vec<TransitionId> = self.ecs.members(e).to_vec();
        for t in members {
            if self.nodes.len() >= self.options.max_nodes {
                self.budget_exhausted = true;
                return None;
            }
            let marking = self.net.fire_unchecked(t, &self.nodes[v].marking);
            let w = self.nodes.len();
            let depth = self.nodes[v].depth + 1;
            self.nodes.push(TreeNode {
                marking,
                parent: Some(v),
                in_transition: Some(t),
                depth,
                children: Vec::new(),
                chosen_ecs: None,
            });
            self.nodes[v].children.push((t, w));
            let ep = self.ep(w, current_target);
            match ep {
                // The child's entering point must be `v` itself or an
                // ancestor of `v` (Sec. 5.1); anything deeper (or UNDEF)
                // means this ECS has no entering point.
                Some(u) if self.is_ancestor(u, v) => {
                    best = Some(match best {
                        None => u,
                        Some(b) => {
                            if self.nodes[u].depth < self.nodes[b].depth {
                                u
                            } else {
                                b
                            }
                        }
                    });
                    if self.is_ancestor(best.unwrap(), target) {
                        current_target = v;
                    }
                }
                _ => return None,
            }
        }
        best
    }

    /// Post-processing: retain the chosen-ECS part of the tree and close
    /// the cycles by merging each retained leaf with its equal-marking
    /// ancestor.
    fn build_schedule(&self) -> Schedule {
        let mut map: BTreeMap<usize, usize> = BTreeMap::new();
        let mut nodes: Vec<ScheduleNode> = Vec::new();
        self.assign(0, &mut map, &mut nodes);
        Schedule::from_parts(
            self.source,
            nodes
                .into_iter()
                .map(|n| ScheduleNode {
                    marking: n.marking,
                    edges: n.edges,
                })
                .collect(),
        )
    }

    fn assign(
        &self,
        v: usize,
        map: &mut BTreeMap<usize, usize>,
        nodes: &mut Vec<ScheduleNode>,
    ) -> usize {
        if let Some(&id) = map.get(&v) {
            return id;
        }
        match self.nodes[v].chosen_ecs {
            Some(ecs) => {
                let id = nodes.len();
                nodes.push(ScheduleNode {
                    marking: self.nodes[v].marking.clone(),
                    edges: Vec::new(),
                });
                map.insert(v, id);
                let mut edges = Vec::new();
                for (t, w) in &self.nodes[v].children {
                    if self.ecs.ecs_of(*t) == ecs {
                        let target = self.assign(*w, map, nodes);
                        edges.push((*t, NodeId(target as u32)));
                    }
                }
                nodes[id].edges = edges;
                id
            }
            None => {
                // Leaf: merge with the (minimal) equal-marking ancestor.
                let u = self
                    .equal_marking_ancestor(v)
                    .expect("retained leaf must have an equal-marking ancestor");
                let id = self.assign(u, map, nodes);
                map.insert(v, id);
                id
            }
        }
    }
}
