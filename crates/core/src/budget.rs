//! Cooperative budgets for the EP/EP_ECS schedule search.
//!
//! The search of [`crate::ep`] is a depth-first traversal that can run
//! for an unbounded time on a pathological net (the node cap
//! [`crate::ScheduleOptions::max_nodes`] bounds *memory*, not wall
//! clock). A [`SearchBudget`] bounds the search cooperatively: the inner
//! loop charges one step per tree-node expansion and gives up — with a
//! typed [`crate::ScheduleError::BudgetExhausted`] — when the step
//! allowance runs out, the wall-clock deadline passes, or a shared
//! cancellation flag is raised.
//!
//! Checking a monotonic clock (or even a foreign atomic) on every node
//! would be measurable on searches whose per-node work is a handful of
//! slab writes, so the expensive checks are amortized: a local step
//! counter is maintained always, and the clock/flag are consulted only
//! every [`CHECK_INTERVAL`] steps. An exhausted budget is therefore
//! detected within `CHECK_INTERVAL` expansions of the configured limit —
//! microseconds of slack, never unbounded overrun.
//!
//! [`BudgetConfig`] is the serializable face of the same idea: what a
//! `PipelineConfig` (and hence a `qssd` request) carries over the wire.
//! An empty config means *unlimited*, and an unlimited budget adds no
//! work to the search loop beyond one branch on an `Option` that is
//! `None` — budgets off is byte-identical to the pre-budget engine.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many expansion steps pass between consultations of the wall
/// clock and the cancellation flag.
pub const CHECK_INTERVAL: u32 = 256;

/// The serializable budget configuration: what a pipeline configuration
/// (and a wire request) carries. Both fields absent means unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetConfig {
    /// Cap on expansion steps per source search (`None` = unlimited).
    pub max_steps: Option<u64>,
    /// Wall-clock allowance in milliseconds for the whole scheduling
    /// request, counted from the moment the search starts (`None` =
    /// unlimited).
    pub deadline_ms: Option<u64>,
}

impl BudgetConfig {
    /// Whether the configuration imposes no limit at all.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.deadline_ms.is_none()
    }

    /// Arms the configuration into a runtime [`SearchBudget`], resolving
    /// the relative `deadline_ms` against the current instant.
    pub fn to_budget(&self) -> SearchBudget {
        SearchBudget {
            max_steps: self.max_steps,
            deadline: self
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            cancel: None,
        }
    }
}

/// A runtime budget for one scheduling request.
///
/// The deadline is an absolute instant, so one budget shared by the
/// per-source searches of a system (including the parallel scheduler)
/// bounds their *combined* wall clock; `max_steps` is charged per source
/// search (each source gets a fresh [`BudgetChecker`]).
#[derive(Debug, Clone, Default)]
pub struct SearchBudget {
    /// Cap on expansion steps per source search.
    pub max_steps: Option<u64>,
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Shared cancellation flag: any holder raising it makes every
    /// search carrying this budget stop at its next check.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl SearchBudget {
    /// A budget that never stops a search.
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// Whether no limit is armed (such a budget costs the search
    /// nothing).
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Replaces the step cap.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Replaces the deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a shared cancellation flag.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Tightens the deadline to `min(current, other)` — how a service
    /// combines a request-level deadline with a config-level one.
    pub fn and_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = match (self.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// The per-search charging state, or `None` when the budget is
    /// unlimited (so the search loop pays nothing for it).
    pub fn checker(&self) -> Option<BudgetChecker> {
        if self.is_unlimited() {
            return None;
        }
        Some(BudgetChecker {
            budget: self.clone(),
            steps: 0,
            until_check: CHECK_INTERVAL,
        })
    }
}

/// Why a budgeted search stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetStop {
    /// The step cap ran out.
    Steps,
    /// The wall-clock deadline passed.
    Deadline,
    /// The shared cancellation flag was raised.
    Cancelled,
}

impl std::fmt::Display for BudgetStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetStop::Steps => "step budget exhausted",
            BudgetStop::Deadline => "deadline exceeded",
            BudgetStop::Cancelled => "cancelled",
        })
    }
}

/// Per-search charging state of a [`SearchBudget`]: a step counter plus
/// the countdown to the next amortized clock/flag check.
///
/// One checker spans everything a single source search runs — including
/// the automatic greedy→exhaustive retry — so a retry cannot reset the
/// budget.
#[derive(Debug, Clone)]
pub struct BudgetChecker {
    budget: SearchBudget,
    steps: u64,
    until_check: u32,
}

impl BudgetChecker {
    /// Charges one expansion step; returns the stop reason once the
    /// budget is out. Deadline and cancellation are only consulted every
    /// [`CHECK_INTERVAL`] steps.
    #[inline]
    pub fn step(&mut self) -> Option<BudgetStop> {
        self.steps += 1;
        if let Some(max) = self.budget.max_steps {
            if self.steps > max {
                return Some(BudgetStop::Steps);
            }
        }
        if self.budget.deadline.is_none() && self.budget.cancel.is_none() {
            return None;
        }
        self.until_check -= 1;
        if self.until_check != 0 {
            return None;
        }
        self.until_check = CHECK_INTERVAL;
        self.check_now()
    }

    /// Consults the deadline and the cancellation flag immediately.
    pub fn check_now(&self) -> Option<BudgetStop> {
        if let Some(cancel) = &self.budget.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Some(BudgetStop::Cancelled);
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                return Some(BudgetStop::Deadline);
            }
        }
        None
    }

    /// Steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_config_is_unlimited_and_costs_nothing() {
        let config = BudgetConfig::default();
        assert!(config.is_unlimited());
        assert!(config.to_budget().is_unlimited());
        assert!(config.to_budget().checker().is_none());
    }

    #[test]
    fn step_cap_trips_exactly_after_max_steps() {
        let budget = SearchBudget::unlimited().with_max_steps(10);
        let mut checker = budget.checker().expect("armed budget has a checker");
        for _ in 0..10 {
            assert_eq!(checker.step(), None);
        }
        assert_eq!(checker.step(), Some(BudgetStop::Steps));
        assert_eq!(checker.steps(), 11);
    }

    #[test]
    fn expired_deadline_is_detected_within_the_check_interval() {
        let budget = SearchBudget::unlimited().with_deadline(Instant::now());
        let mut checker = budget.checker().unwrap();
        let mut stopped = None;
        for taken in 1..=u64::from(CHECK_INTERVAL) {
            if let Some(stop) = checker.step() {
                stopped = Some((stop, taken));
                break;
            }
        }
        let (stop, taken) = stopped.expect("deadline must trip within one interval");
        assert_eq!(stop, BudgetStop::Deadline);
        assert_eq!(taken, u64::from(CHECK_INTERVAL));
    }

    #[test]
    fn cancellation_flag_stops_the_checker() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = SearchBudget::unlimited().with_cancel(Arc::clone(&flag));
        let mut checker = budget.checker().unwrap();
        for _ in 0..u64::from(CHECK_INTERVAL) * 3 {
            assert_eq!(checker.step(), None);
        }
        flag.store(true, Ordering::Relaxed);
        let stop = (0..u64::from(CHECK_INTERVAL))
            .find_map(|_| checker.step())
            .expect("flag must trip within one interval");
        assert_eq!(stop, BudgetStop::Cancelled);
    }

    #[test]
    fn and_deadline_keeps_the_earlier_instant() {
        let soon = Instant::now();
        let later = soon + Duration::from_secs(60);
        let budget = SearchBudget::unlimited()
            .with_deadline(later)
            .and_deadline(Some(soon));
        assert_eq!(budget.deadline, Some(soon));
        let budget = SearchBudget::unlimited().and_deadline(Some(soon));
        assert_eq!(budget.deadline, Some(soon));
        let budget = SearchBudget::unlimited()
            .with_deadline(soon)
            .and_deadline(None);
        assert_eq!(budget.deadline, Some(soon));
    }

    #[test]
    fn config_round_trips_through_serde() {
        let config = BudgetConfig {
            max_steps: Some(1000),
            deadline_ms: Some(50),
        };
        let back = BudgetConfig::from_value(&config.to_value()).unwrap();
        assert_eq!(back, config);
    }
}
