//! Error types for the scheduler.

use crate::budget::BudgetStop;
use qss_petri::{PlaceId, TransitionId};
use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ScheduleError>;

/// Errors produced while searching for or validating schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The given transition is not an uncontrollable source transition.
    NotUncontrollableSource(TransitionId),
    /// No schedule exists within the search space defined by the
    /// termination condition.
    NoSchedule {
        /// The source transition a schedule was requested for.
        source: TransitionId,
        /// Number of tree nodes explored before giving up.
        explored_nodes: usize,
    },
    /// The search exceeded its safety node budget before completing.
    SearchBudgetExhausted {
        /// The source transition a schedule was requested for.
        source: TransitionId,
        /// The node budget that was exhausted.
        max_nodes: usize,
    },
    /// A caller-imposed cooperative budget (step cap, wall-clock
    /// deadline or cancellation flag — see [`crate::SearchBudget`])
    /// stopped the search before it completed.
    BudgetExhausted {
        /// The source transition a schedule was requested for.
        source: TransitionId,
        /// What ran out.
        stop: BudgetStop,
        /// Expansion steps charged before stopping.
        steps: u64,
    },
    /// The net has no base of T-invariants, hence no cyclic schedule
    /// exists (Sec. 5.5.2).
    NoTInvariants,
    /// The structural pre-pass proved a place unbounded under the
    /// internal transitions alone, so the search was rejected before it
    /// started (a [`SearchContext`](crate::SearchContext) built with a
    /// structural report fast-rejects such nets).
    StructurallyUnbounded(PlaceId),
    /// The structural pre-pass proved the requested source transition can
    /// never fire, so no schedule for it can exist.
    StructurallyDead(TransitionId),
    /// A computed set of schedules is not independent, so it cannot be
    /// executed with statically known buffer bounds.
    NotIndependent {
        /// The two source transitions whose schedules interfere.
        first: TransitionId,
        /// The second source transition.
        second: TransitionId,
    },
    /// A schedule graph violates one of the five defining properties.
    InvalidSchedule(String),
    /// A run of a schedule set could not be completed.
    RunFailed(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotUncontrollableSource(t) => {
                write!(f, "transition {t} is not an uncontrollable source")
            }
            ScheduleError::NoSchedule {
                source,
                explored_nodes,
            } => write!(
                f,
                "no schedule found for source {source} within the search space ({explored_nodes} nodes explored)"
            ),
            ScheduleError::SearchBudgetExhausted { source, max_nodes } => write!(
                f,
                "schedule search for {source} exhausted its budget of {max_nodes} nodes"
            ),
            ScheduleError::BudgetExhausted {
                source,
                stop,
                steps,
            } => write!(
                f,
                "schedule search for {source} stopped after {steps} steps: {stop}"
            ),
            ScheduleError::NoTInvariants => {
                write!(f, "the net has no T-invariants, so no cyclic schedule exists")
            }
            ScheduleError::StructurallyUnbounded(p) => write!(
                f,
                "place {p} is structurally unbounded under internal transitions alone; \
                 the net was rejected before search"
            ),
            ScheduleError::StructurallyDead(t) => write!(
                f,
                "source transition {t} is structurally dead (it can never fire), \
                 so no schedule for it exists"
            ),
            ScheduleError::NotIndependent { first, second } => write!(
                f,
                "the schedules for {first} and {second} are not mutually independent"
            ),
            ScheduleError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            ScheduleError::RunFailed(msg) => write!(f, "run failed: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let errors: Vec<ScheduleError> = vec![
            ScheduleError::NotUncontrollableSource(TransitionId::new(1)),
            ScheduleError::NoSchedule {
                source: TransitionId::new(0),
                explored_nodes: 17,
            },
            ScheduleError::SearchBudgetExhausted {
                source: TransitionId::new(0),
                max_nodes: 100,
            },
            ScheduleError::BudgetExhausted {
                source: TransitionId::new(0),
                stop: BudgetStop::Deadline,
                steps: 4096,
            },
            ScheduleError::NoTInvariants,
            ScheduleError::StructurallyUnbounded(PlaceId::new(2)),
            ScheduleError::StructurallyDead(TransitionId::new(3)),
            ScheduleError::NotIndependent {
                first: TransitionId::new(0),
                second: TransitionId::new(1),
            },
            ScheduleError::InvalidSchedule("missing root".into()),
            ScheduleError::RunFailed("stuck".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
