//! Quasi-static scheduler: the primary contribution of Cortadella et al.
//! (DAC 2000), *Task Generation and Compile-Time Scheduling for Mixed
//! Data-Control Embedded Software*.
//!
//! Given a Petri net produced by the FlowC front end ([`qss_flowc::link()`]),
//! the scheduler computes one *single-source schedule* (SSS) per
//! uncontrollable environment input. A schedule is a cyclic graph whose
//! nodes carry markings and whose edges carry transitions; it proves that
//! the reaction to every environment event can be executed with a finite,
//! statically known amount of buffering, resolving only data-dependent
//! choices at run time.
//!
//! The main entry points are:
//!
//! * [`find_schedule`] — compute the schedule of one uncontrollable source
//!   transition with the EP/EP_ECS search of Sec. 5,
//! * [`schedule_system`] — compute schedules for every uncontrollable
//!   source of a linked system and check their independence,
//! * [`independence`] — independence and channel-bound analysis (Sec. 4.3),
//! * [`termination`] — the place-bound and irrelevant-marking pruning
//!   criteria (Sec. 4.4).
//!
//! # Example
//!
//! ```
//! use qss_petri::{NetBuilder, TransitionKind};
//! use qss_core::{find_schedule, ScheduleOptions};
//!
//! // in -> p -> consume (a trivial reactive pipeline)
//! let mut b = NetBuilder::new("tiny");
//! let p = b.place("p", 0);
//! let src = b.transition("in", TransitionKind::UncontrollableSource);
//! let t = b.transition("consume", TransitionKind::Internal);
//! b.arc_t2p(src, p, 1);
//! b.arc_p2t(p, t, 1);
//! let net = b.build().unwrap();
//!
//! let schedule = find_schedule(&net, src, &ScheduleOptions::default())?;
//! assert!(schedule.is_single_source(&net));
//! # Ok::<(), qss_core::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod ep;
pub mod error;
pub mod heuristics;
pub mod independence;
pub mod reference;
pub mod run;
pub mod schedule;
pub mod termination;

pub use budget::{BudgetChecker, BudgetConfig, BudgetStop, SearchBudget, CHECK_INTERVAL};
pub use ep::{
    find_schedule, find_schedule_with_stats, schedule_system, schedule_system_parallel,
    schedule_system_parallel_profiled, schedule_system_parallel_with_context,
    schedule_system_parallel_with_context_budgeted, schedule_system_profiled,
    schedule_system_with_context, schedule_system_with_context_budgeted, ScheduleOptions,
    SearchContext, SearchProfile, SearchStats, SystemSchedules, SEARCH_THREAD_STACK_BYTES,
};
pub use error::{Result, ScheduleError};
pub use independence::{are_independent, channel_bounds, is_independent_set};
pub use qss_petri::{KernelKind, KernelScratch, NetKernels};
pub use run::{execute_run, RunTrace};
pub use schedule::{NodeId, Schedule, ScheduleNode};
pub use termination::{PathTracker, Termination, TerminationKind};
