//! Runs of a set of schedules against an environment input sequence
//! (Definition 4.1) and the executability check of Definition 4.2.
//!
//! A run traverses, for each symbol of the input sequence, the schedule of
//! the corresponding uncontrollable source transition from its current
//! await node to the next await node, resolving data-dependent choices
//! with a caller-provided policy. [`execute_run`] additionally fires every
//! traversed transition in the original net, verifying that the sequence
//! defined by the run is fireable from the initial marking — the
//! executability property guaranteed for independent schedule sets by
//! Proposition 4.2.

use crate::error::{Result, ScheduleError};
use crate::schedule::{NodeId, Schedule};
use qss_petri::{Marking, PetriNet, TransitionId};

/// The outcome of a successfully executed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTrace {
    /// Every transition fired, in order.
    pub fired: Vec<TransitionId>,
    /// The marking of the net after the run.
    pub final_marking: Marking,
    /// The await node each schedule rests at after the run, in the order
    /// the schedules were passed in.
    pub resting_nodes: Vec<NodeId>,
}

/// Safety bound on the number of steps in a single reaction (per input
/// symbol), to guard against malformed schedules.
const MAX_STEPS_PER_REACTION: usize = 100_000;

/// Executes the run of `schedules` with respect to `sequence`, resolving
/// data-dependent choices with `choose` (which receives the schedule, the
/// current node and its outgoing edges and returns the index of the edge
/// to take).
///
/// # Errors
/// Returns [`ScheduleError::RunFailed`] if the sequence contains a source
/// transition no schedule serves, if a traversed transition is not
/// fireable in the net (schedule interference), or if a reaction does not
/// terminate within the step bound.
pub fn execute_run(
    net: &PetriNet,
    schedules: &[Schedule],
    sequence: &[TransitionId],
    mut choose: impl FnMut(&Schedule, NodeId, &[(TransitionId, NodeId)]) -> usize,
) -> Result<RunTrace> {
    let mut positions: Vec<NodeId> = schedules.iter().map(|s| s.root()).collect();
    let mut marking = net.initial_marking();
    let mut fired = Vec::new();

    for &symbol in sequence {
        let index = schedules
            .iter()
            .position(|s| s.source() == symbol)
            .ok_or_else(|| {
                ScheduleError::RunFailed(format!(
                    "no schedule serves uncontrollable source {symbol}"
                ))
            })?;
        let schedule = &schedules[index];
        let mut node = positions[index];
        // Property 2: the first edge of the traversal is the source itself.
        let edges = schedule.edges(node);
        let (first, mut target) = edges
            .iter()
            .find(|(t, _)| *t == symbol)
            .copied()
            .ok_or_else(|| {
                ScheduleError::RunFailed(format!(
                    "schedule for {symbol} is not at an await node for it"
                ))
            })?;
        marking = net.fire(first, &marking).map_err(|_| {
            ScheduleError::RunFailed(format!(
                "transition {first} of the run is not fireable (interference)"
            ))
        })?;
        fired.push(first);
        node = target;
        let mut steps = 0usize;
        while !schedule.is_await_node(net, node) {
            steps += 1;
            if steps > MAX_STEPS_PER_REACTION {
                return Err(ScheduleError::RunFailed(
                    "reaction did not reach an await node".into(),
                ));
            }
            let edges = schedule.edges(node);
            let pick = if edges.len() == 1 {
                0
            } else {
                let i = choose(schedule, node, edges);
                if i >= edges.len() {
                    return Err(ScheduleError::RunFailed(
                        "choice resolver returned an invalid edge index".into(),
                    ));
                }
                i
            };
            let (t, next) = edges[pick];
            marking = net.fire(t, &marking).map_err(|_| {
                ScheduleError::RunFailed(format!(
                    "transition {t} of the run is not fireable (interference)"
                ))
            })?;
            fired.push(t);
            target = next;
            node = target;
        }
        positions[index] = node;
    }
    Ok(RunTrace {
        fired,
        final_marking: marking,
        resting_nodes: positions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ep::{find_schedule, ScheduleOptions};
    use qss_petri::{NetBuilder, PetriNet, TransitionKind};

    fn two_source_net() -> PetriNet {
        // Two independent chains sharing nothing.
        let mut bl = NetBuilder::new("two");
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::UncontrollableSource);
        let d = bl.transition("d", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p1, b, 1);
        bl.arc_t2p(c, p2, 1);
        bl.arc_p2t(p2, d, 1);
        bl.build().unwrap()
    }

    #[test]
    fn run_of_independent_schedules_is_executable() {
        let net = two_source_net();
        let a = net.transition_by_name("a").unwrap();
        let c = net.transition_by_name("c").unwrap();
        let sa = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        let sc = find_schedule(&net, c, &ScheduleOptions::default()).unwrap();
        let trace = execute_run(&net, &[sa, sc], &[a, c, a, a, c], |_, _, _| 0).unwrap();
        // Every reaction fires the source and its consumer.
        assert_eq!(trace.fired.len(), 10);
        assert_eq!(trace.final_marking, net.initial_marking());
    }

    #[test]
    fn unknown_symbol_is_rejected() {
        let net = two_source_net();
        let a = net.transition_by_name("a").unwrap();
        let c = net.transition_by_name("c").unwrap();
        let sa = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        let err = execute_run(&net, &[sa], &[c], |_, _, _| 0).unwrap_err();
        assert!(matches!(err, ScheduleError::RunFailed(_)));
    }

    #[test]
    fn data_choices_are_resolved_by_the_policy() {
        // a -> p, p -> yes|no (same ECS), both -> q -> back.
        let mut bl = NetBuilder::new("choice");
        let p = bl.place("p", 0);
        let q = bl.place("q", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let yes = bl.transition("yes", TransitionKind::Internal);
        let no = bl.transition("no", TransitionKind::Internal);
        let back = bl.transition("back", TransitionKind::Internal);
        bl.arc_t2p(a, p, 1);
        bl.arc_p2t(p, yes, 1);
        bl.arc_p2t(p, no, 1);
        bl.arc_t2p(yes, q, 1);
        bl.arc_t2p(no, q, 1);
        bl.arc_p2t(q, back, 1);
        let net = bl.build().unwrap();
        let a = net.transition_by_name("a").unwrap();
        let yes = net.transition_by_name("yes").unwrap();
        let no = net.transition_by_name("no").unwrap();
        let s = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        // Always pick the edge carrying `no` when there is a choice.
        let trace = execute_run(&net, std::slice::from_ref(&s), &[a, a], |_, _, edges| {
            edges.iter().position(|(t, _)| *t == no).unwrap_or(0)
        })
        .unwrap();
        assert!(trace.fired.contains(&no));
        assert!(!trace.fired.contains(&yes));
    }

    #[test]
    fn interfering_schedules_fail_at_run_time() {
        // Craft a schedule that claims to fire a transition which is not
        // enabled in the real net (simulating interference).
        let net = two_source_net();
        let a = net.transition_by_name("a").unwrap();
        let b = net.transition_by_name("b").unwrap();
        let m0 = net.initial_marking();
        let m1 = net.fire(a, &m0).unwrap();
        let bogus = crate::schedule::Schedule::from_parts(
            a,
            vec![
                crate::schedule::ScheduleNode {
                    marking: m0,
                    edges: vec![(a, NodeId(1))],
                },
                crate::schedule::ScheduleNode {
                    marking: m1.clone(),
                    edges: vec![(b, NodeId(2))],
                },
                crate::schedule::ScheduleNode {
                    // Claims b can fire twice in a row.
                    marking: m1,
                    edges: vec![(b, NodeId(0))],
                },
            ],
        );
        let err = execute_run(&net, &[bogus], &[a], |_, _, _| 0).unwrap_err();
        assert!(matches!(err, ScheduleError::RunFailed(_)));
    }
}
