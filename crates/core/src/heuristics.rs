//! T-invariant based search heuristics (Sec. 5.5.2).
//!
//! The paper sorts the ECSs explored by the EP algorithm using a
//! *promising vector*: the firing counts still missing to complete a
//! T-invariant along the current search path. ECSs that contain a
//! transition appearing in the promising vector are explored first, which
//! steers the search towards short cycles back to an ancestor marking and
//! keeps the resulting schedules small.
//!
//! The candidate invariant is assembled greedily from the non-negative
//! basis: starting from the transitions already fired on the path, base
//! invariants are added until every fired transition is covered (a
//! simplified, deterministic stand-in for the binate-covering formulation
//! of the paper — the covering instance the paper solves also only decides
//! *which* base invariants participate).

use qss_petri::{t_invariant_basis, PetriNet, TInvariant, TransitionId};

/// Maximum number of intermediate rows allowed in the Farkas elimination
/// before the basis computation bails out conservatively.
const INVARIANT_ROW_CAP: usize = 50_000;

/// Sorting helper built once per schedule search.
#[derive(Debug, Clone)]
pub struct EcsSorter {
    basis: Vec<TInvariant>,
    num_transitions: usize,
}

impl EcsSorter {
    /// Computes the T-invariant basis of `net`.
    pub fn new(net: &PetriNet) -> Self {
        EcsSorter {
            basis: t_invariant_basis(net, INVARIANT_ROW_CAP),
            num_transitions: net.num_transitions(),
        }
    }

    /// The non-negative basis of T-invariants.
    pub fn basis(&self) -> &[TInvariant] {
        &self.basis
    }

    /// Returns `true` if the net has no non-trivial T-invariant, in which
    /// case no cyclic schedule can exist.
    pub fn has_no_invariants(&self) -> bool {
        self.basis.is_empty()
    }

    /// Computes the promising vector for a search path on which each
    /// transition `t` has fired `fired[t]` times: the per-transition counts
    /// still needed to complete a candidate invariant that covers the path.
    ///
    /// Returns `None` when no candidate invariant covers the fired
    /// transitions (the path cannot be part of any cycle assembled from the
    /// basis).
    pub fn promising_vector(&self, fired: &[u64]) -> Option<Vec<u64>> {
        let mut combo = Vec::new();
        let mut out = Vec::new();
        self.promising_into(fired, &mut combo, &mut out)
            .then_some(out)
    }

    /// Allocation-free form of [`EcsSorter::promising_vector`]: writes the
    /// promising vector into `out` (using `combo` as a second scratch
    /// buffer) and returns whether guidance is available. The incremental
    /// EP engine runs this on every explored node with buffers reused
    /// across the whole search, so the heuristic never allocates on the
    /// hot path.
    pub fn promising_into(&self, fired: &[u64], combo: &mut Vec<u64>, out: &mut Vec<u64>) -> bool {
        assert_eq!(fired.len(), self.num_transitions);
        if self.basis.is_empty() {
            return false;
        }
        combo.clear();
        combo.resize(self.num_transitions, 0);
        let mut guard = 0usize;
        // `out` doubles as the per-round deficit index set until the final
        // vector overwrites it.
        loop {
            guard += 1;
            if guard > 64 {
                // The greedy cover keeps needing more multiples than is
                // plausible for a schedule; give up on guidance.
                return false;
            }
            out.clear();
            out.extend(
                (0..self.num_transitions)
                    .filter(|&i| fired[i] > combo[i])
                    .map(|i| i as u64),
            );
            if out.is_empty() {
                break;
            }
            // Pick the base invariant that covers the most deficient
            // transitions; require it to cover at least one.
            let best = self
                .basis
                .iter()
                .max_by_key(|inv| {
                    out.iter()
                        .filter(|&&i| inv.as_slice()[i as usize] > 0)
                        .count()
                })
                .filter(|inv| out.iter().any(|&i| inv.as_slice()[i as usize] > 0));
            let Some(best) = best else {
                return false;
            };
            for (c, &b) in combo.iter_mut().zip(best.as_slice()) {
                *c += b;
            }
        }
        if combo.iter().all(|&c| c == 0) {
            // Nothing fired yet: propose the smallest base invariant so the
            // search is steered towards completing *some* cycle.
            let first = self
                .basis
                .iter()
                .min_by_key(|inv| inv.as_slice().iter().sum::<u64>());
            let Some(first) = first else {
                return false;
            };
            combo.clear();
            combo.extend_from_slice(first.as_slice());
        }
        out.clear();
        out.extend(combo.iter().zip(fired).map(|(c, f)| c.saturating_sub(*f)));
        true
    }

    /// Returns `true` if `t` still appears in the promising vector.
    pub fn is_promising(promising: &[u64], t: TransitionId) -> bool {
        promising.get(t.index()).copied().unwrap_or(0) > 0
    }
}

/// A greedy feasible-solution finder for binate covering instances, kept
/// for completeness with the paper's formulation. Each row is a pair of
/// column sets: columns that *satisfy* the row when selected and columns
/// that *violate* it when selected. A selection is feasible for a row if it
/// contains a satisfying column or contains no violating column.
///
/// Returns the selected column indices, or `None` when the greedy pass
/// cannot find a feasible selection.
pub fn greedy_binate_cover(
    num_columns: usize,
    rows: &[(Vec<usize>, Vec<usize>)],
) -> Option<Vec<usize>> {
    let mut selected: Vec<bool> = vec![false; num_columns];
    // Greedily satisfy rows that are currently violated.
    for _ in 0..num_columns + 1 {
        let violated: Vec<&(Vec<usize>, Vec<usize>)> = rows
            .iter()
            .filter(|(sat, viol)| {
                let has_sat = sat.iter().any(|&c| selected[c]);
                let has_viol = viol.iter().any(|&c| selected[c]);
                has_viol && !has_sat
            })
            .collect();
        if violated.is_empty() {
            return Some(
                selected
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| s)
                    .map(|(i, _)| i)
                    .collect(),
            );
        }
        // Pick the column that satisfies the most violated rows.
        let mut best: Option<(usize, usize)> = None;
        for (c, _) in selected.iter().enumerate().filter(|(_, &s)| !s) {
            let gain = violated.iter().filter(|(sat, _)| sat.contains(&c)).count();
            if gain > 0 && best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((c, gain));
            }
        }
        match best {
            Some((c, _)) => selected[c] = true,
            None => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_petri::{NetBuilder, TransitionKind};

    fn pipeline() -> PetriNet {
        let mut b = NetBuilder::new("pipe");
        let p = b.place("p", 0);
        let idle = b.place("idle", 1);
        let a = b.transition("a", TransitionKind::UncontrollableSource);
        let c = b.transition("c", TransitionKind::Internal);
        b.arc_t2p(a, p, 1);
        b.arc_p2t(p, c, 1);
        b.arc_p2t(idle, c, 1);
        b.arc_t2p(c, idle, 1);
        b.build().unwrap()
    }

    #[test]
    fn promising_vector_completes_the_cycle() {
        let net = pipeline();
        let sorter = EcsSorter::new(&net);
        assert!(!sorter.has_no_invariants());
        let a = net.transition_by_name("a").unwrap();
        let c = net.transition_by_name("c").unwrap();
        // After firing `a` once, the promising vector asks for `c`.
        let mut fired = vec![0u64; net.num_transitions()];
        fired[a.index()] = 1;
        let promising = sorter.promising_vector(&fired).unwrap();
        assert!(EcsSorter::is_promising(&promising, c));
        assert!(!EcsSorter::is_promising(&promising, a));
    }

    #[test]
    fn empty_path_still_gets_guidance() {
        let net = pipeline();
        let sorter = EcsSorter::new(&net);
        let fired = vec![0u64; net.num_transitions()];
        let promising = sorter.promising_vector(&fired).unwrap();
        assert!(promising.iter().any(|&v| v > 0));
    }

    #[test]
    fn accumulator_net_has_no_guidance() {
        let mut b = NetBuilder::new("acc");
        let p = b.place("p", 0);
        let a = b.transition("a", TransitionKind::UncontrollableSource);
        b.arc_t2p(a, p, 1);
        let net = b.build().unwrap();
        let sorter = EcsSorter::new(&net);
        assert!(sorter.has_no_invariants());
        assert_eq!(sorter.promising_vector(&[0]), None);
    }

    #[test]
    fn weighted_net_promises_remaining_firings() {
        // a produces 2, b consumes 3 => invariant is 3*a + 2*b.
        let mut bld = NetBuilder::new("w");
        let p = bld.place("p", 0);
        let a = bld.transition("a", TransitionKind::UncontrollableSource);
        let b = bld.transition("b", TransitionKind::Internal);
        bld.arc_t2p(a, p, 2);
        bld.arc_p2t(p, b, 3);
        let net = bld.build().unwrap();
        let sorter = EcsSorter::new(&net);
        let a = net.transition_by_name("a").unwrap();
        let b = net.transition_by_name("b").unwrap();
        let mut fired = vec![0u64; 2];
        fired[a.index()] = 2;
        let promising = sorter.promising_vector(&fired).unwrap();
        assert_eq!(promising[a.index()], 1);
        assert_eq!(promising[b.index()], 2);
    }

    #[test]
    fn binate_cover_simple_cases() {
        // One row: selecting column 1 violates unless column 0 selected.
        let rows = vec![(vec![0], vec![1])];
        // Nothing selected: feasible with the empty selection.
        assert_eq!(greedy_binate_cover(2, &rows), Some(vec![]));
        // A row that is violated by default (violating column is forced by
        // another row's satisfying set).
        let rows = vec![(vec![1], vec![]), (vec![0], vec![1])];
        // Row 0 is never violated (no violating columns); selection empty.
        assert_eq!(greedy_binate_cover(2, &rows), Some(vec![]));
    }

    #[test]
    fn binate_cover_resolves_conflicts() {
        // Column 0 is required to satisfy row 0 once column 1 is selected;
        // we force the conflict by pre-violating through row 1's structure.
        let rows = vec![(vec![0], vec![1]), (vec![1], vec![2]), (vec![2], vec![])];
        let result = greedy_binate_cover(3, &rows);
        assert!(result.is_some());
    }
}
