//! The EP / EP_ECS schedule search algorithm (Sec. 5), incremental
//! path-state edition.
//!
//! The algorithm grows a rooted tree of markings. For a tree node `v` it
//! looks for an *entering point*: an ancestor of `v` whose marking can be
//! reached again no matter how the data-dependent choices (ECSs with more
//! than one transition) are resolved. If the entering point of the child of
//! the root is the root itself, the retained part of the tree — closed by
//! merging each leaf with the equal-marking ancestor it points back to —
//! is a schedule.
//!
//! # Incremental path state
//!
//! The search is a depth-first traversal, so all per-node context — the
//! ancestor markings consulted by the irrelevance criterion, the on-path
//! firing counts consulted by the T-invariant heuristic, the equal-marking
//! ancestor lookup that closes cycles — lives on *one* root-to-node path
//! at a time. Instead of re-deriving that context by walking the parent
//! chain at every node (`O(depth × places)` per node, superlinear in tree
//! depth overall), the engine maintains a [`PathTracker`] that is updated
//! in `O(changed places)` on a typical descent and backtrack (see the
//! [`PathTracker`] docs for the worst case):
//!
//! * one scratch [`Marking`] mutated in place via
//!   [`PetriNet::fire_into`]/[`PetriNet::unfire_into`] — the search never
//!   clones markings on the main path (schedule markings are rebuilt by
//!   replaying the retained tree at the end),
//! * cumulative per-transition firing counts (a slice read instead of an
//!   `O(depth + |T|)` chain walk per heuristic evaluation),
//! * an incrementally-maintained marking hash plus hash index over on-path
//!   ancestors, making the equal-marking-ancestor query a probe plus exact
//!   verification instead of a full chain scan,
//! * per-place token-count histories with box-violation counters that
//!   evaluate Definition 4.5 ("some ancestor is covered and was saturated
//!   everywhere it grew") by bookkeeping only the places a firing touched.
//!
//! Ancestor tests (`is_ancestor`) degenerate to depth comparisons because
//! every candidate entering point is on the current path. The original
//! recompute-from-scratch implementation is retained unchanged in
//! [`crate::reference`] as the differential-testing oracle; the two
//! engines produce identical trees, schedules and statistics.

use crate::budget::{BudgetChecker, BudgetStop, SearchBudget};
use crate::error::{Result, ScheduleError};
use crate::heuristics::EcsSorter;
use crate::independence::{channel_bounds, is_independent_set};
use crate::schedule::{NodeId, Schedule};
use crate::termination::{PathTracker, TerminationKind};
use qss_flowc::LinkedSystem;
use qss_petri::{
    EcsId, EcsInfo, KernelKind, KernelScratch, Marking, MarkingId, MarkingStore, NetKernels,
    PetriNet, PlaceId, StructuralReport, TransitionId, TransitionKind,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stack size for threads that run the EP search.
///
/// The search recurses once per on-path node, so its stack depth is the
/// current path length — on a pathological net (a divider chain, where
/// one schedule needs `k^depth` source firings) that is tens of
/// thousands of frames before a deadline budget trips, far past the
/// 2 MiB Rust gives a spawned thread by default. Threads created with
/// this size only *reserve* the address space; pages are committed as
/// the search actually deepens. The parallel system scheduler uses it
/// for its fan-out threads, and `qssd` uses it for its worker threads.
pub const SEARCH_THREAD_STACK_BYTES: usize = 64 * 1024 * 1024;

/// Options controlling the schedule search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleOptions {
    /// Pruning criterion (irrelevant markings by default).
    pub termination: TerminationKind,
    /// Safety cap on the number of tree nodes created by one search.
    pub max_nodes: usize,
    /// Generate only single-source schedules (required for the
    /// independence guarantee of Proposition 4.3). Enabled by default.
    pub single_source: bool,
    /// Sort ECSs using the T-invariant promising vector (Sec. 5.5.2).
    pub use_invariant_heuristic: bool,
    /// Explore source-transition ECSs last ("fire a source transition only
    /// when the system cannot fire anything else").
    pub source_last: bool,
    /// Prefer ECSs with a single transition over data-dependent choices.
    pub prefer_singleton_ecs: bool,
    /// Stop exploring alternative ECSs at a node as soon as one of them has
    /// a defined entering point, instead of searching all of them for the
    /// entering point closest to the root. Combined with the source-last
    /// ordering this keeps reactions maximal (the schedule only waits for
    /// the environment when nothing else can run) and keeps channel bounds
    /// tight. If the greedy pass fails, the search automatically retries
    /// exhaustively.
    pub greedy_entering_point: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            termination: TerminationKind::Irrelevance,
            max_nodes: 200_000,
            single_source: true,
            use_invariant_heuristic: true,
            source_last: true,
            prefer_singleton_ecs: true,
            greedy_entering_point: true,
        }
    }
}

impl ScheduleOptions {
    /// Options using a uniform pre-defined place bound instead of the
    /// irrelevance criterion (the comparison baseline of Sec. 4.4).
    pub fn with_place_bounds(default: u32) -> Self {
        ScheduleOptions {
            termination: TerminationKind::PlaceBounds { default },
            ..Default::default()
        }
    }

    /// Disables all search-ordering heuristics (used by the ablation
    /// benchmarks).
    pub fn without_heuristics(mut self) -> Self {
        self.use_invariant_heuristic = false;
        self.source_last = false;
        self.prefer_singleton_ecs = false;
        self.greedy_entering_point = false;
        self
    }
}

/// Statistics about one schedule search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of tree nodes created during the search.
    pub nodes_created: usize,
    /// Number of nodes in the resulting schedule.
    pub schedule_nodes: usize,
    /// Number of edges in the resulting schedule.
    pub schedule_edges: usize,
}

/// A cost breakdown of one or more schedule searches.
///
/// Where [`SearchStats`] describes the *result* (tree and schedule
/// sizes), the profile describes the *work*: how many nodes the search
/// expanded, where it pruned, which enabledness engine swept candidates
/// and how often, and how the wall clock split across the phases
/// (context build / greedy pass / exhaustive retry). Profiles of
/// separate searches aggregate with [`SearchProfile::absorb`]; the
/// system-level entry points return one profile spanning every source.
///
/// Collecting the profile costs a handful of plain (non-atomic) integer
/// increments on the search's own stack frame — it is always on, and the
/// `obs/overhead` benchmark cases pin the cost at noise level. What is
/// *opt-in* is shipping it: artifacts serialize the profile only when
/// `PipelineConfig` asks for it, so default wire bytes are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchProfile {
    /// Per-source searches aggregated into this profile.
    pub searches: u64,
    /// Tree nodes expanded (one cooperative-budget step each).
    pub nodes_expanded: u64,
    /// Candidate ECS explorations abandoned because a child had no
    /// acceptable entering point.
    pub backtracks: u64,
    /// Equal-marking-ancestor hash probes.
    pub equal_ancestor_probes: u64,
    /// Probes that found an equal-marking ancestor (an entering point).
    pub equal_ancestor_hits: u64,
    /// Nodes cut by the termination criterion (irrelevance or place
    /// bounds).
    pub irrelevance_cuts: u64,
    /// Candidate-ECS enabledness sweeps run by the scalar per-arc walk.
    pub ecs_sweeps_scalar: u64,
    /// Candidate-ECS enabledness sweeps run by the chunked need-row
    /// kernels.
    pub ecs_sweeps_chunked: u64,
    /// Cooperative budget checks charged (0 under an unlimited budget).
    pub budget_checks: u64,
    /// Exhaustive retries after a failed greedy pass.
    pub exhaustive_retries: u64,
    /// Wall time spent building the [`SearchContext`] (0 when the
    /// context was reused — cache hits skip the build).
    pub context_build_micros: u64,
    /// Wall time of greedy entering-point passes.
    pub greedy_micros: u64,
    /// Wall time of exhaustive (minimum-entering-point) passes.
    pub exhaustive_micros: u64,
}

impl SearchProfile {
    /// Adds `other`'s counts and times into `self` (field-wise sum).
    pub fn absorb(&mut self, other: &SearchProfile) {
        self.searches += other.searches;
        self.nodes_expanded += other.nodes_expanded;
        self.backtracks += other.backtracks;
        self.equal_ancestor_probes += other.equal_ancestor_probes;
        self.equal_ancestor_hits += other.equal_ancestor_hits;
        self.irrelevance_cuts += other.irrelevance_cuts;
        self.ecs_sweeps_scalar += other.ecs_sweeps_scalar;
        self.ecs_sweeps_chunked += other.ecs_sweeps_chunked;
        self.budget_checks += other.budget_checks;
        self.exhaustive_retries += other.exhaustive_retries;
        self.context_build_micros += other.context_build_micros;
        self.greedy_micros += other.greedy_micros;
        self.exhaustive_micros += other.exhaustive_micros;
    }

    /// The profile as `(label, value)` rows in a fixed order — the
    /// vocabulary shared by `qssc build --search-profile` and the
    /// `metrics` snapshot.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("searches", self.searches),
            ("nodes_expanded", self.nodes_expanded),
            ("backtracks", self.backtracks),
            ("equal_ancestor_probes", self.equal_ancestor_probes),
            ("equal_ancestor_hits", self.equal_ancestor_hits),
            ("irrelevance_cuts", self.irrelevance_cuts),
            ("ecs_sweeps_scalar", self.ecs_sweeps_scalar),
            ("ecs_sweeps_chunked", self.ecs_sweeps_chunked),
            ("budget_checks", self.budget_checks),
            ("exhaustive_retries", self.exhaustive_retries),
            ("context_build_micros", self.context_build_micros),
            ("greedy_micros", self.greedy_micros),
            ("exhaustive_micros", self.exhaustive_micros),
        ]
    }
}

/// Finds a single-source schedule for the uncontrollable source transition
/// `source` of `net`.
///
/// # Errors
/// * [`ScheduleError::NotUncontrollableSource`] if `source` has the wrong
///   kind,
/// * [`ScheduleError::NoTInvariants`] if the net has no T-invariants (no
///   cyclic schedule can exist),
/// * [`ScheduleError::NoSchedule`] if the bounded search space contains no
///   schedule,
/// * [`ScheduleError::SearchBudgetExhausted`] if the safety node budget ran
///   out first.
pub fn find_schedule(
    net: &PetriNet,
    source: TransitionId,
    options: &ScheduleOptions,
) -> Result<Schedule> {
    find_schedule_with_stats(net, source, options).map(|(s, _)| s)
}

/// Like [`find_schedule`] but also returns search statistics.
pub fn find_schedule_with_stats(
    net: &PetriNet,
    source: TransitionId,
    options: &ScheduleOptions,
) -> Result<(Schedule, SearchStats)> {
    SearchContext::new(net).find_schedule_with_stats(net, source, options)
}

/// Reusable per-net scheduling context.
///
/// The ECS partition and the non-negative T-invariant basis depend only on
/// the net structure, and for small reactive nets (e.g. the PFC case
/// study) the Farkas elimination behind the basis dominates the cost of a
/// whole schedule search. Build the context once and every
/// [`SearchContext::find_schedule`] call — across sources, option
/// profiles and the greedy→exhaustive retry — shares the precomputed
/// analyses. [`schedule_system`] does this for all the sources of a
/// linked system, and the `qss` facade's `ScheduleArtifact` carries the
/// context forward so repeated scheduling requests against the same net
/// skip the analyses entirely.
///
/// The context is an owned value (no borrow of the net): the net is
/// passed to each call instead, and — like [`Marking`] — the caller is
/// responsible for only combining a context with the net it was computed
/// from. All fields are immutable after construction, so one context can
/// be shared by reference across threads ([`schedule_system_parallel`]).
#[derive(Debug, Clone)]
pub struct SearchContext {
    ecs: EcsInfo,
    sorter: EcsSorter,
    /// Per-net marking store seeded with the initial marking; every search
    /// clones it so the path tracker's interning starts from the shared
    /// base instead of re-hashing the initial marking per call.
    base_store: MarkingStore,
    /// Facts adopted from a structural pre-pass ([`SearchContext::with_structural`]);
    /// `None` for contexts built with [`SearchContext::new`], which keeps
    /// the analysis-off search byte-identical to the pre-analyzer engine.
    structural: Option<StructuralGate>,
    /// Which enabledness engine searches on this context use (scalar
    /// per-arc walk or the chunked need-row kernels). Resolved once at
    /// construction from the `QSS_KERNEL` override.
    kernel: KernelKind,
    /// The compiled need-row kernels ([`NetKernels`]): per-transition
    /// lower-bound rows aligned to the slab stride (or a sparse CSR
    /// fallback for very wide nets) plus ECS representatives, with cell
    /// width narrowed to u8/u16 when a structural report proved that
    /// every reachable count fits.
    kernels: NetKernels,
    /// Wall time the per-net analyses took, reported as the
    /// `context_build_micros` phase of a [`SearchProfile`].
    build_micros: u64,
}

/// The slice of a [`StructuralReport`] the search engine consumes.
#[derive(Debug, Clone)]
struct StructuralGate {
    /// First place proven unbounded under internal transitions alone;
    /// its presence fast-rejects every search on this net.
    unbounded: Option<PlaceId>,
    /// Per-transition "provably dead" flags; a search for a dead source
    /// is fast-rejected.
    dead: Vec<bool>,
    /// The maximum proven place bound, present only when every place has
    /// one (see [`StructuralReport::max_marking_bound`]).
    max_marking_bound: Option<u32>,
}

impl SearchContext {
    /// Computes the per-net analyses (ECS partition, T-invariant basis,
    /// enabledness kernels) and seeds the per-net marking store.
    ///
    /// The enabledness engine defaults to the chunked need-row kernels;
    /// the `QSS_KERNEL` environment variable (`scalar` or `chunked`)
    /// overrides it process-wide — the differential CI jobs force both
    /// settings to pin the engines byte-identical.
    pub fn new(net: &PetriNet) -> Self {
        SearchContext::with_kernel(net, KernelKind::resolved(KernelKind::Chunked))
    }

    /// Like [`SearchContext::new`] but with an explicit enabledness
    /// engine, ignoring the `QSS_KERNEL` override — the in-process A/B
    /// tests and benches use this to compare engines side by side.
    pub fn with_kernel(net: &PetriNet, kernel: KernelKind) -> Self {
        let build_start = std::time::Instant::now();
        let mut base_store = MarkingStore::with_stride(net.num_places());
        let _ = base_store.intern(net.initial_marking().as_slice());
        let ecs = EcsInfo::compute(net);
        let kernels = NetKernels::compile(net, &ecs, None);
        let sorter = EcsSorter::new(net);
        SearchContext {
            ecs,
            sorter,
            base_store,
            structural: None,
            kernel,
            kernels,
            build_micros: build_start.elapsed().as_micros() as u64,
        }
    }

    /// Like [`SearchContext::new`], but additionally adopts the proofs of
    /// a structural pre-pass over the same net:
    ///
    /// * nets with a provably (internally) unbounded place or a provably
    ///   dead source transition are rejected with a typed error
    ///   *before* any search runs
    ///   ([`ScheduleError::StructurallyUnbounded`] /
    ///   [`ScheduleError::StructurallyDead`]),
    /// * proven place bounds pre-arm
    ///   [`TerminationKind::PlaceBounds`] via
    ///   [`SearchContext::pre_armed_place_bounds`], and the per-net
    ///   maximum bound is recorded
    ///   ([`SearchContext::structural_max_bound`]) so a narrow-cell
    ///   marking slab can later pick u8/u16 cells.
    ///
    /// `report` must come from the net this context is built for.
    pub fn with_structural(net: &PetriNet, report: &StructuralReport) -> Self {
        let build_start = std::time::Instant::now();
        let mut context = SearchContext::new(net);
        let mut dead = vec![false; net.num_transitions()];
        for t in &report.dead_transitions {
            dead[t.index()] = true;
        }
        context.structural = Some(StructuralGate {
            unbounded: report.unbounded_places().first().copied(),
            dead,
            max_marking_bound: report.max_marking_bound,
        });
        // Proven place bounds license narrow kernel cells: recompile the
        // need rows so a fully-bounded net gets u8/u16 lanes.
        context.kernels = NetKernels::compile(net, &context.ecs, report.max_marking_bound);
        context.build_micros = build_start.elapsed().as_micros() as u64;
        context
    }

    /// Wall time the per-net analyses behind this context took to build.
    pub fn build_micros(&self) -> u64 {
        self.build_micros
    }

    /// The enabledness engine searches on this context use.
    pub fn kernel_kind(&self) -> KernelKind {
        self.kernel
    }

    /// The compiled enabledness kernels of the net (shared, immutable;
    /// callers bring their own [`KernelScratch`]).
    pub fn kernels(&self) -> &NetKernels {
        &self.kernels
    }

    /// The maximum proven structural place bound, if the adopted report
    /// proved one for *every* place. `None` for contexts without a
    /// structural report.
    pub fn structural_max_bound(&self) -> Option<u32> {
        self.structural.as_ref().and_then(|g| g.max_marking_bound)
    }

    /// Schedule options pre-armed with the proven place bounds: when the
    /// adopted report bounds every place, returns
    /// [`ScheduleOptions::with_place_bounds`] seeded with the proven
    /// maximum (no reachable marking violates it, so the bound check can
    /// replace the irrelevance machinery without losing any schedule the
    /// bounds admit). `None` when no full cover was proven.
    pub fn pre_armed_place_bounds(&self) -> Option<ScheduleOptions> {
        self.structural_max_bound()
            .map(ScheduleOptions::with_place_bounds)
    }

    /// The ECS partition of the net.
    pub fn ecs(&self) -> &EcsInfo {
        &self.ecs
    }

    /// The per-net marking store the searches start from (holds the
    /// interned initial marking).
    pub fn base_store(&self) -> &MarkingStore {
        &self.base_store
    }

    /// Finds a single-source schedule for `source` using the precomputed
    /// analyses. `net` must be the net this context was built from.
    ///
    /// # Errors
    /// Same contract as the free function [`find_schedule`].
    pub fn find_schedule(
        &self,
        net: &PetriNet,
        source: TransitionId,
        options: &ScheduleOptions,
    ) -> Result<Schedule> {
        self.find_schedule_with_stats(net, source, options)
            .map(|(s, _)| s)
    }

    /// Like [`SearchContext::find_schedule`] but also returns search
    /// statistics.
    ///
    /// # Errors
    /// Same contract as the free function [`find_schedule_with_stats`].
    pub fn find_schedule_with_stats(
        &self,
        net: &PetriNet,
        source: TransitionId,
        options: &ScheduleOptions,
    ) -> Result<(Schedule, SearchStats)> {
        self.find_schedule_with_stats_budgeted(net, source, options, &SearchBudget::unlimited())
    }

    /// Like [`SearchContext::find_schedule_with_stats`], but under a
    /// cooperative [`SearchBudget`]: the search charges one budget step
    /// per tree-node expansion and stops with
    /// [`ScheduleError::BudgetExhausted`] when the step cap runs out,
    /// the deadline passes, or the budget's cancellation flag is raised.
    /// One budget state spans the whole call, including the automatic
    /// greedy→exhaustive retry, so the retry cannot reset the allowance.
    /// An [unlimited](SearchBudget::is_unlimited) budget adds no
    /// observable work: results are identical to the unbudgeted call.
    ///
    /// # Errors
    /// The contract of [`find_schedule_with_stats`] plus
    /// [`ScheduleError::BudgetExhausted`].
    pub fn find_schedule_with_stats_budgeted(
        &self,
        net: &PetriNet,
        source: TransitionId,
        options: &ScheduleOptions,
        budget: &SearchBudget,
    ) -> Result<(Schedule, SearchStats)> {
        let mut profile = SearchProfile::default();
        self.find_schedule_profiled(net, source, options, budget, &mut profile)
    }

    /// Like [`SearchContext::find_schedule_with_stats_budgeted`], but
    /// additionally aggregates a [`SearchProfile`] of the work done into
    /// `profile` (the profile is absorbed, not overwritten, so one
    /// profile can span several calls). The search itself is identical —
    /// profiling changes which numbers are *kept*, never which tree is
    /// explored. `context_build_micros` is not charged here; system-level
    /// callers attribute the (shared, possibly cached) context build
    /// once via [`SearchContext::build_micros`].
    ///
    /// # Errors
    /// Same contract as [`find_schedule_with_stats_budgeted`](Self::find_schedule_with_stats_budgeted).
    pub fn find_schedule_profiled(
        &self,
        net: &PetriNet,
        source: TransitionId,
        options: &ScheduleOptions,
        budget: &SearchBudget,
        profile: &mut SearchProfile,
    ) -> Result<(Schedule, SearchStats)> {
        profile.searches += 1;
        if net.transition(source).kind != TransitionKind::UncontrollableSource {
            return Err(ScheduleError::NotUncontrollableSource(source));
        }
        // Structural fast-reject: proofs adopted via `with_structural`
        // make the search fail in O(1) instead of burning its budget on a
        // net that cannot have a schedule. Contexts without a report skip
        // this entirely (analysis-off behavior is byte-identical).
        if let Some(gate) = &self.structural {
            if let Some(p) = gate.unbounded {
                return Err(ScheduleError::StructurallyUnbounded(p));
            }
            if gate.dead[source.index()] {
                return Err(ScheduleError::StructurallyDead(source));
            }
        }
        if self.sorter.has_no_invariants() && net.num_transitions() > 0 {
            return Err(ScheduleError::NoTInvariants);
        }
        // One checker for the whole call: the greedy→exhaustive retry
        // below continues charging the same allowance.
        let mut checker = budget.checker();
        let run_once = |opts: &ScheduleOptions,
                        checker: &mut Option<BudgetChecker>,
                        profile: &mut SearchProfile| {
            let phase_start = std::time::Instant::now();
            let mut search = Search {
                net,
                ecs: &self.ecs,
                tracker: PathTracker::with_store(net, opts.termination, self.base_store.clone()),
                options: opts,
                source,
                sorter: &self.sorter,
                nodes: Vec::new(),
                budget_exhausted: false,
                budget: checker.as_mut(),
                budget_stop: None,
                combo_buf: Vec::new(),
                promising_buf: Vec::new(),
                kernel: self.kernel,
                kernels: &self.kernels,
                kernel_scratch: KernelScratch::default(),
                ecs_pool: Vec::new(),
                profile: SearchProfile::default(),
            };
            let result = search.run();
            profile.absorb(&search.profile);
            let phase_micros = phase_start.elapsed().as_micros() as u64;
            if opts.greedy_entering_point {
                profile.greedy_micros += phase_micros;
            } else {
                profile.exhaustive_micros += phase_micros;
            }
            result
        };
        match run_once(options, &mut checker, profile) {
            Ok(result) => Ok(result),
            Err(first_error)
                if options.greedy_entering_point
                    && !matches!(first_error, ScheduleError::BudgetExhausted { .. }) =>
            {
                // The greedy pass is incomplete; fall back to the
                // exhaustive minimum-entering-point search of the paper
                // before giving up. (A budget-exhausted greedy pass skips
                // the retry — the allowance is spent; and if the budget
                // runs out mid-retry, the budget error wins below.)
                let exhaustive = ScheduleOptions {
                    greedy_entering_point: false,
                    ..options.clone()
                };
                profile.exhaustive_retries += 1;
                run_once(&exhaustive, &mut checker, profile).map_err(|retry_error| {
                    if matches!(retry_error, ScheduleError::BudgetExhausted { .. }) {
                        retry_error
                    } else {
                        first_error
                    }
                })
            }
            Err(e) => Err(e),
        }
    }
}

/// The schedules of a whole linked system: one per uncontrollable input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemSchedules {
    /// One schedule per uncontrollable source transition, in the order the
    /// environment inputs appear in the linked system.
    pub schedules: Vec<Schedule>,
    /// Static bound on every place involved in some schedule — for channel
    /// places this is the buffer size needed by the implementation.
    pub channel_bounds: BTreeMap<PlaceId, u32>,
    /// Per-schedule search statistics.
    pub stats: Vec<SearchStats>,
}

impl SystemSchedules {
    /// The schedule serving the given source transition, if any.
    pub fn schedule_for(&self, source: TransitionId) -> Option<&Schedule> {
        self.schedules.iter().find(|s| s.source() == source)
    }

    /// The buffer bound computed for `place` (0 if the place is involved in
    /// no schedule).
    pub fn bound(&self, place: PlaceId) -> u32 {
        self.channel_bounds.get(&place).copied().unwrap_or(0)
    }
}

/// Computes one schedule per uncontrollable input port of a linked system
/// and verifies that the resulting set is independent (Proposition 4.3
/// guarantees this for nets generated from FlowC, but the check is cheap
/// and validates the construction).
///
/// # Errors
/// Propagates [`find_schedule`] errors, and returns
/// [`ScheduleError::NotIndependent`] if two schedules interfere.
pub fn schedule_system(
    system: &LinkedSystem,
    options: &ScheduleOptions,
) -> Result<SystemSchedules> {
    // One context serves every source: the ECS partition and T-invariant
    // basis are per-net, not per-source.
    let context = SearchContext::new(&system.net);
    schedule_system_with_context(system, &context, options)
}

/// Like [`schedule_system`], but reuses a prebuilt [`SearchContext`]
/// (which must have been computed from `system.net`).
///
/// # Errors
/// Same contract as [`schedule_system`].
pub fn schedule_system_with_context(
    system: &LinkedSystem,
    context: &SearchContext,
    options: &ScheduleOptions,
) -> Result<SystemSchedules> {
    schedule_system_with_context_budgeted(system, context, options, &SearchBudget::unlimited())
}

/// Like [`schedule_system_with_context`], but every per-source search
/// runs under the given cooperative [`SearchBudget`]. The deadline (an
/// absolute instant) bounds the *combined* wall clock of all sources;
/// the step cap is charged per source.
///
/// # Errors
/// The contract of [`schedule_system`] plus
/// [`ScheduleError::BudgetExhausted`].
pub fn schedule_system_with_context_budgeted(
    system: &LinkedSystem,
    context: &SearchContext,
    options: &ScheduleOptions,
    budget: &SearchBudget,
) -> Result<SystemSchedules> {
    schedule_system_profiled(system, context, options, budget).map(|(schedules, _)| schedules)
}

/// Like [`schedule_system_with_context_budgeted`], but also returns the
/// aggregated [`SearchProfile`] of every per-source search (including the
/// context build time of `context`).
///
/// # Errors
/// Same contract as [`schedule_system_with_context_budgeted`].
pub fn schedule_system_profiled(
    system: &LinkedSystem,
    context: &SearchContext,
    options: &ScheduleOptions,
    budget: &SearchBudget,
) -> Result<(SystemSchedules, SearchProfile)> {
    let mut profile = SearchProfile {
        context_build_micros: context.build_micros(),
        ..SearchProfile::default()
    };
    let sources = system.uncontrollable_sources();
    let mut schedules = Vec::new();
    let mut stats = Vec::new();
    for source in sources {
        let (s, st) =
            context.find_schedule_profiled(&system.net, source, options, budget, &mut profile)?;
        schedules.push(s);
        stats.push(st);
    }
    Ok((seal_system_schedules(system, schedules, stats)?, profile))
}

/// Computes one schedule per uncontrollable input like [`schedule_system`],
/// but fans the per-source searches out across threads
/// (`std::thread::scope`), sharing one read-only [`SearchContext`].
///
/// The searches of different sources are completely independent — they
/// only read the net and the per-net analyses — so the result is
/// deterministic and identical to the sequential path: schedules are
/// collected in source order and, when several sources fail, the error of
/// the earliest source is reported, exactly as the sequential loop would.
///
/// # Errors
/// Same contract as [`schedule_system`].
pub fn schedule_system_parallel(
    system: &LinkedSystem,
    options: &ScheduleOptions,
) -> Result<SystemSchedules> {
    let context = SearchContext::new(&system.net);
    schedule_system_parallel_with_context(system, &context, options)
}

/// Like [`schedule_system_parallel`], but reuses a prebuilt
/// [`SearchContext`] (which must have been computed from `system.net`).
///
/// # Errors
/// Same contract as [`schedule_system`].
pub fn schedule_system_parallel_with_context(
    system: &LinkedSystem,
    context: &SearchContext,
    options: &ScheduleOptions,
) -> Result<SystemSchedules> {
    schedule_system_parallel_with_context_budgeted(
        system,
        context,
        options,
        &SearchBudget::unlimited(),
    )
}

/// Like [`schedule_system_parallel_with_context`], but every per-source
/// search runs under the given cooperative [`SearchBudget`] (see
/// [`schedule_system_with_context_budgeted`] for the deadline/step-cap
/// semantics; the absolute deadline naturally spans the fanned-out
/// searches too).
///
/// # Errors
/// The contract of [`schedule_system`] plus
/// [`ScheduleError::BudgetExhausted`].
pub fn schedule_system_parallel_with_context_budgeted(
    system: &LinkedSystem,
    context: &SearchContext,
    options: &ScheduleOptions,
    budget: &SearchBudget,
) -> Result<SystemSchedules> {
    schedule_system_parallel_profiled(system, context, options, budget)
        .map(|(schedules, _)| schedules)
}

/// Like [`schedule_system_parallel_with_context_budgeted`], but also
/// returns the aggregated [`SearchProfile`] across every per-source
/// search thread (profiles are merged in source order, so the result is
/// deterministic and identical to the sequential path's).
///
/// # Errors
/// Same contract as [`schedule_system_parallel_with_context_budgeted`].
pub fn schedule_system_parallel_profiled(
    system: &LinkedSystem,
    context: &SearchContext,
    options: &ScheduleOptions,
    budget: &SearchBudget,
) -> Result<(SystemSchedules, SearchProfile)> {
    let sources = system.uncontrollable_sources();
    if sources.len() <= 1 {
        return schedule_system_profiled(system, context, options, budget);
    }
    let net = &system.net;
    type SourceOutcome = Result<(Schedule, SearchStats)>;
    let mut results: Vec<Option<(SourceOutcome, SearchProfile)>> = Vec::new();
    results.resize_with(sources.len(), || None);
    std::thread::scope(|scope| {
        for (slot, &source) in results.iter_mut().zip(&sources) {
            std::thread::Builder::new()
                .stack_size(SEARCH_THREAD_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    let mut profile = SearchProfile::default();
                    let outcome =
                        context.find_schedule_profiled(net, source, options, budget, &mut profile);
                    *slot = Some((outcome, profile));
                })
                .expect("spawn a scheduling thread");
        }
    });
    let mut profile = SearchProfile {
        context_build_micros: context.build_micros(),
        ..SearchProfile::default()
    };
    let mut schedules = Vec::new();
    let mut stats = Vec::new();
    for result in results {
        let (outcome, source_profile) = result.expect("every scheduling thread fills its slot");
        // Absorb the work counters before propagating errors: the profile
        // of the earliest failing source is still meaningful, but the
        // error contract must match the sequential loop, which stops at
        // the first failure.
        profile.absorb(&source_profile);
        let (s, st) = outcome?;
        schedules.push(s);
        stats.push(st);
    }
    Ok((seal_system_schedules(system, schedules, stats)?, profile))
}

/// Shared tail of the system schedulers: the independence check and the
/// channel-bound computation.
fn seal_system_schedules(
    system: &LinkedSystem,
    schedules: Vec<Schedule>,
    stats: Vec<SearchStats>,
) -> Result<SystemSchedules> {
    if let Err((a, b)) = is_independent_set(&schedules, &system.net) {
        return Err(ScheduleError::NotIndependent {
            first: a,
            second: b,
        });
    }
    let channel_bounds = channel_bounds(&schedules, &system.net);
    Ok(SystemSchedules {
        schedules,
        channel_bounds,
        stats,
    })
}

/// One node of the search tree.
///
/// Markings are *not* stored per node: the search works on the
/// [`PathTracker`]'s single scratch marking and [`Search::build_schedule`]
/// reconstructs the retained markings by replaying transitions.
struct TreeNode {
    in_transition: Option<TransitionId>,
    depth: usize,
    children: Vec<(TransitionId, usize)>,
    chosen_ecs: Option<EcsId>,
    /// For retained leaves: the minimal equal-marking ancestor the leaf
    /// merges with, recorded when the entering point was found.
    merge_with: Option<usize>,
}

/// Accumulator of [`Search::build_schedule`]: the schedule's marking
/// arena plus the interned `(marking, edges)` node list under construction.
struct ScheduleBuild {
    store: MarkingStore,
    nodes: Vec<(MarkingId, Vec<(TransitionId, NodeId)>)>,
}

struct Search<'a> {
    net: &'a PetriNet,
    ecs: &'a EcsInfo,
    tracker: PathTracker,
    options: &'a ScheduleOptions,
    source: TransitionId,
    sorter: &'a EcsSorter,
    nodes: Vec<TreeNode>,
    budget_exhausted: bool,
    /// The cooperative budget's charging state (`None` when unlimited,
    /// which keeps the hot path free of clock reads). Borrowed from the
    /// caller so the greedy→exhaustive retry shares one allowance.
    budget: Option<&'a mut BudgetChecker>,
    /// Why the cooperative budget stopped the search, when it did.
    budget_stop: Option<BudgetStop>,
    /// Scratch buffers of [`EcsSorter::promising_into`], reused across
    /// nodes so the heuristic allocates nothing on the hot path.
    combo_buf: Vec<u64>,
    promising_buf: Vec<u64>,
    /// Which enabledness engine this search runs (from the context).
    kernel: KernelKind,
    /// The context's compiled need-row kernels.
    kernels: &'a NetKernels,
    /// Per-search kernel scratch (narrowed counts row, bit-set); the
    /// context's kernels are shared across threads, so the mutable state
    /// lives here.
    kernel_scratch: KernelScratch,
    /// Per-depth candidate-ECS buffers, recycled across the recursion so
    /// the per-node ECS sweep allocates nothing once the pool has warmed
    /// up. Indexed by node depth: the DFS has at most one live frame per
    /// depth, so a frame can take its buffer and return it on every exit
    /// path without clashing with siblings.
    ecs_pool: Vec<Vec<EcsId>>,
    /// Work counters for this pass, absorbed into the caller's
    /// [`SearchProfile`] when the pass returns. Plain integers on the
    /// search's own frame: bumping them costs no atomics, no branches.
    profile: SearchProfile,
}

impl<'a> Search<'a> {
    fn run(&mut self) -> Result<(Schedule, SearchStats)> {
        let root_ecs = self.ecs.ecs_of(self.source);
        // The tracker starts with the root entry (initial marking) on the
        // path; mirror it in the tree and descend along the source.
        self.nodes.push(TreeNode {
            in_transition: None,
            depth: 0,
            children: Vec::new(),
            chosen_ecs: Some(root_ecs),
            merge_with: None,
        });
        self.tracker.fire(self.net, self.source);
        self.nodes.push(TreeNode {
            in_transition: Some(self.source),
            depth: 1,
            children: Vec::new(),
            chosen_ecs: None,
            merge_with: None,
        });
        self.nodes[0].children.push((self.source, 1));

        let result = self.ep(1, 0);
        if self.budget_exhausted {
            if let Some(stop) = self.budget_stop {
                return Err(ScheduleError::BudgetExhausted {
                    source: self.source,
                    stop,
                    steps: self.budget.as_ref().map_or(0, |c| c.steps()),
                });
            }
            return Err(ScheduleError::SearchBudgetExhausted {
                source: self.source,
                max_nodes: self.options.max_nodes,
            });
        }
        match result {
            Some(0) => {
                let schedule = self.build_schedule();
                let stats = SearchStats {
                    nodes_created: self.nodes.len(),
                    schedule_nodes: schedule.num_nodes(),
                    schedule_edges: schedule.num_edges(),
                };
                Ok((schedule, stats))
            }
            _ => Err(ScheduleError::NoSchedule {
                source: self.source,
                explored_nodes: self.nodes.len(),
            }),
        }
    }

    /// `u` is an ancestor of `v` (possibly `u == v`), for nodes that are
    /// both on the current search path: a depth comparison. Every
    /// entering-point candidate the search handles is on the path, so the
    /// reference engine's parent-chain walk is never needed.
    fn on_path_is_ancestor(&self, u: usize, v: usize) -> bool {
        self.nodes[u].depth <= self.nodes[v].depth
    }

    /// Enabled ECSs at the node currently carried by the tracker, filtered
    /// by the single-source constraint and ordered by the search
    /// heuristics. Fills the caller's reused buffer — the whole sweep is
    /// allocation-free once the scratch has warmed up.
    ///
    /// The scalar and chunked engines agree on every marking (the kernel
    /// property suite pins this), and the filter-and-sort below is shared,
    /// so the two engines explore byte-identical trees.
    fn fill_candidate_ecs(&mut self, candidates: &mut Vec<EcsId>) {
        let marking = self.tracker.marking().as_slice();
        match self.kernel {
            KernelKind::Scalar => {
                self.profile.ecs_sweeps_scalar += 1;
                self.ecs.enabled_ecs_into(self.net, marking, candidates)
            }
            KernelKind::Chunked => {
                self.profile.ecs_sweeps_chunked += 1;
                self.kernels
                    .enabled_ecs_into(marking, &mut self.kernel_scratch, candidates)
            }
        }
        if self.options.single_source {
            // Exclude other uncontrollable sources (Sec. 5.5.1).
            candidates.retain(|e| {
                self.ecs.members(*e).iter().all(|t| {
                    self.net.transition(*t).kind != TransitionKind::UncontrollableSource
                        || *t == self.source
                })
            });
        }
        let promising: Option<&[u64]> = if self.options.use_invariant_heuristic
            // Cumulative on-path firing counts: a slice read, not a walk;
            // the promising vector lands in a reused scratch buffer.
            && self.sorter.promising_into(
                self.tracker.fired(),
                &mut self.combo_buf,
                &mut self.promising_buf,
            ) {
            Some(&self.promising_buf)
        } else {
            None
        };
        candidates.sort_by_key(|e| {
            let members = self.ecs.members(*e);
            let promising_rank = match &promising {
                Some(p) => {
                    if members.iter().any(|t| EcsSorter::is_promising(p, *t)) {
                        0
                    } else {
                        1
                    }
                }
                None => 0,
            };
            let source_rank = if self.options.source_last
                && members
                    .iter()
                    .any(|t| self.net.transition(*t).kind.is_source())
            {
                1
            } else {
                0
            };
            let singleton_rank = if self.options.prefer_singleton_ecs && members.len() > 1 {
                1
            } else {
                0
            };
            // SELECT arms carry an explicit priority (lower = preferred);
            // non-SELECT transitions rank as priority 0.
            let select_priority = members
                .iter()
                .map(|t| self.net.transition(*t).priority.unwrap_or(0))
                .min()
                .unwrap_or(0);
            (
                promising_rank,
                source_rank,
                singleton_rank,
                select_priority,
                e.index(),
            )
        });
    }

    /// The EP function of Figure 9(a): finds an entering point of `v` that
    /// is an ancestor of `target` if possible, otherwise the entering point
    /// closest to the root, otherwise `None`.
    ///
    /// On entry the tracker carries `v`'s marking and the path entries are
    /// exactly `v`'s proper ancestors; `v` is pushed only while its
    /// candidate ECSs are being explored.
    fn ep(&mut self, v: usize, target: usize) -> Option<usize> {
        if self.budget_exhausted {
            return None;
        }
        // Termination conditions and the equal-marking-ancestor query
        // share one hash probe. The prune check needs the count of equal
        // ancestors because equal markings sit inside their own
        // irrelevance box but are not irrelevance witnesses.
        let (num_equal, first_equal) = self.tracker.equal_ancestors();
        self.profile.equal_ancestor_probes += 1;
        if self.tracker.should_prune(num_equal) {
            self.profile.irrelevance_cuts += 1;
            return None;
        }
        // Equal-marking ancestor: unique entering point. Record the merge
        // target now — build_schedule has no stored markings to re-derive
        // it from later.
        if let Some(depth) = first_equal {
            self.profile.equal_ancestor_hits += 1;
            let u = self.tracker.node_at(depth);
            self.nodes[v].merge_with = Some(u);
            return Some(u);
        }
        let t_in = self.nodes[v]
            .in_transition
            .expect("ep is never called on the root");
        self.tracker.push_entry(self.net, t_in, v);
        let result = self.ep_candidates(v, target);
        if self.budget_exhausted {
            // The whole search is being abandoned and its tracker dies
            // with it, so restoring per-frame tracker state is pure
            // unwind cost — on a deep path it would dwarf the budget
            // itself (hash-removing every on-path marking). Skip it.
            return None;
        }
        self.tracker.pop_entry(self.net, t_in);
        result
    }

    /// The candidate-ECS loop of EP, run while `v` is the top path entry.
    fn ep_candidates(&mut self, v: usize, target: usize) -> Option<usize> {
        // Borrow this depth's candidate buffer from the pool (the DFS has
        // one live frame per depth) and return it on every exit path.
        let depth = self.nodes[v].depth;
        if depth >= self.ecs_pool.len() {
            self.ecs_pool.resize_with(depth + 1, Vec::new);
        }
        let mut candidates = std::mem::take(&mut self.ecs_pool[depth]);
        self.fill_candidate_ecs(&mut candidates);
        let mut best: Option<usize> = None;
        let mut early: Option<Option<usize>> = None;
        for &e in &candidates {
            let result = self.ep_ecs(e, v, target);
            if self.budget_exhausted {
                early = Some(None);
                break;
            }
            if let Some(u) = result {
                if self.on_path_is_ancestor(u, target) || self.options.greedy_entering_point {
                    // An ancestor of the target is always good enough; in
                    // greedy mode any defined entering point is accepted
                    // rather than searching all ECSs for the minimum.
                    self.nodes[v].chosen_ecs = Some(e);
                    early = Some(Some(u));
                    break;
                }
                let better = match best {
                    None => true,
                    Some(b) => self.nodes[u].depth < self.nodes[b].depth,
                };
                if better {
                    self.nodes[v].chosen_ecs = Some(e);
                    best = Some(u);
                }
            }
        }
        self.ecs_pool[depth] = candidates;
        early.unwrap_or(best)
    }

    /// The EP_ECS function of Figure 9(b): the entering point of ECS `e`
    /// enabled at node `v`, i.e. the minimum over the entering points of
    /// the children created for each transition of the ECS, provided each
    /// of them is a proper ancestor of `v`.
    fn ep_ecs(&mut self, e: EcsId, v: usize, target: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut current_target = target;
        // Iterate members by index: taking a slice would borrow `self.ecs`
        // across the recursive `self.ep(..)` call, and cloning it into a
        // Vec would allocate on the hot path.
        for mi in 0..self.ecs.members(e).len() {
            let t = self.ecs.members(e)[mi];
            if self.nodes.len() >= self.options.max_nodes {
                self.budget_exhausted = true;
                return None;
            }
            // The cooperative budget charges one step per node expansion
            // (clock and cancellation flag amortized inside the checker).
            if let Some(checker) = self.budget.as_deref_mut() {
                self.profile.budget_checks += 1;
                if let Some(stop) = checker.step() {
                    self.budget_stop = Some(stop);
                    self.budget_exhausted = true;
                    return None;
                }
            }
            self.tracker.fire(self.net, t);
            self.profile.nodes_expanded += 1;
            let w = self.nodes.len();
            let depth = self.nodes[v].depth + 1;
            self.nodes.push(TreeNode {
                in_transition: Some(t),
                depth,
                children: Vec::new(),
                chosen_ecs: None,
                merge_with: None,
            });
            self.nodes[v].children.push((t, w));
            let ep = self.ep(w, current_target);
            if self.budget_exhausted {
                // Abandoned search: skip the marking restore (see `ep`).
                return None;
            }
            self.tracker.unfire(self.net, t);
            match ep {
                // The child's entering point must be `v` itself or an
                // ancestor of `v` (Sec. 5.1); anything deeper (or UNDEF)
                // means this ECS has no entering point.
                Some(u) if self.on_path_is_ancestor(u, v) => {
                    best = Some(match best {
                        None => u,
                        Some(b) => {
                            if self.nodes[u].depth < self.nodes[b].depth {
                                u
                            } else {
                                b
                            }
                        }
                    });
                    if self.on_path_is_ancestor(best.unwrap(), target) {
                        current_target = v;
                    }
                }
                _ => {
                    self.profile.backtracks += 1;
                    return None;
                }
            }
        }
        best
    }

    /// Post-processing: retain the chosen-ECS part of the tree and close
    /// the cycles by merging each retained leaf with its equal-marking
    /// ancestor. Markings are reconstructed by replaying transitions over
    /// one scratch marking along the retained tree (the search itself
    /// stored none) and hash-consed straight into the schedule's
    /// [`MarkingStore`] — revisited markings never get a second slab slot.
    fn build_schedule(&self) -> Schedule {
        let mut map: BTreeMap<usize, usize> = BTreeMap::new();
        let mut build = ScheduleBuild {
            store: MarkingStore::with_stride(self.net.num_places()),
            nodes: Vec::new(),
        };
        let mut scratch = self.net.initial_marking();
        self.assign(0, &mut scratch, &mut map, &mut build);
        Schedule::from_interned(self.source, build.store, build.nodes)
    }

    fn assign(
        &self,
        v: usize,
        scratch: &mut Marking,
        map: &mut BTreeMap<usize, usize>,
        build: &mut ScheduleBuild,
    ) -> usize {
        if let Some(&id) = map.get(&v) {
            return id;
        }
        match self.nodes[v].chosen_ecs {
            Some(ecs) => {
                let id = build.nodes.len();
                let marking = build.store.intern(scratch.as_slice());
                build.nodes.push((marking, Vec::new()));
                map.insert(v, id);
                let mut edges = Vec::new();
                for (t, w) in &self.nodes[v].children {
                    if self.ecs.ecs_of(*t) == ecs {
                        self.net.fire_into(*t, scratch);
                        let target = self.assign(*w, scratch, map, build);
                        self.net.unfire_into(*t, scratch);
                        edges.push((*t, NodeId(target as u32)));
                    }
                }
                build.nodes[id].1 = edges;
                id
            }
            None => {
                // Leaf: merge with the (minimal) equal-marking ancestor
                // recorded when the entering point was found. The ancestor
                // lies on the DFS path of this reconstruction, so it has
                // been assigned already.
                let u = self.nodes[v]
                    .merge_with
                    .expect("retained leaf must have an equal-marking ancestor");
                let id = *map
                    .get(&u)
                    .expect("merge ancestor assigned before its leaves");
                map.insert(v, id);
                id
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_petri::NetBuilder;

    /// The Figure 8(a) net.
    fn figure8() -> PetriNet {
        let mut bl = NetBuilder::new("fig8");
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let p3 = bl.place("p3", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::Internal);
        let d = bl.transition("d", TransitionKind::Internal);
        let e = bl.transition("e", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p1, b, 1);
        bl.arc_p2t(p1, c, 1);
        bl.arc_t2p(b, p2, 1);
        bl.arc_p2t(p2, d, 1);
        bl.arc_t2p(c, p3, 1);
        bl.arc_p2t(p3, e, 2);
        bl.arc_t2p(e, p1, 1);
        bl.build().unwrap()
    }

    #[test]
    fn schedules_figure8_net() {
        let net = figure8();
        let a = net.transition_by_name("a").unwrap();
        let (schedule, stats) =
            find_schedule_with_stats(&net, a, &ScheduleOptions::default()).unwrap();
        schedule.validate(&net).unwrap();
        assert!(schedule.is_single_source(&net));
        assert!(stats.nodes_created >= schedule.num_nodes());
        // The schedule of Figure 8(b) has 10 nodes before merging; after
        // cycle closure it must involve all five transitions.
        assert_eq!(schedule.involved_transitions().len(), 5);
    }

    #[test]
    fn tiny_pipeline_schedule_is_two_nodes() {
        let mut b = NetBuilder::new("tiny");
        let p = b.place("p", 0);
        let src = b.transition("in", TransitionKind::UncontrollableSource);
        let t = b.transition("consume", TransitionKind::Internal);
        b.arc_t2p(src, p, 1);
        b.arc_p2t(p, t, 1);
        let net = b.build().unwrap();
        let src = net.transition_by_name("in").unwrap();
        let schedule = find_schedule(&net, src, &ScheduleOptions::default()).unwrap();
        schedule.validate(&net).unwrap();
        assert_eq!(schedule.num_nodes(), 2);
        assert_eq!(schedule.num_edges(), 2);
    }

    #[test]
    fn non_source_transition_is_rejected() {
        let net = figure8();
        let b = net.transition_by_name("b").unwrap();
        assert!(matches!(
            find_schedule(&net, b, &ScheduleOptions::default()),
            Err(ScheduleError::NotUncontrollableSource(_))
        ));
    }

    #[test]
    fn accumulator_net_has_no_schedule() {
        let mut b = NetBuilder::new("acc");
        let p = b.place("p", 0);
        let src = b.transition("in", TransitionKind::UncontrollableSource);
        b.arc_t2p(src, p, 1);
        let net = b.build().unwrap();
        let src = net.transition_by_name("in").unwrap();
        let err = find_schedule(&net, src, &ScheduleOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::NoTInvariants | ScheduleError::NoSchedule { .. }
        ));
    }

    /// Figure 4(b): two uncontrollable sources feeding one synchronising
    /// transition — no single-source schedule exists for either.
    #[test]
    fn figure4b_has_no_single_source_schedule() {
        let mut bl = NetBuilder::new("fig4b");
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::UncontrollableSource);
        let c = bl.transition("c", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_t2p(b, p2, 1);
        bl.arc_p2t(p1, c, 1);
        bl.arc_p2t(p2, c, 1);
        let net = bl.build().unwrap();
        let a = net.transition_by_name("a").unwrap();
        let err = find_schedule(&net, a, &ScheduleOptions::default()).unwrap_err();
        assert!(matches!(err, ScheduleError::NoSchedule { .. }));
        // With the single-source restriction lifted, a (multi-source)
        // schedule exists.
        let opts = ScheduleOptions {
            single_source: false,
            ..Default::default()
        };
        let s = find_schedule(&net, a, &opts).unwrap();
        s.validate(&net).unwrap();
        assert!(!s.is_single_source(&net));
    }

    /// Figure 4(a): weights of 2 around place p1 force two firings of `a`
    /// per reaction cycle, giving a schedule with an intermediate await
    /// node, exactly as SSS(a) in the figure.
    #[test]
    fn figure4a_schedule_has_intermediate_await_node() {
        let mut bl = NetBuilder::new("fig4a");
        let p1 = bl.place("p1", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let c = bl.transition("c", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p1, c, 2);
        let net = bl.build().unwrap();
        let a = net.transition_by_name("a").unwrap();
        let s = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        s.validate(&net).unwrap();
        // r plus the intermediate await node.
        assert_eq!(s.await_nodes(&net).len(), 2);
    }

    #[test]
    fn place_bounds_termination_can_fail_where_irrelevance_succeeds() {
        // Figure 7-style divider: b consumes k tokens of p1 at once, so the
        // search must accumulate k tokens in p1 before b can fire. With a
        // pre-defined bound smaller than k the search fails; the
        // irrelevance criterion finds the schedule.
        let k = 5;
        let mut bl = NetBuilder::new("divider");
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p1, b, k);
        bl.arc_t2p(b, p2, 1);
        bl.arc_p2t(p2, c, 1);
        let net = bl.build().unwrap();
        let a = net.transition_by_name("a").unwrap();
        let tight = ScheduleOptions::with_place_bounds(k - 2);
        assert!(matches!(
            find_schedule(&net, a, &tight),
            Err(ScheduleError::NoSchedule { .. })
        ));
        let s = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        s.validate(&net).unwrap();
        // The schedule needs k await nodes (one per arrival of `a`).
        assert_eq!(s.await_nodes(&net).len() as u32, k);
    }

    #[test]
    fn heuristics_do_not_change_existence() {
        let net = figure8();
        let a = net.transition_by_name("a").unwrap();
        let with = find_schedule_with_stats(&net, a, &ScheduleOptions::default()).unwrap();
        let without =
            find_schedule_with_stats(&net, a, &ScheduleOptions::default().without_heuristics())
                .unwrap();
        with.0.validate(&net).unwrap();
        without.0.validate(&net).unwrap();
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let net = figure8();
        let a = net.transition_by_name("a").unwrap();
        let opts = ScheduleOptions {
            max_nodes: 3,
            ..Default::default()
        };
        assert!(matches!(
            find_schedule(&net, a, &opts),
            Err(ScheduleError::SearchBudgetExhausted { .. })
        ));
    }

    /// A divider chain: each stage consumes `k` tokens of the previous
    /// one, so reaching the last internal transition takes k^depth source
    /// firings — plenty of expansion steps for budget tests.
    fn divider_chain(depth: u32, k: u32) -> PetriNet {
        let mut bl = NetBuilder::new("chain");
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let mut prev = bl.place("p0", 0);
        bl.arc_t2p(a, prev, 1);
        for i in 0..depth {
            let t = bl.transition(format!("t{i}"), TransitionKind::Internal);
            let next = bl.place(format!("p{}", i + 1), 0);
            bl.arc_p2t(prev, t, k);
            bl.arc_t2p(t, next, 1);
            prev = next;
        }
        let sink = bl.transition("sink", TransitionKind::Internal);
        bl.arc_p2t(prev, sink, 1);
        bl.build().unwrap()
    }

    #[test]
    fn step_budget_stops_the_search_with_a_typed_error() {
        let net = divider_chain(4, 4);
        let a = net.transition_by_name("a").unwrap();
        let opts = ScheduleOptions::default();
        let budget = SearchBudget::unlimited().with_max_steps(20);
        let err = SearchContext::new(&net)
            .find_schedule_with_stats_budgeted(&net, a, &opts, &budget)
            .unwrap_err();
        match err {
            ScheduleError::BudgetExhausted {
                source,
                stop,
                steps,
            } => {
                assert_eq!(source, a);
                assert_eq!(stop, crate::budget::BudgetStop::Steps);
                assert_eq!(steps, 21);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_stops_the_search() {
        let net = divider_chain(4, 4);
        let a = net.transition_by_name("a").unwrap();
        let opts = ScheduleOptions::default();
        let budget = SearchBudget::unlimited().with_deadline(std::time::Instant::now());
        let err = SearchContext::new(&net)
            .find_schedule_with_stats_budgeted(&net, a, &opts, &budget)
            .unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::BudgetExhausted {
                stop: crate::budget::BudgetStop::Deadline,
                ..
            }
        ));
    }

    #[test]
    fn raised_cancel_flag_stops_the_search() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let net = divider_chain(4, 4);
        let a = net.transition_by_name("a").unwrap();
        let flag = Arc::new(AtomicBool::new(false));
        flag.store(true, Ordering::Relaxed);
        let budget = SearchBudget::unlimited().with_cancel(flag);
        let err = SearchContext::new(&net)
            .find_schedule_with_stats_budgeted(&net, a, &ScheduleOptions::default(), &budget)
            .unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::BudgetExhausted {
                stop: crate::budget::BudgetStop::Cancelled,
                ..
            }
        ));
    }

    #[test]
    fn unarmed_budget_changes_nothing() {
        // The same searches, with and without an (unlimited) budget, must
        // produce identical schedules and statistics.
        for net in [figure8(), divider_chain(2, 3)] {
            let a = net.transition_by_name("a").unwrap();
            let opts = ScheduleOptions::default();
            let context = SearchContext::new(&net);
            let plain = context.find_schedule_with_stats(&net, a, &opts).unwrap();
            let budgeted = context
                .find_schedule_with_stats_budgeted(&net, a, &opts, &SearchBudget::unlimited())
                .unwrap();
            assert_eq!(plain.1, budgeted.1);
            assert_eq!(
                plain.0.involved_transitions(),
                budgeted.0.involved_transitions()
            );
            assert_eq!(plain.0.num_nodes(), budgeted.0.num_nodes());
        }
    }

    #[test]
    fn generous_budget_still_finds_the_schedule() {
        let net = figure8();
        let a = net.transition_by_name("a").unwrap();
        let budget = SearchBudget::unlimited()
            .with_max_steps(1_000_000)
            .with_deadline(std::time::Instant::now() + std::time::Duration::from_secs(60));
        let (s, _) = SearchContext::new(&net)
            .find_schedule_with_stats_budgeted(&net, a, &ScheduleOptions::default(), &budget)
            .unwrap();
        s.validate(&net).unwrap();
    }
}
