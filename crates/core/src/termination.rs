//! Termination conditions for pruning the schedule search (Sec. 4.4).
//!
//! Two conditions from the paper are provided:
//!
//! * **place bounds** — a marking is pruned as soon as any place exceeds a
//!   pre-defined bound (the approach of Strehl et al. that the paper
//!   compares against), and
//! * **irrelevant markings** — a marking is pruned if it covers an
//!   ancestor marking on the current search path and every place where it
//!   strictly exceeds the ancestor has already reached its *degree*
//!   (saturation). This criterion adapts to the net structure and needs no
//!   a-priori bounds.
//!
//! Declared channel bounds in the net (user-specified `Place::bound`) are
//! always respected in addition to the selected criterion.

use qss_petri::{
    place_count_hash, place_degree, Marking, MarkingId, MarkingStore, PetriNet, PlaceId,
    TransitionId,
};
use serde::{Deserialize, Serialize};

/// Which pruning criterion to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationKind {
    /// The irrelevant-marking criterion based on place degrees
    /// (Definition 4.5).
    Irrelevance,
    /// Prune any marking in which some place holds more than `default`
    /// tokens (unless the place declares its own bound, which then
    /// applies).
    PlaceBounds {
        /// Uniform bound applied to places without a declared bound.
        default: u32,
    },
}

/// A termination condition bound to a specific net.
#[derive(Debug, Clone)]
pub struct Termination {
    kind: TerminationKind,
    degrees: Vec<u32>,
    declared_bounds: Vec<Option<u32>>,
}

impl Termination {
    /// Builds a termination condition of the given kind for `net`.
    pub fn new(net: &PetriNet, kind: TerminationKind) -> Self {
        let degrees = net.place_ids().map(|p| place_degree(net, p)).collect();
        let declared_bounds = net.place_ids().map(|p| net.place(p).bound).collect();
        Termination {
            kind,
            degrees,
            declared_bounds,
        }
    }

    /// Convenience constructor for the irrelevance criterion.
    pub fn irrelevance(net: &PetriNet) -> Self {
        Termination::new(net, TerminationKind::Irrelevance)
    }

    /// Convenience constructor for uniform place bounds.
    pub fn place_bounds(net: &PetriNet, default: u32) -> Self {
        Termination::new(net, TerminationKind::PlaceBounds { default })
    }

    /// The criterion kind.
    pub fn kind(&self) -> TerminationKind {
        self.kind
    }

    /// The degree of place `p` used by the irrelevance criterion.
    pub fn degree(&self, p: PlaceId) -> u32 {
        self.degrees[p.index()]
    }

    /// Returns `true` if the search should *not* explore beyond a node
    /// carrying `marking`, given the markings of its proper ancestors on
    /// the current search path (root first).
    pub fn should_prune(&self, marking: &Marking, ancestors: &[&Marking]) -> bool {
        // Declared bounds always apply (blocking-write semantics).
        for (i, bound) in self.declared_bounds.iter().enumerate() {
            if let Some(b) = bound {
                if marking.tokens(PlaceId::new(i)) > *b {
                    return true;
                }
            }
        }
        match self.kind {
            TerminationKind::PlaceBounds { default } => {
                marking.as_slice().iter().enumerate().any(|(i, &tokens)| {
                    let bound = self.declared_bounds[i].unwrap_or(default);
                    tokens > bound
                })
            }
            TerminationKind::Irrelevance => self.is_irrelevant(marking, ancestors),
        }
    }

    /// Definition 4.5: `marking` is irrelevant with respect to the path if
    /// some ancestor marking `M` exists such that (a) `marking` is
    /// reachable from `M` (guaranteed because `M` is an ancestor on the
    /// search path), (b) no place has fewer tokens in `marking` than in
    /// `M`, and (c) every place that gained tokens was already *saturated*
    /// in `M`, i.e. held at least its degree there.
    ///
    /// Condition (c) follows the paper's Figure 7 discussion ("the marking
    /// is not irrelevant because in all the preceding markings … the place
    /// is not saturated"): accumulating further tokens is only pointless if
    /// the place had already reached its degree before the growth, which is
    /// exactly what allows the search to saturate a place up to its degree
    /// when a successor needs several tokens (Figure 4(a)).
    pub fn is_irrelevant(&self, marking: &Marking, ancestors: &[&Marking]) -> bool {
        ancestors.iter().any(|m| {
            marking.covers(m)
                && marking != *m
                && marking
                    .strictly_greater_places(m)
                    .iter()
                    .all(|p| m.tokens(*p) >= self.degrees[p.index()])
        })
    }
}

/// One count-change segment of a place's on-path history: the place held
/// `count` tokens from path entry `start` until the next segment's start
/// (or the top of the path for the last segment).
#[derive(Debug, Clone, Copy)]
struct Seg {
    count: u32,
    start: u32,
}

/// Incremental per-path search state: the scratch marking, cumulative
/// transition firing counts, a marking-hash index over on-path ancestors,
/// and the incremental irrelevance/bound trackers. The EP search drives it
/// with strictly LIFO `fire`/`push_entry` … `pop_entry`/`unfire` calls, so
/// every per-node question the search asks — "should this marking be
/// pruned?", "which ancestor carries an equal marking?", "how often has
/// each transition fired on this path?" — is answered in `O(changed
/// places)` in the typical case instead of `O(depth × places)` always.
/// The worst case is weaker: a box-boundary move must flip every path
/// entry holding an affected count (see [`PathTracker::fire`]), so a
/// place oscillating between two counts along a deep path degrades a
/// single fire back towards `O(depth)` — still never worse than the
/// recompute-from-scratch engine, which pays `O(depth × places)` on
/// every node unconditionally.
///
/// # How the irrelevance check becomes incremental
///
/// Definition 4.5 prunes a marking `C` iff some proper on-path ancestor
/// `M ≠ C` satisfies: `C` covers `M` and every place where `C` strictly
/// exceeds `M` was already saturated in `M` (held at least its degree).
/// Per place that is a *box* condition:
///
/// ```text
/// M(p) ∈ [min(C(p), degree(p)), C(p)]
/// ```
///
/// so `C` is irrelevant iff some ancestor lies in the box on **every**
/// place and differs from `C` somewhere. The tracker maintains, for every
/// path entry, the number of places whose box condition it violates
/// (`viol`), and the count of entries with zero violations (`num_valid`).
/// When a transition fires, only the boxes of its changed places move,
/// and each box boundary moves by at most the arc weight — the entries
/// whose validity flips are found through a per-place `count → segments`
/// index of the path history. Ancestors *equal* to `C` are excluded by
/// subtracting the bucket length of `C`'s [`MarkingId`] in the interned
/// ancestor index.
///
/// # Interned ancestors
///
/// Every pushed path entry's marking is hash-consed into a
/// [`MarkingStore`] (typically the per-net store cached by the search
/// context, so the initial marking is shared). The equal-ancestor index
/// maps a `MarkingId` — not a raw hash — to the ascending path entries
/// carrying that marking, which makes the equal-marking-ancestor query a
/// store probe plus one integer-keyed map lookup: interning has already
/// established exact equality, so no per-place verification remains and
/// hash collisions cannot surface here.
#[derive(Debug, Clone)]
pub struct PathTracker {
    kind: TerminationKind,
    degrees: Vec<u32>,
    /// Effective bound per place: the declared bound if any, else the
    /// uniform default in `PlaceBounds` mode, else `u32::MAX` (no bound).
    eff_bounds: Vec<u32>,
    /// The scratch marking `C` of the node currently being explored.
    marking: Marking,
    /// Incremental [`Marking::path_hash`] of `C`.
    hash: u64,
    /// Cumulative firing count per transition along the current path.
    fired: Vec<u64>,
    /// Per path entry: number of places violating the box condition.
    viol: Vec<u32>,
    /// Per path entry: the search-tree node it corresponds to.
    node_at: Vec<usize>,
    /// Number of path entries with `viol == 0`.
    num_valid: usize,
    /// Number of places with `C(p) > eff_bounds[p]`.
    bound_over: usize,
    /// Per place: stack of count-change segments along the path.
    segs: Vec<Vec<Seg>>,
    /// Per place: count value → indices into `segs[p]` holding that count
    /// (a vector indexed by count; on-path counts stay small because both
    /// pruning criteria cut off unbounded growth).
    occ: Vec<Vec<Vec<u32>>>,
    /// Hash-consed markings of every path entry ever pushed.
    store: MarkingStore,
    /// Per path entry: the interned id of its marking.
    entry_ids: Vec<MarkingId>,
    /// Per interned marking (dense by [`MarkingId`] index): how many path
    /// entries currently carry it. Ids are dense, so the ancestor query
    /// is an array index instead of a hash probe.
    entry_count_by_id: Vec<u32>,
    /// Per interned marking: the minimal (closest to the root) path entry
    /// carrying it. Pushes and pops are strictly LIFO, so the value set
    /// when the count left zero stays correct until it returns to zero.
    first_entry_by_id: Vec<u32>,
    /// Memoized store lookup of the current marking (guarded by its
    /// hash): [`PathTracker::equal_ancestors`] resolves the id,
    /// [`PathTracker::push_entry`] reuses it, any marking change clears
    /// it.
    cached_lookup: Option<(u64, Option<MarkingId>)>,
}

impl PathTracker {
    /// Builds a tracker for `net` with the root entry (the initial
    /// marking, tree node 0) already on the path, interning markings into
    /// a fresh store.
    pub fn new(net: &PetriNet, kind: TerminationKind) -> Self {
        PathTracker::with_store(net, kind, MarkingStore::new())
    }

    /// Like [`PathTracker::new`] but interning into `store` (usually the
    /// per-net store cloned from a search context, which already holds the
    /// initial marking).
    pub fn with_store(net: &PetriNet, kind: TerminationKind, store: MarkingStore) -> Self {
        let num_places = net.num_places();
        let degrees: Vec<u32> = net.place_ids().map(|p| place_degree(net, p)).collect();
        let eff_bounds: Vec<u32> = net
            .place_ids()
            .map(|p| match (net.place(p).bound, kind) {
                (Some(b), _) => b,
                (None, TerminationKind::PlaceBounds { default }) => default,
                (None, TerminationKind::Irrelevance) => u32::MAX,
            })
            .collect();
        let marking = net.initial_marking();
        let hash = marking.path_hash();
        let bound_over = (0..num_places)
            .filter(|&i| marking.tokens(PlaceId::new(i)) > eff_bounds[i])
            .count();
        let segs: Vec<Vec<Seg>> = (0..num_places)
            .map(|i| {
                vec![Seg {
                    count: marking.tokens(PlaceId::new(i)),
                    start: 0,
                }]
            })
            .collect();
        let occ: Vec<Vec<Vec<u32>>> = (0..num_places)
            .map(|i| {
                let count = marking.tokens(PlaceId::new(i)) as usize;
                let mut by_count = vec![Vec::new(); count + 1];
                by_count[count].push(0u32);
                by_count
            })
            .collect();
        let mut store = store;
        let root_id = store.intern_hashed(hash, marking.as_slice());
        let mut entry_count_by_id = vec![0u32; store.len()];
        let mut first_entry_by_id = vec![0u32; store.len()];
        entry_count_by_id[root_id.index()] = 1;
        first_entry_by_id[root_id.index()] = 0;
        PathTracker {
            kind,
            degrees,
            eff_bounds,
            marking,
            hash,
            fired: vec![0; net.num_transitions()],
            viol: vec![0],
            node_at: vec![0],
            num_valid: 1,
            bound_over,
            segs,
            occ,
            store,
            entry_ids: vec![root_id],
            entry_count_by_id,
            first_entry_by_id,
            cached_lookup: None,
        }
    }

    /// The marking of the node currently being explored.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// Firing counts of every transition along the current path,
    /// including the transition entering the current node.
    pub fn fired(&self) -> &[u64] {
        &self.fired
    }

    /// The tree node behind path entry `depth`.
    pub fn node_at(&self, depth: usize) -> usize {
        self.node_at[depth]
    }

    /// Number of entries on the path (= proper ancestors of the node
    /// whose marking is currently in the tracker, before `push_entry`).
    pub fn len(&self) -> usize {
        self.viol.len()
    }

    /// `true` if the path holds no entries (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.viol.is_empty()
    }

    /// Applies `t` to the scratch marking and updates every incremental
    /// structure. Call when the search descends along `t`.
    pub fn fire(&mut self, net: &PetriNet, t: TransitionId) {
        self.fired[t.index()] += 1;
        for &(p, delta) in net.changed_places(t) {
            self.place_changed(p, delta);
        }
    }

    /// Reverts a previous [`PathTracker::fire`] of `t`. Calls must be
    /// strictly LIFO with respect to `fire`.
    pub fn unfire(&mut self, net: &PetriNet, t: TransitionId) {
        self.fired[t.index()] -= 1;
        for &(p, delta) in net.changed_places(t) {
            self.place_changed(p, -delta);
        }
    }

    fn place_changed(&mut self, p: PlaceId, delta: i64) {
        self.cached_lookup = None;
        let old = self.marking.tokens(p);
        self.marking.apply_delta(p, delta);
        let new = self.marking.tokens(p);
        self.hash = self
            .hash
            .wrapping_sub(place_count_hash(p, old))
            .wrapping_add(place_count_hash(p, new));
        let bound = self.eff_bounds[p.index()];
        match (old > bound, new > bound) {
            (false, true) => self.bound_over += 1,
            (true, false) => self.bound_over -= 1,
            _ => {}
        }
        self.shift_box(p, old, new);
    }

    /// Moves place `p`'s box from `[min(old, deg), old]` to
    /// `[min(new, deg), new]`, flipping the violation state of every path
    /// entry whose count for `p` enters or leaves the box. Both boundary
    /// moves span at most `|old − new|` count values, and only count
    /// values actually occurring on the path cost anything.
    fn shift_box(&mut self, p: PlaceId, old: u32, new: u32) {
        let deg = self.degrees[p.index()];
        let old_box = (old.min(deg), old);
        let new_box = (new.min(deg), new);
        if old_box == new_box {
            return;
        }
        // Counts in old_box but not new_box become violations (+1);
        // counts in new_box but not old_box stop violating (−1).
        for (lo, hi) in interval_difference(old_box, new_box) {
            for count in lo..=hi {
                self.flip(p, count, 1);
            }
        }
        for (lo, hi) in interval_difference(new_box, old_box) {
            for count in lo..=hi {
                self.flip(p, count, -1);
            }
        }
    }

    /// Adjusts the violation counter of every path entry where `p` holds
    /// exactly `count` tokens.
    fn flip(&mut self, p: PlaceId, count: u32, sign: i32) {
        let Some(seg_ids) = self.occ[p.index()].get(count as usize) else {
            return;
        };
        if seg_ids.is_empty() {
            return;
        }
        let segs = &self.segs[p.index()];
        let top = self.viol.len();
        for &si in seg_ids {
            let start = segs[si as usize].start as usize;
            let end = segs
                .get(si as usize + 1)
                .map(|s| s.start as usize)
                .unwrap_or(top);
            for entry in start..end {
                if sign > 0 {
                    if self.viol[entry] == 0 {
                        self.num_valid -= 1;
                    }
                    self.viol[entry] += 1;
                } else {
                    self.viol[entry] -= 1;
                    if self.viol[entry] == 0 {
                        self.num_valid += 1;
                    }
                }
            }
        }
    }

    /// Pushes the node whose marking is currently in the tracker as a new
    /// path entry. `t` is the transition that entered it (the same one
    /// passed to the preceding [`PathTracker::fire`]).
    pub fn push_entry(&mut self, net: &PetriNet, t: TransitionId, node: usize) {
        let depth = self.viol.len() as u32;
        for &(p, _) in net.changed_places(t) {
            let count = self.marking.tokens(p);
            let si = self.segs[p.index()].len() as u32;
            let by_count = &mut self.occ[p.index()];
            if by_count.len() <= count as usize {
                by_count.resize(count as usize + 1, Vec::new());
            }
            by_count[count as usize].push(si);
            self.segs[p.index()].push(Seg {
                count,
                start: depth,
            });
        }
        // The new entry's marking equals the current marking, which lies
        // in its own box on every place: zero violations by construction.
        self.viol.push(0);
        self.num_valid += 1;
        self.node_at.push(node);
        // Reuse the id `equal_ancestors` just resolved for this marking
        // (the search always queries before pushing); intern otherwise.
        let id = match self.cached_lookup.take() {
            Some((hash, Some(id))) if hash == self.hash => id,
            _ => self.store.intern_hashed(self.hash, self.marking.as_slice()),
        };
        self.entry_ids.push(id);
        if self.entry_count_by_id.len() < self.store.len() {
            self.entry_count_by_id.resize(self.store.len(), 0);
            self.first_entry_by_id.resize(self.store.len(), 0);
        }
        let count = &mut self.entry_count_by_id[id.index()];
        if *count == 0 {
            self.first_entry_by_id[id.index()] = depth;
        }
        *count += 1;
    }

    /// Pops the top path entry. Calls must be strictly LIFO with respect
    /// to [`PathTracker::push_entry`]. The entry's marking stays interned
    /// in the store (interning is append-only); only the on-path ancestor
    /// index forgets it.
    pub fn pop_entry(&mut self, net: &PetriNet, t: TransitionId) {
        let viol = self.viol.pop().expect("pop_entry on an empty path");
        debug_assert_eq!(viol, 0, "a path entry must leave as it arrived");
        self.num_valid -= 1;
        self.node_at.pop();
        for &(p, _) in net.changed_places(t) {
            let seg = self.segs[p.index()].pop().expect("segment stack underflow");
            self.occ[p.index()][seg.count as usize].pop();
        }
        let id = self.entry_ids.pop().expect("entry id stack underflow");
        self.entry_count_by_id[id.index()] -= 1;
    }

    /// Proper on-path ancestors whose marking equals the current marking:
    /// how many there are, and the minimal (closest to the root) one.
    /// One store probe (reusing the incrementally maintained hash) plus
    /// an array index: interning already established exact equality, so
    /// the bucket needs no per-entry verification. The resolved id is
    /// memoized for the [`PathTracker::push_entry`] that typically
    /// follows.
    pub fn equal_ancestors(&mut self) -> (usize, Option<usize>) {
        let id = match self.cached_lookup {
            Some((hash, id)) if hash == self.hash => id,
            _ => {
                let id = self.store.lookup_hashed(self.hash, self.marking.as_slice());
                self.cached_lookup = Some((self.hash, id));
                id
            }
        };
        let Some(id) = id else {
            return (0, None);
        };
        match self.entry_count_by_id.get(id.index()).copied() {
            Some(count) if count > 0 => (
                count as usize,
                Some(self.first_entry_by_id[id.index()] as usize),
            ),
            _ => (0, None),
        }
    }

    /// Whether the node whose marking is currently in the tracker should
    /// be pruned, given the number of proper ancestors with an equal
    /// marking (from [`PathTracker::equal_ancestors`]). Matches
    /// [`Termination::should_prune`] over the same path exactly.
    pub fn should_prune(&self, num_equal: usize) -> bool {
        if self.bound_over > 0 {
            return true;
        }
        match self.kind {
            // Every effective bound is already folded into `bound_over`.
            TerminationKind::PlaceBounds { .. } => false,
            // Irrelevant iff some in-box ancestor is not an equal marking.
            TerminationKind::Irrelevance => self.num_valid > num_equal,
        }
    }
}

/// The parts of the closed interval `a` not covered by the closed
/// interval `b` (at most two closed intervals).
fn interval_difference(a: (u32, u32), b: (u32, u32)) -> impl Iterator<Item = (u32, u32)> {
    let (alo, ahi) = a;
    let (blo, bhi) = b;
    let left = if alo < blo {
        Some((alo, ahi.min(blo - 1)))
    } else {
        None
    };
    let right = if ahi > bhi {
        Some((alo.max(bhi + 1), ahi))
    } else {
        None
    };
    left.into_iter().chain(right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_petri::{NetBuilder, TransitionKind};

    fn net_with_weights() -> PetriNet {
        let mut b = NetBuilder::new("w");
        let p = b.place("p", 0);
        let q = b.place("q", 0);
        let a = b.transition("a", TransitionKind::UncontrollableSource);
        let c = b.transition("c", TransitionKind::Internal);
        b.arc_t2p(a, p, 2);
        b.arc_p2t(p, c, 3);
        b.arc_t2p(c, q, 1);
        b.build().unwrap()
    }

    #[test]
    fn place_bound_pruning() {
        let net = net_with_weights();
        let term = Termination::place_bounds(&net, 3);
        let ok = Marking::from_counts([3, 0]);
        let too_many = Marking::from_counts([4, 0]);
        assert!(!term.should_prune(&ok, &[]));
        assert!(term.should_prune(&too_many, &[]));
        assert_eq!(term.kind(), TerminationKind::PlaceBounds { default: 3 });
    }

    #[test]
    fn declared_bounds_override_default_and_apply_to_irrelevance() {
        let mut b = NetBuilder::new("bounded");
        let p = b.place("p", 0);
        b.set_place_bound(p, Some(1));
        let t = b.transition("t", TransitionKind::UncontrollableSource);
        b.arc_t2p(t, p, 1);
        let net = b.build().unwrap();
        let term = Termination::irrelevance(&net);
        assert!(term.should_prune(&Marking::from_counts([2]), &[]));
        assert!(!term.should_prune(&Marking::from_counts([1]), &[]));
        let term = Termination::place_bounds(&net, 100);
        assert!(term.should_prune(&Marking::from_counts([2]), &[]));
    }

    #[test]
    fn irrelevance_requires_covering_and_saturation() {
        let net = net_with_weights();
        // degree(p) = 2 + 3 - 1 = 4, degree(q) = 1 + 0 ... = max(1+1-1,0)=1
        let term = Termination::irrelevance(&net);
        assert_eq!(term.degree(PlaceId::new(0)), 4);
        // Growth from an unsaturated ancestor (p = 2 < degree 4) is useful.
        let ancestor = Marking::from_counts([2, 0]);
        let m5 = Marking::from_counts([5, 0]);
        assert!(!term.is_irrelevant(&m5, &[&ancestor]));
        // Growth from a saturated ancestor (p = 4 >= degree 4) is pruned.
        let saturated = Marking::from_counts([4, 0]);
        assert!(term.is_irrelevant(&m5, &[&saturated]));
        // Equal markings are not "irrelevant" (that case is handled by the
        // entering-point check in the search).
        assert!(!term.is_irrelevant(&saturated, &[&saturated]));
        // Not covering (q decreased) is never irrelevant.
        let anc2 = Marking::from_counts([4, 1]);
        assert!(!term.is_irrelevant(&m5, &[&anc2]));
    }

    /// Drives a [`PathTracker`] and the recompute-from-scratch
    /// [`Termination`] down the same firing path, asserting that the
    /// incremental prune/equal answers match the oracle at every step.
    fn assert_tracker_matches_oracle(
        net: &PetriNet,
        kind: TerminationKind,
        path: &[qss_petri::TransitionId],
    ) {
        let term = Termination::new(net, kind);
        let mut tracker = PathTracker::new(net, kind);
        let mut markings = vec![net.initial_marking()];
        for &t in path {
            tracker.fire(net, t);
            let current = net.fire_unchecked(t, markings.last().unwrap());
            let ancestors: Vec<&Marking> = markings.iter().collect();
            let (num_equal, first_equal) = tracker.equal_ancestors();
            let oracle_equal = markings.iter().position(|m| *m == current);
            assert_eq!(first_equal, oracle_equal, "minimal equal ancestor");
            assert_eq!(
                num_equal,
                markings.iter().filter(|m| **m == current).count(),
                "equal ancestor count"
            );
            assert_eq!(
                tracker.should_prune(num_equal),
                term.should_prune(&current, &ancestors),
                "prune decision at path position {}",
                markings.len()
            );
            tracker.push_entry(net, t, markings.len());
            markings.push(current);
        }
        // Unwind completely; the tracker must return to its initial state.
        for &t in path.iter().rev() {
            tracker.pop_entry(net, t);
            tracker.unfire(net, t);
        }
        assert_eq!(tracker.marking(), &net.initial_marking());
        assert_eq!(tracker.len(), 1);
        assert!(tracker.fired().iter().all(|&f| f == 0));
    }

    #[test]
    fn tracker_matches_oracle_on_divider_path() {
        // a -(1)-> p1 -(3)-> b -> p2 -> c: saturate p1, drain, repeat.
        let mut bl = NetBuilder::new("div");
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p1, b, 3);
        bl.arc_t2p(b, p2, 1);
        bl.arc_p2t(p2, c, 1);
        let net = bl.build().unwrap();
        let a = net.transition_by_name("a").unwrap();
        let b = net.transition_by_name("b").unwrap();
        let c = net.transition_by_name("c").unwrap();
        let path = [a, a, a, b, c, a, a, a, b, c, a];
        assert_tracker_matches_oracle(&net, TerminationKind::Irrelevance, &path);
        assert_tracker_matches_oracle(&net, TerminationKind::PlaceBounds { default: 4 }, &path);
    }

    #[test]
    fn tracker_prunes_saturated_growth_like_oracle() {
        let net = net_with_weights();
        let a = net.transition_by_name("a").unwrap();
        // degree(p) = 4; firing `a` (produces 2) three times reaches 6,
        // covering the saturated 4-token ancestor: both must prune there.
        assert_tracker_matches_oracle(&net, TerminationKind::Irrelevance, &[a, a, a, a]);
    }

    #[test]
    fn tracker_respects_declared_bounds() {
        let mut b = NetBuilder::new("bounded");
        let p = b.place("p", 0);
        b.set_place_bound(p, Some(1));
        let t = b.transition("t", TransitionKind::UncontrollableSource);
        b.arc_t2p(t, p, 1);
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        assert_tracker_matches_oracle(&net, TerminationKind::Irrelevance, &[t, t]);
        let mut tracker = PathTracker::new(&net, TerminationKind::Irrelevance);
        tracker.fire(&net, t);
        tracker.push_entry(&net, t, 1);
        tracker.fire(&net, t);
        let (num_equal, _) = tracker.equal_ancestors();
        assert!(
            tracker.should_prune(num_equal),
            "2 tokens exceed the declared bound 1"
        );
    }

    #[test]
    fn irrelevance_checks_every_ancestor() {
        let net = net_with_weights();
        let term = Termination::irrelevance(&net);
        let a1 = Marking::from_counts([0, 0]);
        let a2 = Marking::from_counts([5, 1]);
        let m = Marking::from_counts([6, 1]);
        // Not irrelevant w.r.t. a1 (p was far below its degree there), but
        // irrelevant w.r.t. a2 (p was already saturated at 5 >= 4).
        assert!(!term.is_irrelevant(&m, &[&a1]));
        assert!(term.is_irrelevant(&m, &[&a1, &a2]));
        assert!(term.should_prune(&m, &[&a1, &a2]));
        assert!(!term.should_prune(&m, &[&a1]));
    }
}
