//! Termination conditions for pruning the schedule search (Sec. 4.4).
//!
//! Two conditions from the paper are provided:
//!
//! * **place bounds** — a marking is pruned as soon as any place exceeds a
//!   pre-defined bound (the approach of Strehl et al. that the paper
//!   compares against), and
//! * **irrelevant markings** — a marking is pruned if it covers an
//!   ancestor marking on the current search path and every place where it
//!   strictly exceeds the ancestor has already reached its *degree*
//!   (saturation). This criterion adapts to the net structure and needs no
//!   a-priori bounds.
//!
//! Declared channel bounds in the net (user-specified `Place::bound`) are
//! always respected in addition to the selected criterion.

use qss_petri::{place_degree, Marking, PetriNet, PlaceId};
use serde::{Deserialize, Serialize};

/// Which pruning criterion to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationKind {
    /// The irrelevant-marking criterion based on place degrees
    /// (Definition 4.5).
    Irrelevance,
    /// Prune any marking in which some place holds more than `default`
    /// tokens (unless the place declares its own bound, which then
    /// applies).
    PlaceBounds {
        /// Uniform bound applied to places without a declared bound.
        default: u32,
    },
}

/// A termination condition bound to a specific net.
#[derive(Debug, Clone)]
pub struct Termination {
    kind: TerminationKind,
    degrees: Vec<u32>,
    declared_bounds: Vec<Option<u32>>,
}

impl Termination {
    /// Builds a termination condition of the given kind for `net`.
    pub fn new(net: &PetriNet, kind: TerminationKind) -> Self {
        let degrees = net.place_ids().map(|p| place_degree(net, p)).collect();
        let declared_bounds = net.place_ids().map(|p| net.place(p).bound).collect();
        Termination {
            kind,
            degrees,
            declared_bounds,
        }
    }

    /// Convenience constructor for the irrelevance criterion.
    pub fn irrelevance(net: &PetriNet) -> Self {
        Termination::new(net, TerminationKind::Irrelevance)
    }

    /// Convenience constructor for uniform place bounds.
    pub fn place_bounds(net: &PetriNet, default: u32) -> Self {
        Termination::new(net, TerminationKind::PlaceBounds { default })
    }

    /// The criterion kind.
    pub fn kind(&self) -> TerminationKind {
        self.kind
    }

    /// The degree of place `p` used by the irrelevance criterion.
    pub fn degree(&self, p: PlaceId) -> u32 {
        self.degrees[p.index()]
    }

    /// Returns `true` if the search should *not* explore beyond a node
    /// carrying `marking`, given the markings of its proper ancestors on
    /// the current search path (root first).
    pub fn should_prune(&self, marking: &Marking, ancestors: &[&Marking]) -> bool {
        // Declared bounds always apply (blocking-write semantics).
        for (i, bound) in self.declared_bounds.iter().enumerate() {
            if let Some(b) = bound {
                if marking.tokens(PlaceId::new(i)) > *b {
                    return true;
                }
            }
        }
        match self.kind {
            TerminationKind::PlaceBounds { default } => marking
                .as_slice()
                .iter()
                .enumerate()
                .any(|(i, &tokens)| {
                    let bound = self.declared_bounds[i].unwrap_or(default);
                    tokens > bound
                }),
            TerminationKind::Irrelevance => self.is_irrelevant(marking, ancestors),
        }
    }

    /// Definition 4.5: `marking` is irrelevant with respect to the path if
    /// some ancestor marking `M` exists such that (a) `marking` is
    /// reachable from `M` (guaranteed because `M` is an ancestor on the
    /// search path), (b) no place has fewer tokens in `marking` than in
    /// `M`, and (c) every place that gained tokens was already *saturated*
    /// in `M`, i.e. held at least its degree there.
    ///
    /// Condition (c) follows the paper's Figure 7 discussion ("the marking
    /// is not irrelevant because in all the preceding markings … the place
    /// is not saturated"): accumulating further tokens is only pointless if
    /// the place had already reached its degree before the growth, which is
    /// exactly what allows the search to saturate a place up to its degree
    /// when a successor needs several tokens (Figure 4(a)).
    pub fn is_irrelevant(&self, marking: &Marking, ancestors: &[&Marking]) -> bool {
        ancestors.iter().any(|m| {
            marking.covers(m)
                && marking != *m
                && marking
                    .strictly_greater_places(m)
                    .iter()
                    .all(|p| m.tokens(*p) >= self.degrees[p.index()])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_petri::{NetBuilder, TransitionKind};

    fn net_with_weights() -> PetriNet {
        let mut b = NetBuilder::new("w");
        let p = b.place("p", 0);
        let q = b.place("q", 0);
        let a = b.transition("a", TransitionKind::UncontrollableSource);
        let c = b.transition("c", TransitionKind::Internal);
        b.arc_t2p(a, p, 2);
        b.arc_p2t(p, c, 3);
        b.arc_t2p(c, q, 1);
        b.build().unwrap()
    }

    #[test]
    fn place_bound_pruning() {
        let net = net_with_weights();
        let term = Termination::place_bounds(&net, 3);
        let ok = Marking::from_counts([3, 0]);
        let too_many = Marking::from_counts([4, 0]);
        assert!(!term.should_prune(&ok, &[]));
        assert!(term.should_prune(&too_many, &[]));
        assert_eq!(term.kind(), TerminationKind::PlaceBounds { default: 3 });
    }

    #[test]
    fn declared_bounds_override_default_and_apply_to_irrelevance() {
        let mut b = NetBuilder::new("bounded");
        let p = b.place("p", 0);
        b.set_place_bound(p, Some(1));
        let t = b.transition("t", TransitionKind::UncontrollableSource);
        b.arc_t2p(t, p, 1);
        let net = b.build().unwrap();
        let term = Termination::irrelevance(&net);
        assert!(term.should_prune(&Marking::from_counts([2]), &[]));
        assert!(!term.should_prune(&Marking::from_counts([1]), &[]));
        let term = Termination::place_bounds(&net, 100);
        assert!(term.should_prune(&Marking::from_counts([2]), &[]));
    }

    #[test]
    fn irrelevance_requires_covering_and_saturation() {
        let net = net_with_weights();
        // degree(p) = 2 + 3 - 1 = 4, degree(q) = 1 + 0 ... = max(1+1-1,0)=1
        let term = Termination::irrelevance(&net);
        assert_eq!(term.degree(PlaceId::new(0)), 4);
        // Growth from an unsaturated ancestor (p = 2 < degree 4) is useful.
        let ancestor = Marking::from_counts([2, 0]);
        let m5 = Marking::from_counts([5, 0]);
        assert!(!term.is_irrelevant(&m5, &[&ancestor]));
        // Growth from a saturated ancestor (p = 4 >= degree 4) is pruned.
        let saturated = Marking::from_counts([4, 0]);
        assert!(term.is_irrelevant(&m5, &[&saturated]));
        // Equal markings are not "irrelevant" (that case is handled by the
        // entering-point check in the search).
        assert!(!term.is_irrelevant(&saturated, &[&saturated]));
        // Not covering (q decreased) is never irrelevant.
        let anc2 = Marking::from_counts([4, 1]);
        assert!(!term.is_irrelevant(&m5, &[&anc2]));
    }

    #[test]
    fn irrelevance_checks_every_ancestor() {
        let net = net_with_weights();
        let term = Termination::irrelevance(&net);
        let a1 = Marking::from_counts([0, 0]);
        let a2 = Marking::from_counts([5, 1]);
        let m = Marking::from_counts([6, 1]);
        // Not irrelevant w.r.t. a1 (p was far below its degree there), but
        // irrelevant w.r.t. a2 (p was already saturated at 5 >= 4).
        assert!(!term.is_irrelevant(&m, &[&a1]));
        assert!(term.is_irrelevant(&m, &[&a1, &a2]));
        assert!(term.should_prune(&m, &[&a1, &a2]));
        assert!(!term.should_prune(&m, &[&a1]));
    }
}
