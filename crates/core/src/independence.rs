//! Independence of schedule sets and static channel bounds (Sec. 4.3).
//!
//! Two single-source schedules are *mutually independent* if every place
//! involved in one of them holds a constant number of tokens over all
//! await nodes of the other. An independent set of SS schedules is
//! executable (Proposition 4.2) and yields tight static bounds on the
//! token count of every place — for channel places this is the buffer
//! size the implementation has to provide.

use crate::schedule::{NodeId, Schedule};
use qss_petri::{PetriNet, PlaceId, TransitionId};
use std::collections::{BTreeMap, BTreeSet};

/// Returns `true` if `a` and `b` are mutually independent with respect to
/// `net` (Definition 4.3).
pub fn are_independent(a: &Schedule, b: &Schedule, net: &PetriNet) -> bool {
    let (a_places, a_awaits) = (a.involved_places(net), a.await_nodes(net));
    let (b_places, b_awaits) = (b.involved_places(net), b.await_nodes(net));
    places_constant_at_awaits(&a_places, b, &b_awaits)
        && places_constant_at_awaits(&b_places, a, &a_awaits)
}

/// Checks that every place of `places` holds the same token count at every
/// await node of `other`.
fn places_constant_at_awaits(
    places: &BTreeSet<PlaceId>,
    other: &Schedule,
    awaits: &[NodeId],
) -> bool {
    places.iter().all(|p| {
        // `Schedule::marking` hands out store rows: no per-probe cloning.
        let mut counts = awaits.iter().map(|v| other.marking(*v)[p.index()]);
        match counts.next() {
            None => true,
            Some(first) => counts.all(|c| c == first),
        }
    })
}

/// Checks pairwise independence of a set of schedules. The involved-place
/// sets and await-node lists are derived once per schedule, not once per
/// pair.
///
/// # Errors
/// Returns the source transitions of the first interfering pair.
pub fn is_independent_set(
    schedules: &[Schedule],
    net: &PetriNet,
) -> std::result::Result<(), (TransitionId, TransitionId)> {
    let places: Vec<BTreeSet<PlaceId>> = schedules.iter().map(|s| s.involved_places(net)).collect();
    let awaits: Vec<Vec<NodeId>> = schedules.iter().map(|s| s.await_nodes(net)).collect();
    for (i, a) in schedules.iter().enumerate() {
        for (j, b) in schedules.iter().enumerate().skip(i + 1) {
            if !places_constant_at_awaits(&places[i], b, &awaits[j])
                || !places_constant_at_awaits(&places[j], a, &awaits[i])
            {
                return Err((a.source(), b.source()));
            }
        }
    }
    Ok(())
}

/// The static token bound of every place involved in at least one
/// schedule: the maximum token count over all nodes of the schedules the
/// place is involved in (Sec. 4.3). For channel places this is the buffer
/// size needed by the generated tasks.
pub fn channel_bounds(schedules: &[Schedule], net: &PetriNet) -> BTreeMap<PlaceId, u32> {
    let mut bounds = BTreeMap::new();
    for s in schedules {
        for p in s.involved_places(net) {
            let peak = s.place_peak(p);
            let entry = bounds.entry(p).or_insert(0);
            *entry = (*entry).max(peak);
        }
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ep::{find_schedule, ScheduleOptions};
    use qss_petri::{NetBuilder, TransitionKind};

    /// Figure 5: two independent reactive chains sharing the idle place p0.
    fn figure5() -> PetriNet {
        let mut bl = NetBuilder::new("fig5");
        let p0 = bl.place("p0", 1);
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let p3 = bl.place("p3", 0);
        let p4 = bl.place("p4", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::Internal);
        let d = bl.transition("d", TransitionKind::UncontrollableSource);
        let e = bl.transition("e", TransitionKind::Internal);
        let f = bl.transition("f", TransitionKind::Internal);
        // a -> p1 ; p0 + p1 -> b -> p2 ; p2 -> c -> p0
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p0, b, 1);
        bl.arc_p2t(p1, b, 1);
        bl.arc_t2p(b, p2, 1);
        bl.arc_p2t(p2, c, 1);
        bl.arc_t2p(c, p0, 1);
        // d -> p3 ; p0 + p3 -> e -> p4 ; p4 -> f -> p0
        bl.arc_t2p(d, p3, 1);
        bl.arc_p2t(p0, e, 1);
        bl.arc_p2t(p3, e, 1);
        bl.arc_t2p(e, p4, 1);
        bl.arc_p2t(p4, f, 1);
        bl.arc_t2p(f, p0, 1);
        bl.build().unwrap()
    }

    /// Figure 6: the same structure but with weight-2 arcs on c and f, so
    /// each schedule holds tokens on the shared place p0 across its
    /// intermediate await node.
    fn figure6() -> PetriNet {
        let mut bl = NetBuilder::new("fig6");
        let p0 = bl.place("p0", 2);
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let p3 = bl.place("p3", 0);
        let p4 = bl.place("p4", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::Internal);
        let d = bl.transition("d", TransitionKind::UncontrollableSource);
        let e = bl.transition("e", TransitionKind::Internal);
        let f = bl.transition("f", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p0, b, 1);
        bl.arc_p2t(p1, b, 1);
        bl.arc_t2p(b, p2, 1);
        // c consumes 2 tokens of p2 and refills p0 with 2.
        bl.arc_p2t(p2, c, 2);
        bl.arc_t2p(c, p0, 2);
        bl.arc_t2p(d, p3, 1);
        bl.arc_p2t(p0, e, 1);
        bl.arc_p2t(p3, e, 1);
        bl.arc_t2p(e, p4, 1);
        bl.arc_p2t(p4, f, 2);
        bl.arc_t2p(f, p0, 2);
        bl.build().unwrap()
    }

    #[test]
    fn figure5_schedules_are_independent() {
        let net = figure5();
        let a = net.transition_by_name("a").unwrap();
        let d = net.transition_by_name("d").unwrap();
        let sa = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        let sd = find_schedule(&net, d, &ScheduleOptions::default()).unwrap();
        sa.validate(&net).unwrap();
        sd.validate(&net).unwrap();
        assert!(are_independent(&sa, &sd, &net));
        assert!(is_independent_set(&[sa, sd], &net).is_ok());
    }

    #[test]
    fn figure6_schedules_interfere() {
        let net = figure6();
        let a = net.transition_by_name("a").unwrap();
        let d = net.transition_by_name("d").unwrap();
        let sa = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        let sd = find_schedule(&net, d, &ScheduleOptions::default()).unwrap();
        sa.validate(&net).unwrap();
        sd.validate(&net).unwrap();
        // Each schedule has an intermediate await node at which the shared
        // place p0 does not hold its initial token count, so the pair is
        // not independent.
        assert!(!are_independent(&sa, &sd, &net));
        let err = is_independent_set(&[sa, sd], &net).unwrap_err();
        assert_eq!(err, (a, d));
    }

    #[test]
    fn channel_bounds_report_peaks() {
        let net = figure5();
        let a = net.transition_by_name("a").unwrap();
        let d = net.transition_by_name("d").unwrap();
        let sa = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        let sd = find_schedule(&net, d, &ScheduleOptions::default()).unwrap();
        let bounds = channel_bounds(&[sa, sd], &net);
        let p1 = net.place_by_name("p1").unwrap();
        let p0 = net.place_by_name("p0").unwrap();
        assert_eq!(bounds[&p1], 1);
        assert_eq!(bounds[&p0], 1);
    }

    #[test]
    fn independence_is_trivial_for_disjoint_schedules() {
        // Two completely disjoint reactive chains.
        let mut bl = NetBuilder::new("disjoint");
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::UncontrollableSource);
        let d = bl.transition("d", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p1, b, 1);
        bl.arc_t2p(c, p2, 1);
        bl.arc_p2t(p2, d, 1);
        let net = bl.build().unwrap();
        let a = net.transition_by_name("a").unwrap();
        let c = net.transition_by_name("c").unwrap();
        let sa = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        let sc = find_schedule(&net, c, &ScheduleOptions::default()).unwrap();
        assert!(are_independent(&sa, &sc, &net));
    }
}
