//! Schedule graphs (Sec. 4.1 of the paper).
//!
//! A schedule for an uncontrollable source transition `a` is a directed
//! graph whose nodes carry markings and whose edges carry transitions,
//! with five properties:
//!
//! 1. the distinguished node `r` carries the initial marking and has
//!    out-degree 1,
//! 2. the edge out of `r` is associated with `a`,
//! 3. the transitions on the edges out of any node form an ECS enabled at
//!    the node's marking,
//! 4. firing the edge's transition at the source node's marking yields the
//!    target node's marking,
//! 5. every node lies on a cycle through `r`.

use crate::error::{Result, ScheduleError};
use qss_petri::{
    format_marking, EcsInfo, Marking, MarkingId, MarkingStore, PetriNet, PlaceId, TransitionId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Identifier of a node within a [`Schedule`]. The distinguished node `r`
/// is always node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of a schedule: a marking and its outgoing edges.
///
/// This is the *exchange* representation — the type [`Schedule::from_parts`]
/// consumes and the serialized form round-trips through. Inside a
/// [`Schedule`] markings are hash-consed into one [`MarkingStore`] and
/// nodes carry [`MarkingId`] handles instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleNode {
    /// Marking associated with the node.
    pub marking: Marking,
    /// Outgoing edges as `(transition, target node)` pairs.
    pub edges: Vec<(TransitionId, NodeId)>,
}

/// One stored node of a schedule: an interned marking handle plus edges.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    marking: MarkingId,
    edges: Vec<(TransitionId, NodeId)>,
}

/// A schedule for one uncontrollable source transition.
///
/// Node markings are interned: every distinct marking is stored once in
/// the schedule's [`MarkingStore`] and nodes reference it by
/// [`MarkingId`]. Equality, hashing and the serialized wire format are
/// unaffected — two schedules compare equal iff they have the same source
/// and the same per-node resolved markings and edges, and serialization
/// resolves the handles back to full markings (byte-identical to the
/// pre-interning format).
#[derive(Debug, Clone)]
pub struct Schedule {
    source: TransitionId,
    store: MarkingStore,
    slots: Vec<Slot>,
}

impl PartialEq for Schedule {
    fn eq(&self, other: &Self) -> bool {
        self.source == other.source
            && self.slots.len() == other.slots.len()
            && self.slots.iter().zip(&other.slots).all(|(a, b)| {
                a.edges == b.edges
                    && self.store.resolve(a.marking) == other.store.resolve(b.marking)
            })
    }
}

impl Eq for Schedule {}

impl Serialize for Schedule {
    /// Serializes exactly like the former derived impl on
    /// `{source, nodes: Vec<ScheduleNode>}`, so artifacts written before
    /// interning parse unchanged (and vice versa).
    fn to_value(&self) -> serde::Value {
        let nodes: Vec<serde::Value> = self
            .node_ids()
            .map(|id| {
                ScheduleNode {
                    marking: self.marking_owned(id),
                    edges: self.edges(id).to_vec(),
                }
                .to_value()
            })
            .collect();
        serde::Value::Object(vec![
            ("source".to_owned(), self.source.to_value()),
            ("nodes".to_owned(), serde::Value::Array(nodes)),
        ])
    }
}

impl<'de> Deserialize<'de> for Schedule {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let source: TransitionId = serde::derive::field(value, "Schedule", "source")?;
        let nodes: Vec<ScheduleNode> = serde::derive::field(value, "Schedule", "nodes")?;
        // Wire input is untrusted: ragged marking widths must surface as
        // a deserialization error, not as the marking store's fixed-
        // stride panic inside `from_parts`.
        if let Some(first) = nodes.first() {
            let width = first.marking.len();
            if nodes.iter().any(|n| n.marking.len() != width) {
                return Err(serde::Error::custom(
                    "Schedule nodes carry markings of different widths",
                ));
            }
        }
        Ok(Schedule::from_parts(source, nodes))
    }
}

impl Schedule {
    /// Assembles a schedule from its parts without validating the five
    /// properties (use [`Schedule::validate`] for that). Node 0 must be the
    /// distinguished node. Equal markings of different nodes are interned
    /// onto one slab slot.
    pub fn from_parts(source: TransitionId, nodes: Vec<ScheduleNode>) -> Schedule {
        let mut store = MarkingStore::new();
        let slots = nodes
            .into_iter()
            .map(|n| Slot {
                marking: store.intern(n.marking.as_slice()),
                edges: n.edges,
            })
            .collect();
        Schedule {
            source,
            store,
            slots,
        }
    }

    /// Assembles a schedule whose markings are already interned in
    /// `store`. Used by the search engines, which intern while
    /// reconstructing the retained tree instead of cloning markings into
    /// an intermediate [`ScheduleNode`] list. Every marking in `store`
    /// must be referenced by some node (queries such as
    /// [`Schedule::place_peak`] scan the store as the set of distinct
    /// node markings).
    pub fn from_interned(
        source: TransitionId,
        store: MarkingStore,
        nodes: Vec<(MarkingId, Vec<(TransitionId, NodeId)>)>,
    ) -> Schedule {
        let slots = nodes
            .into_iter()
            .map(|(marking, edges)| Slot { marking, edges })
            .collect();
        Schedule {
            source,
            store,
            slots,
        }
    }

    /// The uncontrollable source transition this schedule serves.
    pub fn source(&self) -> TransitionId {
        self.source
    }

    /// The distinguished node `r`.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.slots.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.slots.iter().map(|n| n.edges.len()).sum()
    }

    /// Iterator over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.slots.len()).map(|i| NodeId(i as u32))
    }

    /// The marking of node `id` as a raw counts row (one count per place,
    /// in place-id order), resolved against the schedule's store without
    /// cloning.
    pub fn marking(&self, id: NodeId) -> &[u32] {
        self.store.resolve(self.slots[id.index()].marking)
    }

    /// The marking of node `id` as an owned [`Marking`], for callers that
    /// need to store or display it (code generation); prefer
    /// [`Schedule::marking`] on query paths.
    pub fn marking_owned(&self, id: NodeId) -> Marking {
        Marking::from_counts(self.marking(id).iter().copied())
    }

    /// The interned marking handle of node `id`. Two nodes of this
    /// schedule carry equal markings iff their handles are equal.
    pub fn marking_id(&self, id: NodeId) -> MarkingId {
        self.slots[id.index()].marking
    }

    /// The hash-consed marking arena backing this schedule.
    pub fn store(&self) -> &MarkingStore {
        &self.store
    }

    /// Outgoing edges of node `id`.
    pub fn edges(&self, id: NodeId) -> &[(TransitionId, NodeId)] {
        &self.slots[id.index()].edges
    }

    /// All transitions involved in (associated with some edge of) the
    /// schedule.
    pub fn involved_transitions(&self) -> BTreeSet<TransitionId> {
        self.slots
            .iter()
            .flat_map(|n| n.edges.iter().map(|(t, _)| *t))
            .collect()
    }

    /// All places involved in the schedule: predecessors of involved
    /// transitions (Sec. 4.1).
    pub fn involved_places(&self, net: &PetriNet) -> BTreeSet<PlaceId> {
        self.involved_transitions()
            .iter()
            .flat_map(|t| net.preset(*t).iter().map(|(p, _)| *p))
            .collect()
    }

    /// Returns `true` if node `id` is an *await node*: its outgoing edges
    /// are associated with an uncontrollable source transition.
    pub fn is_await_node(&self, net: &PetriNet, id: NodeId) -> bool {
        let edges = self.edges(id);
        !edges.is_empty()
            && edges.iter().all(|(t, _)| {
                net.transition(*t).kind == qss_petri::TransitionKind::UncontrollableSource
            })
    }

    /// The await nodes of the schedule, in node order. The distinguished
    /// node is always an await node.
    pub fn await_nodes(&self, net: &PetriNet) -> Vec<NodeId> {
        self.node_ids()
            .filter(|id| self.is_await_node(net, *id))
            .collect()
    }

    /// Returns `true` if the schedule is single-source: every await node
    /// waits for this schedule's own source transition.
    pub fn is_single_source(&self, net: &PetriNet) -> bool {
        self.node_ids().all(|id| {
            self.edges(id).iter().all(|(t, _)| {
                net.transition(*t).kind != qss_petri::TransitionKind::UncontrollableSource
                    || *t == self.source
            })
        })
    }

    /// The maximum number of tokens held by place `p` over all nodes of the
    /// schedule. For places involved in the schedule this is the static
    /// buffer bound guaranteed by Proposition 4.2. Interning makes this a
    /// scan over *distinct* markings rather than all nodes.
    pub fn place_peak(&self, p: PlaceId) -> u32 {
        self.store
            .markings()
            .map(|m| m[p.index()])
            .max()
            .unwrap_or(0)
    }

    /// Checks the five defining properties of a schedule against `net`.
    ///
    /// # Errors
    /// Returns [`ScheduleError::InvalidSchedule`] describing the first
    /// violated property.
    pub fn validate(&self, net: &PetriNet) -> Result<()> {
        if self.slots.is_empty() {
            return Err(ScheduleError::InvalidSchedule(
                "schedule has no nodes".into(),
            ));
        }
        // Property 1: r carries the initial marking and has out-degree 1.
        let root = &self.slots[0];
        if self.store.resolve(root.marking) != net.initial_marking().as_slice() {
            return Err(ScheduleError::InvalidSchedule(
                "the distinguished node does not carry the initial marking".into(),
            ));
        }
        if root.edges.len() != 1 {
            return Err(ScheduleError::InvalidSchedule(format!(
                "the distinguished node must have out-degree 1, found {}",
                root.edges.len()
            )));
        }
        // Property 2: the edge out of r is the source transition.
        if root.edges[0].0 != self.source {
            return Err(ScheduleError::InvalidSchedule(
                "the edge out of the distinguished node is not the source transition".into(),
            ));
        }
        let ecs = EcsInfo::compute(net);
        let mut next: Vec<u32> = Vec::with_capacity(net.num_places());
        for (i, node) in self.slots.iter().enumerate() {
            let marking = self.store.resolve(node.marking);
            if node.edges.is_empty() {
                return Err(ScheduleError::InvalidSchedule(format!(
                    "node {i} has no outgoing edges"
                )));
            }
            // Property 3: the outgoing transitions form an ECS enabled at
            // the node's marking (all members present, all enabled).
            let out: BTreeSet<TransitionId> = node.edges.iter().map(|(t, _)| *t).collect();
            let ecs_id = ecs.ecs_of(node.edges[0].0);
            let members: BTreeSet<TransitionId> = ecs.members(ecs_id).iter().copied().collect();
            if out != members {
                return Err(ScheduleError::InvalidSchedule(format!(
                    "the edges out of node {i} do not form a complete ECS"
                )));
            }
            for (t, target) in &node.edges {
                if !net.is_enabled_at(*t, marking) {
                    return Err(ScheduleError::InvalidSchedule(format!(
                        "transition {t} on an edge out of node {i} is not enabled at the node's marking"
                    )));
                }
                // Property 4: firing consistency. Interning makes the
                // comparison an id check once the successor is looked up.
                next.clear();
                next.extend_from_slice(marking);
                net.fire_into_slice(*t, &mut next);
                if self.store.lookup(&next) != Some(self.slots[target.index()].marking) {
                    return Err(ScheduleError::InvalidSchedule(format!(
                        "edge {t} out of node {i} does not lead to the marking of its target node"
                    )));
                }
            }
        }
        // Property 5: every node is on a cycle through r — equivalently,
        // every node is reachable from r and r is reachable from every node.
        let n = self.slots.len();
        let forward = self.reachable_from(0);
        if forward.len() != n {
            return Err(ScheduleError::InvalidSchedule(
                "some node is not reachable from the distinguished node".into(),
            ));
        }
        // Reverse reachability to r.
        let mut rev_adj = vec![Vec::new(); n];
        for (i, node) in self.slots.iter().enumerate() {
            for (_, target) in &node.edges {
                rev_adj[target.index()].push(i);
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &u in &rev_adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        if seen.iter().any(|s| !s) {
            return Err(ScheduleError::InvalidSchedule(
                "some node cannot reach the distinguished node".into(),
            ));
        }
        Ok(())
    }

    fn reachable_from(&self, start: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(v) = stack.pop() {
            for (_, target) in &self.slots[v].edges {
                if seen.insert(target.index()) {
                    stack.push(target.index());
                }
            }
        }
        seen
    }

    /// Renders the schedule to Graphviz DOT format for inspection.
    pub fn to_dot(&self, net: &PetriNet) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph schedule {{");
        for id in self.node_ids() {
            let shape = if self.is_await_node(net, id) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(
                out,
                "  n{} [shape={shape}, label=\"{}\"];",
                id.0,
                format_marking(self.marking(id))
            );
        }
        for id in self.node_ids() {
            for (t, target) in self.edges(id) {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [label=\"{}\"];",
                    id.0,
                    target.0,
                    net.transition(*t).name
                );
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_petri::{NetBuilder, TransitionKind};

    /// src -> p -> consume, a two-node cyclic schedule.
    fn tiny() -> (PetriNet, TransitionId, TransitionId) {
        let mut b = NetBuilder::new("tiny");
        let p = b.place("p", 0);
        let src = b.transition("in", TransitionKind::UncontrollableSource);
        let t = b.transition("consume", TransitionKind::Internal);
        b.arc_t2p(src, p, 1);
        b.arc_p2t(p, t, 1);
        let net = b.build().unwrap();
        let src = net.transition_by_name("in").unwrap();
        let t = net.transition_by_name("consume").unwrap();
        (net, src, t)
    }

    fn tiny_schedule(net: &PetriNet, src: TransitionId, t: TransitionId) -> Schedule {
        let m0 = net.initial_marking();
        let m1 = net.fire(src, &m0).unwrap();
        Schedule::from_parts(
            src,
            vec![
                ScheduleNode {
                    marking: m0,
                    edges: vec![(src, NodeId(1))],
                },
                ScheduleNode {
                    marking: m1,
                    edges: vec![(t, NodeId(0))],
                },
            ],
        )
    }

    #[test]
    fn valid_schedule_passes_validation() {
        let (net, src, t) = tiny();
        let s = tiny_schedule(&net, src, t);
        s.validate(&net).unwrap();
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.num_edges(), 2);
        assert!(s.is_single_source(&net));
        assert_eq!(s.await_nodes(&net), vec![NodeId(0)]);
        assert_eq!(s.involved_transitions().len(), 2);
        let p = net.place_by_name("p").unwrap();
        assert!(s.involved_places(&net).contains(&p));
        assert_eq!(s.place_peak(p), 1);
    }

    #[test]
    fn wrong_root_marking_is_rejected() {
        let (net, src, t) = tiny();
        let good = tiny_schedule(&net, src, t);
        // Rebuild with a corrupted root marking.
        let mut nodes: Vec<ScheduleNode> = good
            .node_ids()
            .map(|id| ScheduleNode {
                marking: good.marking_owned(id),
                edges: good.edges(id).to_vec(),
            })
            .collect();
        nodes[0].marking = Marking::from_counts([5]);
        let s = Schedule::from_parts(src, nodes);
        assert!(matches!(
            s.validate(&net),
            Err(ScheduleError::InvalidSchedule(_))
        ));
    }

    #[test]
    fn equal_markings_share_one_interned_slot() {
        let (net, src, t) = tiny();
        let m0 = net.initial_marking();
        let m1 = net.fire(src, &m0).unwrap();
        // A two-cycle schedule revisiting the same two markings: four
        // nodes, two distinct markings, two slab slots.
        let s = Schedule::from_parts(
            src,
            vec![
                ScheduleNode {
                    marking: m0.clone(),
                    edges: vec![(src, NodeId(1))],
                },
                ScheduleNode {
                    marking: m1.clone(),
                    edges: vec![(t, NodeId(2))],
                },
                ScheduleNode {
                    marking: m0.clone(),
                    edges: vec![(src, NodeId(3))],
                },
                ScheduleNode {
                    marking: m1,
                    edges: vec![(t, NodeId(0))],
                },
            ],
        );
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.store().len(), 2);
        assert_eq!(s.marking_id(NodeId(0)), s.marking_id(NodeId(2)));
        assert_eq!(s.marking_id(NodeId(1)), s.marking_id(NodeId(3)));
        assert_ne!(s.marking_id(NodeId(0)), s.marking_id(NodeId(1)));
        assert_eq!(s.marking(NodeId(2)), m0.as_slice());
    }

    #[test]
    fn incomplete_ecs_is_rejected() {
        // A choice place with two transitions in one ECS: listing only one
        // edge violates property 3.
        let mut b = NetBuilder::new("choice");
        let p = b.place("p", 0);
        let q = b.place("q", 0);
        let src = b.transition("in", TransitionKind::UncontrollableSource);
        let t1 = b.transition("yes", TransitionKind::Internal);
        let t2 = b.transition("no", TransitionKind::Internal);
        let back = b.transition("back", TransitionKind::Internal);
        b.arc_t2p(src, p, 1);
        b.arc_p2t(p, t1, 1);
        b.arc_p2t(p, t2, 1);
        b.arc_t2p(t1, q, 1);
        b.arc_t2p(t2, q, 1);
        b.arc_p2t(q, back, 1);
        let net = b.build().unwrap();
        let src = net.transition_by_name("in").unwrap();
        let t1 = net.transition_by_name("yes").unwrap();
        let back = net.transition_by_name("back").unwrap();
        let m0 = net.initial_marking();
        let m1 = net.fire(src, &m0).unwrap();
        let m2 = net.fire(t1, &m1).unwrap();
        let s = Schedule::from_parts(
            src,
            vec![
                ScheduleNode {
                    marking: m0,
                    edges: vec![(src, NodeId(1))],
                },
                ScheduleNode {
                    marking: m1,
                    edges: vec![(t1, NodeId(2))], // missing t2!
                },
                ScheduleNode {
                    marking: m2,
                    edges: vec![(back, NodeId(0))],
                },
            ],
        );
        let err = s.validate(&net).unwrap_err();
        assert!(err.to_string().contains("complete ECS"));
    }

    #[test]
    fn broken_cycle_is_rejected() {
        let (net, src, t) = tiny();
        let m0 = net.initial_marking();
        let m1 = net.fire(src, &m0).unwrap();
        // Nodes 1 and 2 cycle among themselves and never return to the
        // root, violating property 5 (all other properties hold).
        let s = Schedule::from_parts(
            src,
            vec![
                ScheduleNode {
                    marking: m0.clone(),
                    edges: vec![(src, NodeId(1))],
                },
                ScheduleNode {
                    marking: m1,
                    edges: vec![(t, NodeId(2))],
                },
                ScheduleNode {
                    marking: m0,
                    edges: vec![(src, NodeId(1))],
                },
            ],
        );
        let err = s.validate(&net).unwrap_err();
        assert!(err.to_string().contains("cannot reach"));
    }

    #[test]
    fn dot_output_mentions_transitions() {
        let (net, src, t) = tiny();
        let s = tiny_schedule(&net, src, t);
        let dot = s.to_dot(&net);
        assert!(dot.contains("consume"));
        assert!(dot.contains("doublecircle"));
    }
}
