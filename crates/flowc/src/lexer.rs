//! Lexer for the FlowC language.

use crate::error::{FlowCError, Result};

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `.` (port references in system manifests)
    Dot,
    /// `->` (channel direction in system manifests)
    Arrow,
}

/// A token together with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token itself.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
}

/// Tokenizes FlowC source text.
///
/// # Errors
/// Returns [`FlowCError::Lex`] on unterminated comments or unexpected
/// characters.
pub fn tokenize(source: &str) -> Result<Vec<Spanned>> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comments.
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            let start_line = line;
            i += 2;
            loop {
                if i + 1 >= chars.len() {
                    return Err(FlowCError::Lex {
                        line: start_line,
                        message: "unterminated block comment".into(),
                    });
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                if chars[i] == '*' && chars[i + 1] == '/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let value = text.parse::<i64>().map_err(|_| FlowCError::Lex {
                line,
                message: format!("integer literal `{text}` is out of range"),
            })?;
            tokens.push(Spanned {
                token: Token::Int(value),
                line,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            tokens.push(Spanned {
                token: Token::Ident(text),
                line,
            });
            continue;
        }
        let two = if i + 1 < chars.len() {
            Some((c, chars[i + 1]))
        } else {
            None
        };
        let (token, len) = match two {
            Some(('=', '=')) => (Token::Eq, 2),
            Some(('!', '=')) => (Token::Ne, 2),
            Some(('<', '=')) => (Token::Le, 2),
            Some(('>', '=')) => (Token::Ge, 2),
            Some(('&', '&')) => (Token::AndAnd, 2),
            Some(('|', '|')) => (Token::OrOr, 2),
            Some(('+', '+')) => (Token::PlusPlus, 2),
            Some(('-', '-')) => (Token::MinusMinus, 2),
            Some(('-', '>')) => (Token::Arrow, 2),
            _ => match c {
                '(' => (Token::LParen, 1),
                ')' => (Token::RParen, 1),
                '{' => (Token::LBrace, 1),
                '}' => (Token::RBrace, 1),
                '[' => (Token::LBracket, 1),
                ']' => (Token::RBracket, 1),
                ';' => (Token::Semi, 1),
                ',' => (Token::Comma, 1),
                ':' => (Token::Colon, 1),
                '.' => (Token::Dot, 1),
                '=' => (Token::Assign, 1),
                '<' => (Token::Lt, 1),
                '>' => (Token::Gt, 1),
                '+' => (Token::Plus, 1),
                '-' => (Token::Minus, 1),
                '*' => (Token::Star, 1),
                '/' => (Token::Slash, 1),
                '%' => (Token::Percent, 1),
                '!' => (Token::Bang, 1),
                '&' => (Token::Amp, 1),
                other => {
                    return Err(FlowCError::Lex {
                        line,
                        message: format!("unexpected character `{other}`"),
                    })
                }
            },
        };
        tokens.push(Spanned { token, line });
        i += len;
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn tokenizes_identifiers_numbers_and_symbols() {
        let t = kinds("x = 42 + y1;");
        assert_eq!(
            t,
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(42),
                Token::Plus,
                Token::Ident("y1".into()),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn tokenizes_two_character_operators() {
        let t = kinds("a == b != c <= d >= e && f || g ++ --");
        assert!(t.contains(&Token::Eq));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::AndAnd));
        assert!(t.contains(&Token::OrOr));
        assert!(t.contains(&Token::PlusPlus));
        assert!(t.contains(&Token::MinusMinus));
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let src = "a // comment\n/* multi\nline */ b";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(matches!(tokenize("a /* oops"), Err(FlowCError::Lex { .. })));
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(matches!(tokenize("a $ b"), Err(FlowCError::Lex { .. })));
    }

    #[test]
    fn ampersand_for_address_of() {
        let t = kinds("READ_DATA(in, &n, 1);");
        assert!(t.contains(&Token::Amp));
    }
}
