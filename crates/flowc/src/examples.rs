//! Canonical FlowC sources used by the paper's figures, tests and examples.

/// The `divisors` process of Figure 1: reads a number, writes its greatest
/// proper divisor to `max` and every divisor to `all`.
pub const DIVISORS: &str = r#"
PROCESS divisors (In DPORT in, Out DPORT max, Out DPORT all) {
    int n, i;
    while (1) {
        READ_DATA(in, &n, 1);
        i = n / 2;
        while (n % i != 0)
            i--;
        WRITE_DATA(max, i, 1);
        WRITE_DATA(all, i, 1);
        while (i > 1) {
            i--;
            if (n % i == 0)
                WRITE_DATA(all, i, 1);
        }
    }
}
"#;

/// A two-process pair exhibiting the *false path* problem of Sec. 7.2:
/// without SELECT the Petri-net abstraction loses the loop-bound coupling
/// and the system looks unschedulable.
pub const FALSE_PATH_A: &str = r#"
PROCESS A (Out DPORT c0, In DPORT c1) {
    int i, buf1[10], buf2[2];
    while (1) {
        for (i = 0; i < 10; i++)
            WRITE_DATA(c0, buf1[i], 1);
        for (i = 0; i < 2; i++)
            READ_DATA(c1, buf2[i], 1);
    }
}
"#;

/// Companion process of [`FALSE_PATH_A`].
pub const FALSE_PATH_B: &str = r#"
PROCESS B (In DPORT c0, Out DPORT c1) {
    int i, buf3[10], buf4[2];
    while (1) {
        for (i = 0; i < 10; i++)
            READ_DATA(c0, buf3[i], 1);
        for (i = 0; i < 2; i++)
            WRITE_DATA(c1, buf4[i], 1);
    }
}
"#;

/// The schedulable rewrite of [`FALSE_PATH_A`] using `SELECT` and `done`
/// channels (Sec. 7.2).
///
/// The paper presents the rewrite as a closed system in which each process
/// drains its dependent loop with a `while (!done)` wrapper around the
/// `SELECT`. Task generation needs an uncontrollable trigger, so this
/// version is written in the reactive style the paper itself uses for the
/// video application's filter: a single `switch (SELECT(...))` per loop
/// iteration, with the burst of ten writes started by the `start` event
/// and the response absorbed arm by arm. The synchronisation structure —
/// availability-gated reads plus `done` signalling — is exactly that of
/// Sec. 7.2, and it is what makes the network quasi-statically schedulable
/// where [`FALSE_PATH_A`]/[`FALSE_PATH_B`] are not.
pub const FALSE_PATH_A_SELECT: &str = r#"
PROCESS A (In DPORT start, Out DPORT c0, In DPORT c1, Out DPORT done0, In DPORT done1) {
    int g, i, d, buf1[10], buf2[2];
    while (1) {
        switch (SELECT(start, 1, c1, 1, done1, 1)) {
            case 0: READ_DATA(start, g, 1);
                    for (i = 0; i < 10; i++)
                        WRITE_DATA(c0, buf1[i], 1);
                    WRITE_DATA(done0, 0, 1);
                    break;
            case 1: READ_DATA(c1, buf2[0], 1); break;
            case 2: READ_DATA(done1, d, 1); break;
        }
    }
}
"#;

/// The schedulable rewrite of [`FALSE_PATH_B`] using `SELECT` and `done`
/// channels (Sec. 7.2); see [`FALSE_PATH_A_SELECT`] for the coding style.
pub const FALSE_PATH_B_SELECT: &str = r#"
PROCESS B (In DPORT c0, Out DPORT c1, In DPORT done0, Out DPORT done1) {
    int i, d, x, buf4[2];
    while (1) {
        switch (SELECT(c0, 1, done0, 1)) {
            case 0: READ_DATA(c0, x, 1); break;
            case 1: READ_DATA(done0, d, 1);
                    for (i = 0; i < 2; i++)
                        WRITE_DATA(c1, buf4[i], 1);
                    WRITE_DATA(done1, 0, 1);
                    break;
        }
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_process;

    #[test]
    fn all_example_sources_parse() {
        for src in [
            DIVISORS,
            FALSE_PATH_A,
            FALSE_PATH_B,
            FALSE_PATH_A_SELECT,
            FALSE_PATH_B_SELECT,
        ] {
            parse_process(src).unwrap();
        }
    }
}
