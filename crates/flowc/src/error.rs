//! Error handling for the FlowC front end.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FlowCError>;

/// Errors produced while lexing, parsing, checking or compiling FlowC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowCError {
    /// A lexical error at the given line.
    Lex {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A syntax error at the given line.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A semantic error (undeclared port, duplicate channel endpoint, ...).
    Semantic(String),
    /// An error raised while building the Petri net.
    Net(String),
}

impl fmt::Display for FlowCError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowCError::Lex { line, message } => {
                write!(f, "lexical error at line {line}: {message}")
            }
            FlowCError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FlowCError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            FlowCError::Net(msg) => write!(f, "net construction error: {msg}"),
        }
    }
}

impl std::error::Error for FlowCError {}

impl From<qss_petri::NetError> for FlowCError {
    fn from(e: qss_petri::NetError) -> Self {
        FlowCError::Net(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = FlowCError::Parse {
            line: 12,
            message: "expected `)`".into(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = FlowCError::Semantic("port `x` is not declared".into());
        assert!(e.to_string().contains("port `x`"));
    }

    #[test]
    fn net_error_conversion() {
        let ne = qss_petri::NetError::DuplicateName("p".into());
        let fe: FlowCError = ne.into();
        assert!(matches!(fe, FlowCError::Net(_)));
    }
}
