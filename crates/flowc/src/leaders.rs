//! Leader computation and block segmentation.
//!
//! The paper fixes the granularity of the per-process Petri net by
//! computing *leaders* (Sec. 3.1): the first statement of the process, any
//! `READ_DATA`, any statement following a `WRITE_DATA`, the first statement
//! of (and the statement following) any control-flow statement that
//! contains a leader. Every code fragment runs from a leader up to the next
//! leader and becomes one transition.
//!
//! [`leader_flags`] reproduces the rules for one statement list;
//! [`segment_block`] is the segmentation actually used by compilation: it
//! groups consecutive statements into fragments that become single
//! transitions and singles out control-flow statements that contain port
//! operations (those are refined structurally into choice places).

use crate::ast::{PortOp, Stmt};

/// A segment of a statement list, produced by [`segment_block`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// A straight-line fragment: at most one leading `READ_DATA`, at most
    /// one trailing `WRITE_DATA`, and no control flow containing port
    /// operations. The whole fragment becomes a single transition.
    Fragment(Vec<Stmt>),
    /// A control-flow statement (`if`, `while`, `switch(SELECT)`) that
    /// contains port operations and must be refined structurally.
    Control(Stmt),
}

/// Computes which statements of `stmts` are leaders according to the
/// paper's five rules, treating `stmts` as the top-level statement list of
/// a process (`is_process_start = true`) or as a nested block.
pub fn leader_flags(stmts: &[Stmt], is_process_start: bool) -> Vec<bool> {
    let mut flags = vec![false; stmts.len()];
    for (i, stmt) in stmts.iter().enumerate() {
        // Rule 1: the first statement of the process is a leader.
        // Rule 4: the first statement of a control-flow statement that
        // contains a leader is a leader — the caller applies this by
        // passing `is_process_start = true` for such nested blocks too.
        if i == 0 && is_process_start {
            flags[i] = true;
        }
        // Rule 2: a READ_DATA statement is a leader.
        if matches!(stmt, Stmt::Port(PortOp::Read { .. })) {
            flags[i] = true;
        }
        if i > 0 {
            // Rule 3: any statement immediately following a WRITE_DATA.
            if matches!(stmts[i - 1], Stmt::Port(PortOp::Write { .. })) {
                flags[i] = true;
            }
            // Rule 5: any statement immediately following a control-flow
            // statement that contains a leader (i.e. contains port ops).
            if is_control(&stmts[i - 1]) && stmts[i - 1].has_port_ops() {
                flags[i] = true;
            }
        }
        // Rule 4 (this level): a control-flow statement containing a leader
        // is itself the start of a new portion of code.
        if is_control(stmt) && stmt.has_port_ops() {
            flags[i] = true;
        }
    }
    flags
}

fn is_control(stmt: &Stmt) -> bool {
    matches!(
        stmt,
        Stmt::If { .. } | Stmt::While { .. } | Stmt::Select { .. }
    )
}

/// Splits a statement list into [`Segment`]s for compilation.
///
/// Declarations are kept inside fragments (the interpreter treats them as
/// zero-initialisation); `Nop`s are dropped.
pub fn segment_block(stmts: &[Stmt]) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut current: Vec<Stmt> = Vec::new();
    for stmt in stmts {
        match stmt {
            Stmt::Nop => {}
            s if is_control(s) && s.has_port_ops() => {
                if !current.is_empty() {
                    segments.push(Segment::Fragment(std::mem::take(&mut current)));
                }
                segments.push(Segment::Control(s.clone()));
            }
            Stmt::Port(PortOp::Read { .. }) => {
                // A read starts a new fragment.
                if !current.is_empty() {
                    segments.push(Segment::Fragment(std::mem::take(&mut current)));
                }
                current.push(stmt.clone());
            }
            Stmt::Port(PortOp::Write { .. }) => {
                // A write ends the current fragment.
                current.push(stmt.clone());
                segments.push(Segment::Fragment(std::mem::take(&mut current)));
            }
            other => current.push(other.clone()),
        }
    }
    if !current.is_empty() {
        segments.push(Segment::Fragment(current));
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, LValue};
    use crate::parse_process;

    fn read(port: &str) -> Stmt {
        Stmt::Port(PortOp::Read {
            port: port.into(),
            dest: LValue::Var("x".into()),
            nitems: 1,
        })
    }

    fn write(port: &str) -> Stmt {
        Stmt::Port(PortOp::Write {
            port: port.into(),
            src: Expr::Var("x".into()),
            nitems: 1,
        })
    }

    fn assign() -> Stmt {
        Stmt::Assign {
            target: LValue::Var("x".into()),
            value: Expr::Int(0),
        }
    }

    #[test]
    fn rule_one_first_statement() {
        let flags = leader_flags(&[assign(), assign()], true);
        assert_eq!(flags, vec![true, false]);
        let flags = leader_flags(&[assign(), assign()], false);
        assert_eq!(flags, vec![false, false]);
    }

    #[test]
    fn rule_two_and_three_reads_and_after_writes() {
        let stmts = [assign(), read("a"), assign(), write("b"), assign()];
        let flags = leader_flags(&stmts, true);
        assert_eq!(flags, vec![true, true, false, false, true]);
    }

    #[test]
    fn rule_four_and_five_control_with_ports() {
        let with_ports = Stmt::While {
            cond: Expr::Var("c".into()),
            body: vec![read("a")],
        };
        let without_ports = Stmt::While {
            cond: Expr::Var("c".into()),
            body: vec![assign()],
        };
        let stmts = [assign(), with_ports, assign(), without_ports, assign()];
        let flags = leader_flags(&stmts, true);
        // the control statement with ports is a leader and so is the
        // statement following it; the port-free loop is transparent.
        assert_eq!(flags, vec![true, true, true, false, false]);
    }

    #[test]
    fn divisors_leaders_match_paper() {
        // In Figure 1 the leaders inside the outer loop are the READ_DATA
        // (line 4), the statement after WRITE_DATA(max,...) (line 9), and
        // the inner while (line 10) by rule 4; the paper also lists lines
        // 11/13 which are leaders *inside* that inner loop.
        let p = parse_process(crate::examples::DIVISORS).unwrap();
        let Stmt::While { body, .. } = &p.body[1] else {
            panic!()
        };
        let flags = leader_flags(body, true);
        // body: READ, assign+while-fragment..., WRITE(max), WRITE(all), while(i>1)
        assert!(flags[0]); // READ_DATA
        let n = body.len();
        // the last statement is the inner while containing a WRITE -> leader
        assert!(flags[n - 1]);
    }

    #[test]
    fn segmentation_groups_fragments() {
        let stmts = [assign(), read("a"), assign(), write("b"), assign()];
        let segs = segment_block(&stmts);
        assert_eq!(segs.len(), 3);
        match &segs[0] {
            Segment::Fragment(f) => assert_eq!(f.len(), 1),
            _ => panic!(),
        }
        match &segs[1] {
            Segment::Fragment(f) => {
                assert_eq!(f.len(), 3);
                assert!(matches!(f[0], Stmt::Port(PortOp::Read { .. })));
                assert!(matches!(f[2], Stmt::Port(PortOp::Write { .. })));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn segmentation_isolates_control_with_ports() {
        let ctrl = Stmt::If {
            cond: Expr::Var("c".into()),
            then_branch: vec![write("o")],
            else_branch: vec![],
        };
        let stmts = [assign(), ctrl.clone(), assign()];
        let segs = segment_block(&stmts);
        assert_eq!(segs.len(), 3);
        assert!(matches!(&segs[1], Segment::Control(s) if *s == ctrl));
    }

    #[test]
    fn port_free_control_stays_in_fragment() {
        let ctrl = Stmt::While {
            cond: Expr::Var("c".into()),
            body: vec![assign()],
        };
        let stmts = [assign(), ctrl, assign()];
        let segs = segment_block(&stmts);
        assert_eq!(segs.len(), 1);
        match &segs[0] {
            Segment::Fragment(f) => assert_eq!(f.len(), 3),
            _ => panic!(),
        }
    }

    #[test]
    fn nops_are_dropped() {
        let segs = segment_block(&[Stmt::Nop, Stmt::Nop]);
        assert!(segs.is_empty());
    }
}
