//! Linking: merging per-process nets into a single system net.
//!
//! Linking creates one place per channel (merging the two port places of
//! its endpoints), one place per environment port, and source/sink
//! transitions for environment ports. The result is a single Petri net for
//! the whole system plus the metadata needed by the scheduler, the code
//! generator and the execution substrate.

use crate::ast::Stmt;
use crate::compile::{compile_into, TransitionCode};
use crate::error::{FlowCError, Result};
use crate::spec::{PortClass, SystemSpec};
use qss_petri::{NetBuilder, PetriNet, PlaceId, PlaceKind, TransitionId, TransitionKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A channel of the linked system and the place that models it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelInfo {
    /// Channel name.
    pub name: String,
    /// Place representing the channel.
    pub place: PlaceId,
    /// Producing endpoint `(process, port)`.
    pub from: (String, String),
    /// Consuming endpoint `(process, port)`.
    pub to: (String, String),
    /// Optional user-specified bound.
    pub bound: Option<u32>,
}

/// An environment input port of the linked system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvInputInfo {
    /// Owning process.
    pub process: String,
    /// Port name.
    pub port: String,
    /// Place representing the port.
    pub place: PlaceId,
    /// The source transition fired by (or requested from) the environment.
    pub source: TransitionId,
    /// Whether the environment or the system controls the arrivals.
    pub class: PortClass,
    /// Items delivered per firing of the source transition.
    pub rate: u32,
}

/// An environment output port of the linked system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvOutputInfo {
    /// Owning process.
    pub process: String,
    /// Port name.
    pub port: String,
    /// Place representing the port.
    pub place: PlaceId,
    /// The sink transition draining the port.
    pub sink: TransitionId,
    /// Items drained per firing of the sink transition.
    pub rate: u32,
}

/// The linked system: one Petri net for the whole network plus metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkedSystem {
    /// The system Petri net.
    pub net: PetriNet,
    /// Channels, in specification order.
    pub channels: Vec<ChannelInfo>,
    /// Environment input ports.
    pub env_inputs: Vec<EnvInputInfo>,
    /// Environment output ports.
    pub env_outputs: Vec<EnvOutputInfo>,
    /// Executable code for every process transition.
    pub transition_code: BTreeMap<TransitionId, TransitionCode>,
    /// Per-process initialisation statements.
    pub init_code: BTreeMap<String, Vec<Stmt>>,
    /// Per-process variable declarations.
    pub declarations: BTreeMap<String, Vec<(String, Option<u32>)>>,
    /// The initially marked "program counter" place of each process.
    pub entry_places: BTreeMap<String, PlaceId>,
    /// Place of every `(process, port)` pair.
    pub port_places: BTreeMap<(String, String), PlaceId>,
    /// Names of the processes, in specification order.
    pub process_names: Vec<String>,
}

impl LinkedSystem {
    /// The uncontrollable source transitions (one task is generated for
    /// each of them).
    pub fn uncontrollable_sources(&self) -> Vec<TransitionId> {
        self.env_inputs
            .iter()
            .filter(|e| e.class == PortClass::Uncontrollable)
            .map(|e| e.source)
            .collect()
    }

    /// The channel using `place`, if any.
    pub fn channel_by_place(&self, place: PlaceId) -> Option<&ChannelInfo> {
        self.channels.iter().find(|c| c.place == place)
    }

    /// The place of a `(process, port)` pair.
    pub fn port_place(&self, process: &str, port: &str) -> Option<PlaceId> {
        self.port_places
            .get(&(process.to_string(), port.to_string()))
            .copied()
    }

    /// The environment input info for a port, if it is one.
    pub fn env_input(&self, process: &str, port: &str) -> Option<&EnvInputInfo> {
        self.env_inputs
            .iter()
            .find(|e| e.process == process && e.port == port)
    }

    /// The environment output info for a port, if it is one.
    pub fn env_output(&self, process: &str, port: &str) -> Option<&EnvOutputInfo> {
        self.env_outputs
            .iter()
            .find(|e| e.process == process && e.port == port)
    }

    /// The process that transition `t` belongs to (`None` for environment
    /// source/sink transitions).
    pub fn process_of(&self, t: TransitionId) -> Option<&str> {
        self.transition_code.get(&t).map(|c| c.process.as_str())
    }
}

/// Links a validated [`SystemSpec`] into a single Petri net.
///
/// # Errors
/// Returns [`FlowCError`] if the specification is inconsistent or any
/// process fails to compile.
pub fn link(spec: &SystemSpec) -> Result<LinkedSystem> {
    spec.validate()?;
    let mut builder = NetBuilder::new(spec.name());
    let mut port_places: BTreeMap<(String, String), PlaceId> = BTreeMap::new();
    let mut channels = Vec::new();

    // One place per channel, shared by both endpoints.
    for c in spec.channels() {
        let place = builder.place_with_kind(c.name.clone(), 0, PlaceKind::Channel, c.bound);
        port_places.insert(c.from.clone(), place);
        port_places.insert(c.to.clone(), place);
        channels.push(ChannelInfo {
            name: c.name.clone(),
            place,
            from: c.from.clone(),
            to: c.to.clone(),
            bound: c.bound,
        });
    }

    // One place per unconnected (environment) port.
    for process in spec.processes() {
        for port in &process.ports {
            let key = (process.name.clone(), port.name.clone());
            if let std::collections::btree_map::Entry::Vacant(entry) = port_places.entry(key) {
                let place = builder.place_with_kind(
                    format!("{}.{}", process.name, port.name),
                    0,
                    PlaceKind::EnvironmentPort,
                    None,
                );
                entry.insert(place);
            }
        }
    }

    // Compile every process into the shared builder.
    let mut transition_code = BTreeMap::new();
    let mut init_code = BTreeMap::new();
    let mut declarations = BTreeMap::new();
    let mut entry_places = BTreeMap::new();
    let mut process_names = Vec::new();
    for process in spec.processes() {
        let local_ports: BTreeMap<String, PlaceId> = process
            .ports
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    port_places[&(process.name.clone(), p.name.clone())],
                )
            })
            .collect();
        let compiled = compile_into(&mut builder, process, &local_ports)?;
        transition_code.extend(compiled.transition_code);
        init_code.insert(process.name.clone(), compiled.init_code);
        declarations.insert(process.name.clone(), compiled.declarations);
        entry_places.insert(process.name.clone(), compiled.entry_place);
        process_names.push(process.name.clone());
    }

    // Environment source and sink transitions.
    let mut env_inputs = Vec::new();
    let mut env_outputs = Vec::new();
    for process in spec.processes() {
        for port in &process.ports {
            if spec.is_connected(&process.name, &port.name) {
                continue;
            }
            let place = port_places[&(process.name.clone(), port.name.clone())];
            let rate = spec.port_rate(&process.name, &port.name);
            match port.direction {
                crate::ast::PortDirection::In => {
                    let class = spec.input_class(&process.name, &port.name);
                    let kind = match class {
                        PortClass::Uncontrollable => TransitionKind::UncontrollableSource,
                        PortClass::Controllable => TransitionKind::ControllableSource,
                    };
                    let t =
                        builder.transition(format!("env_in_{}_{}", process.name, port.name), kind);
                    builder.arc_t2p(t, place, rate);
                    env_inputs.push(EnvInputInfo {
                        process: process.name.clone(),
                        port: port.name.clone(),
                        place,
                        source: t,
                        class,
                        rate,
                    });
                }
                crate::ast::PortDirection::Out => {
                    let t = builder.transition(
                        format!("env_out_{}_{}", process.name, port.name),
                        TransitionKind::Sink,
                    );
                    builder.arc_p2t(place, t, rate);
                    env_outputs.push(EnvOutputInfo {
                        process: process.name.clone(),
                        port: port.name.clone(),
                        place,
                        sink: t,
                        rate,
                    });
                }
            }
        }
    }

    let net = builder.build().map_err(FlowCError::from)?;
    Ok(LinkedSystem {
        net,
        channels,
        env_inputs,
        env_outputs,
        transition_code,
        init_code,
        declarations,
        entry_places,
        port_places,
        process_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_process;
    use qss_petri::{EcsInfo, ReachabilityLimits};

    fn pipeline_spec() -> SystemSpec {
        let producer = parse_process(
            "PROCESS producer (In DPORT trigger, Out DPORT data) {
                 int t, i;
                 while (1) {
                     READ_DATA(trigger, t, 1);
                     i = i + 1;
                     WRITE_DATA(data, i, 1);
                 }
             }",
        )
        .unwrap();
        let consumer = parse_process(
            "PROCESS consumer (In DPORT data, Out DPORT sum) {
                 int x, s;
                 while (1) {
                     READ_DATA(data, x, 1);
                     s = s + x;
                     WRITE_DATA(sum, s, 1);
                 }
             }",
        )
        .unwrap();
        SystemSpec::new("pipeline")
            .with_process(producer)
            .with_process(consumer)
            .with_channel("producer.data", "consumer.data", Some(8))
            .unwrap()
    }

    #[test]
    fn links_pipeline_into_single_net() {
        let sys = link(&pipeline_spec()).unwrap();
        assert_eq!(sys.channels.len(), 1);
        assert_eq!(sys.env_inputs.len(), 1);
        assert_eq!(sys.env_outputs.len(), 1);
        assert_eq!(sys.process_names, vec!["producer", "consumer"]);
        // The channel endpoints share one place.
        let from = sys.port_place("producer", "data").unwrap();
        let to = sys.port_place("consumer", "data").unwrap();
        assert_eq!(from, to);
        assert_eq!(sys.channel_by_place(from).unwrap().bound, Some(8));
        // Exactly one uncontrollable source.
        assert_eq!(sys.uncontrollable_sources().len(), 1);
        // Both process entry places are marked initially.
        let m0 = sys.net.initial_marking();
        assert_eq!(m0.total_tokens(), 2);
        // The linked net is Unique Choice.
        let ecs = EcsInfo::compute(&sys.net);
        assert!(ecs.is_unique_choice(&sys.net, &ReachabilityLimits::default()));
    }

    #[test]
    fn environment_port_rates_and_classes() {
        let spec = pipeline_spec()
            .with_input_port_class("producer.trigger", PortClass::Controllable)
            .with_port_rate("producer.trigger", 2);
        let sys = link(&spec).unwrap();
        assert!(sys.uncontrollable_sources().is_empty());
        let input = sys.env_input("producer", "trigger").unwrap();
        assert_eq!(input.class, PortClass::Controllable);
        assert_eq!(input.rate, 2);
        let source = input.source;
        assert_eq!(
            sys.net.transition(source).kind,
            TransitionKind::ControllableSource
        );
        assert_eq!(sys.net.weight_t2p(source, input.place), 2);
        assert!(sys.process_of(source).is_none());
    }

    #[test]
    fn sink_transition_drains_output() {
        let sys = link(&pipeline_spec()).unwrap();
        let out = sys.env_output("consumer", "sum").unwrap();
        assert_eq!(sys.net.transition(out.sink).kind, TransitionKind::Sink);
        assert_eq!(sys.net.weight_p2t(out.place, out.sink), 1);
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let spec = SystemSpec::new("broken")
            .with_channel("a.x", "b.y", None)
            .unwrap();
        assert!(link(&spec).is_err());
    }

    #[test]
    fn end_to_end_firing_through_channel() {
        let sys = link(&pipeline_spec()).unwrap();
        let trigger = sys.env_input("producer", "trigger").unwrap().source;
        let mut m = sys.net.initial_marking();
        m = sys.net.fire(trigger, &m).unwrap();
        // Fire greedily until quiescent; the consumer must have produced
        // one token on its output port, then the sink drains it.
        for _ in 0..64 {
            let enabled: Vec<_> = sys
                .net
                .enabled_transitions(&m)
                .into_iter()
                .filter(|t| *t != trigger)
                .collect();
            let Some(&t) = enabled.first() else { break };
            m = sys.net.fire(t, &m).unwrap();
        }
        // All channel places are empty again and both processes are back at
        // their entry places.
        let chan = sys.channels[0].place;
        assert_eq!(m.tokens(chan), 0);
        for p in sys.entry_places.values() {
            assert_eq!(m.tokens(*p), 1);
        }
    }
}
