//! Compilation of a FlowC process into a Petri-net fragment.
//!
//! Each process is translated at the leader-based granularity of the
//! paper: straight-line fragments become single transitions annotated with
//! their code, data-dependent control statements become Equal-Choice
//! places with one transition per resolution, and port operations attach
//! weighted arcs to the places representing the ports. The resulting
//! per-process net has exactly one internal "program counter" place marked
//! at any reachable marking.

use crate::ast::{Expr, PortOp, Process, Stmt};
use crate::error::{FlowCError, Result};
use crate::leaders::{segment_block, Segment};
use qss_petri::{NetBuilder, PetriNet, PlaceId, PlaceKind, TransitionId, TransitionKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Executable information attached to one transition of the compiled net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionCode {
    /// Name of the process the transition belongs to.
    pub process: String,
    /// Straight-line statements executed when the transition fires
    /// (including its port operations, in program order).
    pub stmts: Vec<Stmt>,
    /// Guard of the data-dependent choice this transition resolves:
    /// `(condition, branch)` where `branch` tells whether the transition is
    /// taken when the condition is true.
    pub guard: Option<(Expr, bool)>,
    /// If the transition is an arm of a `switch (SELECT(...))`, the port it
    /// tests and the number of items required, plus its priority (lower is
    /// higher priority).
    pub select: Option<(String, u32, u32)>,
}

impl TransitionCode {
    /// Returns `true` if the transition carries no executable statements
    /// (an epsilon transition in the paper's terminology).
    pub fn is_silent(&self) -> bool {
        self.stmts.is_empty()
    }
}

/// Result of compiling one process in isolation.
#[derive(Debug, Clone)]
pub struct CompiledProcess {
    /// Process name.
    pub name: String,
    /// The per-process Petri net, including dangling port places.
    pub net: PetriNet,
    /// Place representing each declared port.
    pub port_places: BTreeMap<String, PlaceId>,
    /// Executable code for every transition.
    pub transition_code: BTreeMap<TransitionId, TransitionCode>,
    /// Port-free initialisation statements executed once before the cyclic
    /// behaviour starts (not part of the net, per the paper's footnote 1).
    pub init_code: Vec<Stmt>,
    /// All variable declarations of the process (`(name, array size)`).
    pub declarations: Vec<(String, Option<u32>)>,
}

/// Compiles a single process into its own Petri net.
///
/// Port places are created with [`PlaceKind::EnvironmentPort`]; linking
/// ([`crate::link()`]) merges them with channel places.
///
/// # Errors
/// Returns [`FlowCError`] if the process references undeclared ports or the
/// net cannot be built.
///
/// ```
/// let p = qss_flowc::parse_process(qss_flowc::examples::DIVISORS)?;
/// let compiled = qss_flowc::compile(&p)?;
/// assert!(compiled.net.num_transitions() >= 6);
/// assert_eq!(compiled.port_places.len(), 3);
/// # Ok::<(), qss_flowc::FlowCError>(())
/// ```
pub fn compile(process: &Process) -> Result<CompiledProcess> {
    let mut builder = NetBuilder::new(&process.name);
    let mut port_places = BTreeMap::new();
    for port in &process.ports {
        let id = builder.place_with_kind(
            format!("{}.{}", process.name, port.name),
            0,
            PlaceKind::EnvironmentPort,
            None,
        );
        port_places.insert(port.name.clone(), id);
    }
    let outcome = compile_into(&mut builder, process, &port_places)?;
    let net = builder.build()?;
    Ok(CompiledProcess {
        name: process.name.clone(),
        net,
        port_places,
        transition_code: outcome.transition_code,
        init_code: outcome.init_code,
        declarations: outcome.declarations,
    })
}

/// Result of compiling a process into a shared builder (used by linking).
#[derive(Debug, Clone)]
pub(crate) struct ProcessCompilation {
    /// Executable code for every transition created by this compilation.
    pub transition_code: BTreeMap<TransitionId, TransitionCode>,
    /// Port-free initialisation statements.
    pub init_code: Vec<Stmt>,
    /// All variable declarations of the process.
    pub declarations: Vec<(String, Option<u32>)>,
    /// The "program counter" place initially marked for this process.
    pub entry_place: PlaceId,
}

/// Compiles `process` into `builder`, attaching port operations to the
/// pre-created `port_places` (one per declared port of the process).
pub(crate) fn compile_into(
    builder: &mut NetBuilder,
    process: &Process,
    port_places: &BTreeMap<String, PlaceId>,
) -> Result<ProcessCompilation> {
    for port in &process.ports {
        if !port_places.contains_key(&port.name) {
            return Err(FlowCError::Semantic(format!(
                "no place was provided for port `{}.{}`",
                process.name, port.name
            )));
        }
    }
    let compiler = Compiler {
        builder,
        process,
        port_places,
        code: BTreeMap::new(),
        declarations: Vec::new(),
        place_counter: 0,
        transition_counter: 0,
    };
    compiler.compile_process()
}

struct Compiler<'a> {
    builder: &'a mut NetBuilder,
    process: &'a Process,
    port_places: &'a BTreeMap<String, PlaceId>,
    code: BTreeMap<TransitionId, TransitionCode>,
    declarations: Vec<(String, Option<u32>)>,
    place_counter: usize,
    transition_counter: usize,
}

impl<'a> Compiler<'a> {
    fn compile_process(mut self) -> Result<ProcessCompilation> {
        // Split the body into an initialisation prefix (declarations and
        // port-free statements before the main loop) and the cyclic part.
        let mut init_code = Vec::new();
        let mut rest: &[Stmt] = &self.process.body;
        while let Some((first, tail)) = rest.split_first() {
            let is_main_loop = matches!(
                first,
                Stmt::While { cond, .. } if cond.as_const().map(|v| v != 0).unwrap_or(false)
            );
            if is_main_loop || first.has_port_ops() {
                break;
            }
            self.collect_declarations(first);
            if !matches!(first, Stmt::Decl { .. } | Stmt::Nop) {
                init_code.push(first.clone());
            }
            rest = tail;
        }
        // If the cyclic part is a single `while (1) { ... }`, its body is
        // the cycle; otherwise the remaining statements are implicitly
        // repeated forever.
        let cyclic_body: Vec<Stmt> = match rest {
            [Stmt::While { cond, body }] if cond.as_const().map(|v| v != 0).unwrap_or(false) => {
                body.clone()
            }
            other => other.to_vec(),
        };
        for stmt in &cyclic_body {
            self.collect_declarations_rec(stmt);
        }

        let entry = self.new_place_with_tokens("start", 1);
        if !cyclic_body.is_empty() {
            self.compile_block(&cyclic_body, entry, Some(entry))?;
        }
        Ok(ProcessCompilation {
            transition_code: self.code,
            init_code,
            declarations: self.declarations,
            entry_place: entry,
        })
    }

    fn collect_declarations(&mut self, stmt: &Stmt) {
        if let Stmt::Decl { names } = stmt {
            for d in names {
                if !self.declarations.contains(d) {
                    self.declarations.push(d.clone());
                }
            }
        }
    }

    fn collect_declarations_rec(&mut self, stmt: &Stmt) {
        self.collect_declarations(stmt);
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch.iter().chain(else_branch) {
                    self.collect_declarations_rec(s);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    self.collect_declarations_rec(s);
                }
            }
            Stmt::Select { arms, .. } => {
                for arm in arms {
                    for s in &arm.body {
                        self.collect_declarations_rec(s);
                    }
                }
            }
            _ => {}
        }
    }

    fn new_place(&mut self, hint: &str) -> PlaceId {
        self.new_place_with_tokens(hint, 0)
    }

    fn new_place_with_tokens(&mut self, hint: &str, tokens: u32) -> PlaceId {
        let name = format!("{}.p{}_{}", self.process.name, self.place_counter, hint);
        self.place_counter += 1;
        self.builder
            .place_with_kind(name, tokens, PlaceKind::Internal, None)
    }

    fn new_transition(
        &mut self,
        hint: &str,
        stmts: Vec<Stmt>,
        guard: Option<(Expr, bool)>,
        select: Option<(String, u32, u32)>,
    ) -> TransitionId {
        let name = format!(
            "{}.t{}_{}",
            self.process.name, self.transition_counter, hint
        );
        self.transition_counter += 1;
        let code_lines: Vec<String> = stmts.iter().map(Stmt::to_code).collect();
        let guard_str = guard.as_ref().map(|(e, _)| e.to_string());
        let branch = guard.as_ref().map(|(_, b)| *b);
        let t = self.builder.transition_full(
            name,
            TransitionKind::Internal,
            code_lines,
            guard_str,
            branch,
            Some(self.process.name.clone()),
        );
        self.code.insert(
            t,
            TransitionCode {
                process: self.process.name.clone(),
                stmts,
                guard,
                select,
            },
        );
        t
    }

    fn port_place(&self, port: &str) -> Result<PlaceId> {
        self.port_places.get(port).copied().ok_or_else(|| {
            FlowCError::Semantic(format!(
                "process `{}` uses undeclared port `{port}`",
                self.process.name
            ))
        })
    }

    /// Checks the port direction of an operation against the declaration.
    fn check_port_op(&self, op: &PortOp) -> Result<()> {
        let decl = self.process.port(op.port()).ok_or_else(|| {
            FlowCError::Semantic(format!(
                "process `{}` uses undeclared port `{}`",
                self.process.name,
                op.port()
            ))
        })?;
        let ok = match op {
            PortOp::Read { .. } => decl.direction == crate::ast::PortDirection::In,
            PortOp::Write { .. } => decl.direction == crate::ast::PortDirection::Out,
        };
        if ok {
            Ok(())
        } else {
            Err(FlowCError::Semantic(format!(
                "port `{}.{}` is used in the wrong direction",
                self.process.name,
                op.port()
            )))
        }
    }

    /// Compiles a statement list between `entry` and (optionally) a given
    /// `target` exit place. Returns the actual exit place.
    fn compile_block(
        &mut self,
        stmts: &[Stmt],
        entry: PlaceId,
        target: Option<PlaceId>,
    ) -> Result<PlaceId> {
        let segments = segment_block(stmts);
        if segments.is_empty() {
            return match target {
                Some(t) if t != entry => {
                    let eps = self.new_transition("eps", Vec::new(), None, None);
                    self.builder.arc_p2t(entry, eps, 1);
                    self.builder.arc_t2p(eps, t, 1);
                    Ok(t)
                }
                Some(t) => Ok(t),
                None => Ok(entry),
            };
        }
        let mut cur = entry;
        let last = segments.len() - 1;
        for (i, segment) in segments.iter().enumerate() {
            let seg_target = if i == last { target } else { None };
            cur = match segment {
                Segment::Fragment(f) => self.emit_fragment(f, cur, seg_target)?,
                Segment::Control(s) => self.compile_control(s, cur, seg_target)?,
            };
        }
        Ok(cur)
    }

    /// Emits one transition for a straight-line fragment.
    fn emit_fragment(
        &mut self,
        stmts: &[Stmt],
        entry: PlaceId,
        target: Option<PlaceId>,
    ) -> Result<PlaceId> {
        let hint = fragment_hint(stmts);
        let exit = target.unwrap_or_else(|| self.new_place("seq"));
        let kept: Vec<Stmt> = stmts.to_vec();
        let t = self.new_transition(&hint, kept, None, None);
        self.builder.arc_p2t(entry, t, 1);
        self.builder.arc_t2p(t, exit, 1);
        for stmt in stmts {
            if let Stmt::Port(op) = stmt {
                self.check_port_op(op)?;
                let place = self.port_place(op.port())?;
                match op {
                    PortOp::Read { nitems, .. } => self.builder.arc_p2t(place, t, *nitems),
                    PortOp::Write { nitems, .. } => self.builder.arc_t2p(t, place, *nitems),
                }
            }
        }
        Ok(exit)
    }

    /// Compiles a control-flow statement that contains port operations.
    fn compile_control(
        &mut self,
        stmt: &Stmt,
        entry: PlaceId,
        target: Option<PlaceId>,
    ) -> Result<PlaceId> {
        match stmt {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let exit = target.unwrap_or_else(|| self.new_place("endif"));
                self.compile_branch(cond, true, then_branch, entry, exit)?;
                self.compile_branch(cond, false, else_branch, entry, exit)?;
                Ok(exit)
            }
            Stmt::While { cond, body } => {
                if cond.as_const().map(|v| v != 0).unwrap_or(false) {
                    // Infinite loop: the body cycles back to `entry`; any
                    // following code is unreachable.
                    self.compile_block(body, entry, Some(entry))?;
                    Ok(target.unwrap_or_else(|| self.new_place("unreachable")))
                } else {
                    let exit = target.unwrap_or_else(|| self.new_place("endwhile"));
                    // True branch: enter the body and loop back to `entry`.
                    self.compile_branch(cond, true, body, entry, entry)?;
                    // False branch: leave the loop.
                    self.compile_branch(cond, false, &[], entry, exit)?;
                    Ok(exit)
                }
            }
            Stmt::Select { ports, arms } => {
                let exit = target.unwrap_or_else(|| self.new_place("endselect"));
                for (priority, (port, nitems)) in ports.iter().enumerate() {
                    let arm = arms
                        .iter()
                        .find(|a| a.index as usize == priority)
                        .ok_or_else(|| {
                            FlowCError::Semantic(format!(
                                "SELECT on `{port}` is missing case {priority}"
                            ))
                        })?;
                    let decl = self.process.port(port).ok_or_else(|| {
                        FlowCError::Semantic(format!(
                            "process `{}` uses undeclared port `{port}` in SELECT",
                            self.process.name
                        ))
                    })?;
                    let t = self.new_transition(
                        &format!("sel_{port}"),
                        Vec::new(),
                        None,
                        Some((port.clone(), *nitems, priority as u32)),
                    );
                    self.builder
                        .set_transition_priority(t, Some(priority as u32));
                    self.builder.arc_p2t(entry, t, 1);
                    if decl.direction == crate::ast::PortDirection::In {
                        // Test arc: the arm requires `nitems` tokens on the
                        // port but does not consume them; the READ_DATA in
                        // the arm body does.
                        let place = self.port_place(port)?;
                        self.builder.arc_p2t(place, t, *nitems);
                        self.builder.arc_t2p(t, place, *nitems);
                    }
                    let body_entry = self.new_place(&format!("sel_{port}_body"));
                    self.builder.arc_t2p(t, body_entry, 1);
                    self.compile_block(&arm.body, body_entry, Some(exit))?;
                }
                Ok(exit)
            }
            other => self.emit_fragment(std::slice::from_ref(other), entry, target),
        }
    }

    /// Emits the guard transition of one branch of an `if`/`while` and
    /// compiles its body from a fresh place into `exit`.
    fn compile_branch(
        &mut self,
        cond: &Expr,
        branch: bool,
        body: &[Stmt],
        entry: PlaceId,
        exit: PlaceId,
    ) -> Result<()> {
        let hint = if branch { "true" } else { "false" };
        let t = self.new_transition(hint, Vec::new(), Some((cond.clone(), branch)), None);
        self.builder.arc_p2t(entry, t, 1);
        if body.is_empty() {
            self.builder.arc_t2p(t, exit, 1);
        } else {
            let body_entry = self.new_place(&format!("{hint}_body"));
            self.builder.arc_t2p(t, body_entry, 1);
            self.compile_block(body, body_entry, Some(exit))?;
        }
        Ok(())
    }
}

fn fragment_hint(stmts: &[Stmt]) -> String {
    for stmt in stmts {
        match stmt {
            Stmt::Port(PortOp::Read { port, .. }) => return format!("read_{port}"),
            Stmt::Port(PortOp::Write { port, .. }) => return format!("write_{port}"),
            _ => {}
        }
    }
    "code".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::parse_process;
    use qss_petri::{EcsInfo, Marking, ReachabilityLimits};

    #[test]
    fn divisors_net_matches_figure3_shape() {
        let p = parse_process(examples::DIVISORS).unwrap();
        let c = compile(&p).unwrap();
        // Ports become dangling places.
        assert_eq!(c.port_places.len(), 3);
        // The net must be Equal Choice when port places are ignored and
        // unique choice overall (no port is read twice here, so even the
        // port places are non-choice).
        let ecs = EcsInfo::compute(&c.net);
        assert!(ecs.is_unique_choice(&c.net, &ReachabilityLimits::default()));
        // Exactly one internal place is marked initially.
        let m0 = c.net.initial_marking();
        assert_eq!(m0.total_tokens(), 1);
        // Two data-dependent choices => at least two guarded transitions of
        // each polarity.
        let guards: Vec<_> = c
            .transition_code
            .values()
            .filter(|tc| tc.guard.is_some())
            .collect();
        assert!(guards.len() >= 4);
        // Declarations collected.
        assert_eq!(
            c.declarations,
            vec![("n".to_string(), None), ("i".to_string(), None)]
        );
        assert!(c.init_code.is_empty());
    }

    #[test]
    fn program_counter_invariant_holds() {
        // Ignoring port places, exactly one internal place is marked in
        // every marking reachable by firing internal transitions when the
        // input port has tokens available.
        let p = parse_process(examples::DIVISORS).unwrap();
        let c = compile(&p).unwrap();
        let input = c.port_places["in"];
        let mut m = c.net.initial_marking();
        m.add_tokens(input, 1);
        // Walk a few hundred firings choosing the first enabled transition.
        let internal_token_count = |m: &Marking| -> u32 {
            c.net
                .place_ids()
                .filter(|p| !c.port_places.values().any(|q| q == p))
                .map(|p| m.tokens(p))
                .sum()
        };
        assert_eq!(internal_token_count(&m), 1);
        for _ in 0..50 {
            let enabled = c.net.enabled_transitions(&m);
            let Some(&t) = enabled.first() else { break };
            m = c.net.fire(t, &m).unwrap();
            assert_eq!(internal_token_count(&m), 1, "program counter duplicated");
        }
    }

    #[test]
    fn read_and_write_arcs_have_item_weights() {
        let p = parse_process(
            "PROCESS burst (In DPORT a, Out DPORT b) {
                 int buf[8];
                 while (1) { READ_DATA(a, buf, 4); WRITE_DATA(b, buf, 8); }
             }",
        )
        .unwrap();
        let c = compile(&p).unwrap();
        let a = c.port_places["a"];
        let b = c.port_places["b"];
        // The READ and the trailing WRITE share one fragment transition.
        let t = c
            .net
            .transition_ids()
            .find(|t| c.net.transition(*t).name.contains("read_a"))
            .unwrap();
        assert_eq!(c.net.weight_p2t(a, t), 4);
        assert_eq!(c.net.weight_t2p(t, b), 8);
    }

    #[test]
    fn init_prefix_is_extracted() {
        let p = parse_process(
            "PROCESS init (Out DPORT o) {
                 int i, s;
                 i = 0;
                 s = 10;
                 while (1) { WRITE_DATA(o, s, 1); }
             }",
        )
        .unwrap();
        let c = compile(&p).unwrap();
        assert_eq!(c.init_code.len(), 2);
        assert_eq!(c.net.num_transitions(), 1);
    }

    #[test]
    fn select_creates_test_arcs() {
        let p = parse_process(examples::FALSE_PATH_A_SELECT).unwrap();
        let c = compile(&p).unwrap();
        let c1 = c.port_places["c1"];
        let sel = c
            .net
            .transition_ids()
            .find(|t| c.net.transition(*t).name.contains("sel_c1"))
            .unwrap();
        assert_eq!(c.net.weight_p2t(c1, sel), 1);
        assert_eq!(c.net.weight_t2p(sel, c1), 1);
        let info = &c.transition_code[&sel];
        assert_eq!(info.select, Some(("c1".to_string(), 1, 1)));
    }

    #[test]
    fn wrong_direction_port_use_is_rejected() {
        let p =
            parse_process("PROCESS bad (In DPORT a) { int x; while (1) { WRITE_DATA(a, x, 1); } }")
                .unwrap();
        assert!(matches!(compile(&p), Err(FlowCError::Semantic(_))));
    }

    #[test]
    fn undeclared_port_is_rejected() {
        let p = parse_process(
            "PROCESS bad (In DPORT a) { int x; while (1) { READ_DATA(missing, x, 1); } }",
        )
        .unwrap();
        assert!(matches!(compile(&p), Err(FlowCError::Semantic(_))));
    }

    #[test]
    fn port_free_loop_is_one_transition() {
        // A while loop without port operations must stay inside a single
        // transition (paper Sec. 3.1).
        let p = parse_process(
            "PROCESS spin (Out DPORT o) {
                 int i, n;
                 while (1) {
                     i = n / 2;
                     while (n % i != 0) i--;
                     WRITE_DATA(o, i, 1);
                 }
             }",
        )
        .unwrap();
        let c = compile(&p).unwrap();
        // one fragment transition only (the whole body collapses)
        assert_eq!(c.net.num_transitions(), 1);
        let t = c.net.transition_ids().next().unwrap();
        assert_eq!(c.transition_code[&t].stmts.len(), 3);
    }

    #[test]
    fn empty_cyclic_body_gives_place_only_net() {
        let p = parse_process("PROCESS idle () { int x; x = 1; }").unwrap();
        let c = compile(&p).unwrap();
        assert_eq!(c.net.num_transitions(), 0);
        assert_eq!(c.net.num_places(), 1);
        assert_eq!(c.init_code.len(), 1);
    }
}
