//! System specification: a network of FlowC processes and channels.

use crate::ast::{PortDirection, Process};
use crate::error::{FlowCError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Class of an input port connected to the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortClass {
    /// The environment decides when data arrives; arrival triggers a
    /// reaction of the system. One task is generated per uncontrollable
    /// input port.
    Uncontrollable,
    /// The system requests the data when it needs it.
    Controllable,
}

/// A point-to-point channel between an output port and an input port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Name of the channel (derived from its endpoints unless overridden).
    pub name: String,
    /// Producing endpoint as `(process, port)`.
    pub from: (String, String),
    /// Consuming endpoint as `(process, port)`.
    pub to: (String, String),
    /// Optional user-specified bound on the number of queued items.
    pub bound: Option<u32>,
}

/// A network of processes, channels and environment port attributes.
///
/// Unconnected ports are implicitly connected to the environment; input
/// ports default to [`PortClass::Uncontrollable`] unless overridden with
/// [`SystemSpec::with_input_port_class`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemSpec {
    name: String,
    processes: Vec<Process>,
    channels: Vec<ChannelSpec>,
    input_classes: BTreeMap<(String, String), PortClass>,
    port_rates: BTreeMap<(String, String), u32>,
}

impl SystemSpec {
    /// Creates an empty specification named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SystemSpec {
            name: name.into(),
            processes: Vec::new(),
            channels: Vec::new(),
            input_classes: BTreeMap::new(),
            port_rates: BTreeMap::new(),
        }
    }

    /// Name of the system.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a process to the network.
    pub fn with_process(mut self, process: Process) -> Self {
        self.processes.push(process);
        self
    }

    /// Connects `from` (an output port reference `"process.port"`) to `to`
    /// (an input port reference) through a channel with optional bound.
    ///
    /// # Errors
    /// Returns [`FlowCError::Semantic`] if either reference is not of the
    /// form `process.port`.
    pub fn with_channel(mut self, from: &str, to: &str, bound: Option<u32>) -> Result<Self> {
        let from = parse_port_ref(from)?;
        let to = parse_port_ref(to)?;
        let name = format!("{}_{}__{}_{}", from.0, from.1, to.0, to.1);
        self.channels.push(ChannelSpec {
            name,
            from,
            to,
            bound,
        });
        Ok(self)
    }

    /// Declares the class of an unconnected input port
    /// (`"process.port"`). Unspecified ports are uncontrollable.
    pub fn with_input_port_class(mut self, port_ref: &str, class: PortClass) -> Self {
        if let Ok(key) = parse_port_ref(port_ref) {
            self.input_classes.insert(key, class);
        }
        self
    }

    /// Declares the rate (arc weight of the environment source/sink
    /// transition) of an unconnected port. The default rate is 1.
    pub fn with_port_rate(mut self, port_ref: &str, rate: u32) -> Self {
        if let Ok(key) = parse_port_ref(port_ref) {
            self.port_rates.insert(key, rate.max(1));
        }
        self
    }

    /// The processes in the network, in insertion order.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// Looks a process up by name.
    pub fn process(&self, name: &str) -> Option<&Process> {
        self.processes.iter().find(|p| p.name == name)
    }

    /// The declared channels.
    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }

    /// The declared class of an input port (default: uncontrollable).
    pub fn input_class(&self, process: &str, port: &str) -> PortClass {
        self.input_classes
            .get(&(process.to_string(), port.to_string()))
            .copied()
            .unwrap_or(PortClass::Uncontrollable)
    }

    /// The declared rate of an environment port (default: 1).
    pub fn port_rate(&self, process: &str, port: &str) -> u32 {
        self.port_rates
            .get(&(process.to_string(), port.to_string()))
            .copied()
            .unwrap_or(1)
    }

    /// Returns `true` if the given port is connected by some channel.
    pub fn is_connected(&self, process: &str, port: &str) -> bool {
        self.channels.iter().any(|c| {
            (c.from.0 == process && c.from.1 == port) || (c.to.0 == process && c.to.1 == port)
        })
    }

    /// Checks the specification for consistency:
    ///
    /// * process names are unique,
    /// * every channel endpoint refers to a declared port of the right
    ///   direction,
    /// * every port is the endpoint of at most one channel (point-to-point
    ///   communication),
    /// * every declared input class and port rate refers to a declared
    ///   port (so a typo in a `SYSTEM` manifest cannot silently leave a
    ///   port with its defaults).
    ///
    /// # Errors
    /// Returns [`FlowCError::Semantic`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        let mut names = std::collections::BTreeSet::new();
        for p in &self.processes {
            if !names.insert(&p.name) {
                return Err(FlowCError::Semantic(format!(
                    "duplicate process name `{}`",
                    p.name
                )));
            }
        }
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        for c in &self.channels {
            self.check_endpoint(&c.from, PortDirection::Out)?;
            self.check_endpoint(&c.to, PortDirection::In)?;
            *used.entry(c.from.clone()).or_insert(0) += 1;
            *used.entry(c.to.clone()).or_insert(0) += 1;
        }
        if let Some(((proc, port), _)) = used.iter().find(|(_, &n)| n > 1) {
            return Err(FlowCError::Semantic(format!(
                "port `{proc}.{port}` is connected to more than one channel"
            )));
        }
        for ((proc, port), what) in self
            .input_classes
            .keys()
            .map(|k| (k, "input class"))
            .chain(self.port_rates.keys().map(|k| (k, "port rate")))
        {
            let known = self
                .process(proc)
                .is_some_and(|process| process.port(port).is_some());
            if !known {
                return Err(FlowCError::Semantic(format!(
                    "{what} declared for unknown port `{proc}.{port}`"
                )));
            }
        }
        Ok(())
    }

    fn check_endpoint(&self, endpoint: &(String, String), dir: PortDirection) -> Result<()> {
        let (proc, port) = endpoint;
        let process = self.process(proc).ok_or_else(|| {
            FlowCError::Semantic(format!(
                "channel endpoint refers to unknown process `{proc}`"
            ))
        })?;
        let decl = process.port(port).ok_or_else(|| {
            FlowCError::Semantic(format!(
                "channel endpoint refers to unknown port `{proc}.{port}`"
            ))
        })?;
        if decl.direction != dir {
            return Err(FlowCError::Semantic(format!(
                "port `{proc}.{port}` has the wrong direction for this channel endpoint"
            )));
        }
        Ok(())
    }
}

fn parse_port_ref(s: &str) -> Result<(String, String)> {
    match s.split_once('.') {
        Some((p, q)) if !p.is_empty() && !q.is_empty() => Ok((p.to_string(), q.to_string())),
        _ => Err(FlowCError::Semantic(format!(
            "`{s}` is not a valid port reference (expected `process.port`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_process;

    fn producer() -> Process {
        parse_process(
            "PROCESS producer (Out DPORT data) { int i; while (1) { i = i + 1; WRITE_DATA(data, i, 1); } }",
        )
        .unwrap()
    }

    fn consumer() -> Process {
        parse_process(
            "PROCESS consumer (In DPORT data) { int x; while (1) { READ_DATA(data, x, 1); } }",
        )
        .unwrap()
    }

    #[test]
    fn builds_and_validates_simple_pipeline() {
        let spec = SystemSpec::new("pipe")
            .with_process(producer())
            .with_process(consumer())
            .with_channel("producer.data", "consumer.data", Some(4))
            .unwrap();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.channels().len(), 1);
        assert!(spec.is_connected("producer", "data"));
        assert!(!spec.is_connected("consumer", "nothing"));
    }

    #[test]
    fn rejects_bad_port_reference() {
        let r = SystemSpec::new("x").with_channel("producerdata", "consumer.data", None);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let spec = SystemSpec::new("pipe")
            .with_process(producer())
            .with_channel("producer.data", "consumer.data", None)
            .unwrap();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn rejects_direction_mismatch() {
        let spec = SystemSpec::new("pipe")
            .with_process(producer())
            .with_process(consumer())
            .with_channel("consumer.data", "producer.data", None)
            .unwrap();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn rejects_fanout_on_one_port() {
        let consumer2 = parse_process(
            "PROCESS consumer2 (In DPORT data) { int x; while (1) { READ_DATA(data, x, 1); } }",
        )
        .unwrap();
        let spec = SystemSpec::new("pipe")
            .with_process(producer())
            .with_process(consumer())
            .with_process(consumer2)
            .with_channel("producer.data", "consumer.data", None)
            .unwrap()
            .with_channel("producer.data", "consumer2.data", None)
            .unwrap();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_process_names() {
        let spec = SystemSpec::new("dup")
            .with_process(producer())
            .with_process(producer());
        assert!(spec.validate().is_err());
    }

    #[test]
    fn port_class_and_rate_defaults() {
        let spec = SystemSpec::new("env")
            .with_process(consumer())
            .with_input_port_class("consumer.data", PortClass::Controllable)
            .with_port_rate("consumer.data", 3);
        assert_eq!(
            spec.input_class("consumer", "data"),
            PortClass::Controllable
        );
        assert_eq!(spec.port_rate("consumer", "data"), 3);
        assert_eq!(
            spec.input_class("consumer", "other"),
            PortClass::Uncontrollable
        );
        assert_eq!(spec.port_rate("consumer", "other"), 1);
    }
}
