//! Abstract syntax tree for FlowC processes.
//!
//! The AST deliberately covers only the C subset needed by the paper's
//! examples: integer scalars and arrays, arithmetic / relational / logical
//! expressions, `if`/`while`/`for` control flow, and the port primitives
//! `READ_DATA`, `WRITE_DATA` and `SELECT`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of a process port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// The process reads from this port.
    In,
    /// The process writes to this port.
    Out,
}

/// Declaration of a port in a process header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortDecl {
    /// Port name, unique within the process.
    pub name: String,
    /// Direction of the port.
    pub direction: PortDirection,
}

/// A FlowC process: a name, a port list and a sequential body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Process name, unique within a [`SystemSpec`](crate::SystemSpec).
    pub name: String,
    /// Declared ports.
    pub ports: Vec<PortDecl>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Process {
    /// Looks up a port declaration by name.
    pub fn port(&self, name: &str) -> Option<&PortDecl> {
        self.ports.iter().find(|p| p.name == name)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Expressions over 64-bit integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Scalar variable reference.
    Var(String),
    /// Array element reference `name[index]`.
    Index(String, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Drop for Expr {
    /// Drops iteratively: a chained expression like `1+1+…+1` parses into
    /// a left-deep tree whose *depth* is the term count, and the default
    /// recursive drop would overflow the stack on hostile input (the
    /// parser bounds nesting, but chains are built by iteration). Children
    /// are detached onto an explicit worklist first, so every individual
    /// drop only ever sees leaves.
    fn drop(&mut self) {
        if matches!(self, Expr::Int(_) | Expr::Var(_)) {
            return;
        }
        let mut worklist: Vec<Expr> = Vec::new();
        detach_children(self, &mut worklist);
        while let Some(mut e) = worklist.pop() {
            detach_children(&mut e, &mut worklist);
        }
    }
}

/// Replaces every interior child of `e` with a leaf, moving the real
/// children onto `out` (the iterative-drop worklist). Leaf children are
/// left in place — they drop trivially, and skipping them keeps the
/// worklist allocation-free for the ubiquitous shallow expressions.
fn detach_children(e: &mut Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Int(_) | Expr::Var(_) => {}
        Expr::Index(_, a) | Expr::Unary(_, a) => {
            if !matches!(**a, Expr::Int(_) | Expr::Var(_)) {
                out.push(std::mem::replace(&mut **a, Expr::Int(0)));
            }
        }
        Expr::Binary(_, a, b) => {
            if !matches!(**a, Expr::Int(_) | Expr::Var(_)) {
                out.push(std::mem::replace(&mut **a, Expr::Int(0)));
            }
            if !matches!(**b, Expr::Int(_) | Expr::Var(_)) {
                out.push(std::mem::replace(&mut **b, Expr::Int(0)));
            }
        }
    }
}

impl Expr {
    /// Convenience constructor for a binary expression.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Returns the literal value if the expression is a constant integer.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Unary(UnOp::Neg, e) => e.as_const().map(|v| -v),
            Expr::Unary(UnOp::Not, e) => e.as_const().map(|v| (v == 0) as i64),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Var(n) => write!(f, "{n}"),
            Expr::Index(n, i) => write!(f, "{n}[{i}]"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "!({e})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

/// Assignable locations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array element.
    Index(String, Expr),
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Var(n) => write!(f, "{n}"),
            LValue::Index(n, i) => write!(f, "{n}[{i}]"),
        }
    }
}

/// A port operation extracted from a statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortOp {
    /// `READ_DATA(port, dest, nitems)`.
    Read {
        /// Port name.
        port: String,
        /// Destination variable or array.
        dest: LValue,
        /// Number of items transferred (a compile-time constant).
        nitems: u32,
    },
    /// `WRITE_DATA(port, src, nitems)`.
    Write {
        /// Port name.
        port: String,
        /// Source expression (scalar) or array variable.
        src: Expr,
        /// Number of items transferred (a compile-time constant).
        nitems: u32,
    },
}

impl PortOp {
    /// The port this operation touches.
    pub fn port(&self) -> &str {
        match self {
            PortOp::Read { port, .. } | PortOp::Write { port, .. } => port,
        }
    }

    /// The number of items transferred.
    pub fn nitems(&self) -> u32 {
        match self {
            PortOp::Read { nitems, .. } | PortOp::Write { nitems, .. } => *nitems,
        }
    }

    /// Returns `true` for read operations.
    pub fn is_read(&self) -> bool {
        matches!(self, PortOp::Read { .. })
    }
}

/// One arm of a `switch (SELECT(...))` construct.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectArm {
    /// The `case` label (index into the SELECT port list).
    pub index: u32,
    /// Statements executed when this arm is selected.
    pub body: Vec<Stmt>,
}

/// Statements of a FlowC process body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Variable declaration `int a, b, buf[10];` — `None` size means scalar.
    Decl {
        /// Declared names with optional array sizes.
        names: Vec<(String, Option<u32>)>,
    },
    /// Assignment `target = value;`.
    Assign {
        /// Location written.
        target: LValue,
        /// Value expression.
        value: Expr,
    },
    /// Conditional statement.
    If {
        /// Condition expression.
        cond: Expr,
        /// `then` branch.
        then_branch: Vec<Stmt>,
        /// `else` branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { body }` loop.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A blocking port operation.
    Port(PortOp),
    /// `switch (SELECT(p0, n0, p1, n1, ...)) { case 0: ...; case 1: ...; }`
    Select {
        /// The SELECT port list as `(port, nitems)` pairs, in case order.
        ports: Vec<(String, u32)>,
        /// The case arms, one per port (in the same order).
        arms: Vec<SelectArm>,
    },
    /// Bare expression statement (evaluated for effect-free value).
    Expr(Expr),
    /// Empty statement.
    Nop,
}

impl Stmt {
    /// Returns `true` if the statement or any nested statement performs a
    /// port operation (`READ_DATA`, `WRITE_DATA` or `SELECT`). This is the
    /// predicate that drives leader computation and net granularity.
    pub fn has_port_ops(&self) -> bool {
        match self {
            Stmt::Port(_) | Stmt::Select { .. } => true,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.iter().any(Stmt::has_port_ops)
                    || else_branch.iter().any(Stmt::has_port_ops)
            }
            Stmt::While { body, .. } => body.iter().any(Stmt::has_port_ops),
            _ => false,
        }
    }

    /// Pretty-prints the statement as a single line of C-like code (used
    /// for Petri-net transition annotations and generated-code comments).
    pub fn to_code(&self) -> String {
        match self {
            Stmt::Decl { names } => {
                let decls: Vec<String> = names
                    .iter()
                    .map(|(n, size)| match size {
                        Some(s) => format!("{n}[{s}]"),
                        None => n.clone(),
                    })
                    .collect();
                format!("int {};", decls.join(", "))
            }
            Stmt::Assign { target, value } => format!("{target} = {value};"),
            Stmt::If { cond, .. } => format!("if ({cond}) ..."),
            Stmt::While { cond, .. } => format!("while ({cond}) ..."),
            Stmt::Port(PortOp::Read { port, dest, nitems }) => {
                format!("READ_DATA({port}, {dest}, {nitems});")
            }
            Stmt::Port(PortOp::Write { port, src, nitems }) => {
                format!("WRITE_DATA({port}, {src}, {nitems});")
            }
            Stmt::Select { ports, .. } => {
                let list: Vec<String> = ports.iter().map(|(p, n)| format!("{p}, {n}")).collect();
                format!("switch (SELECT({})) ...", list.join(", "))
            }
            Stmt::Expr(e) => format!("{e};"),
            Stmt::Nop => ";".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_and_const_folding() {
        let e = Expr::binary(BinOp::Add, Expr::Int(1), Expr::Var("x".into()));
        assert_eq!(e.to_string(), "(1 + x)");
        assert_eq!(e.as_const(), None);
        assert_eq!(Expr::Int(5).as_const(), Some(5));
        assert_eq!(
            Expr::Unary(UnOp::Neg, Box::new(Expr::Int(3))).as_const(),
            Some(-3)
        );
        assert_eq!(
            Expr::Unary(UnOp::Not, Box::new(Expr::Int(0))).as_const(),
            Some(1)
        );
    }

    #[test]
    fn port_op_accessors() {
        let r = PortOp::Read {
            port: "in".into(),
            dest: LValue::Var("n".into()),
            nitems: 2,
        };
        assert_eq!(r.port(), "in");
        assert_eq!(r.nitems(), 2);
        assert!(r.is_read());
        let w = PortOp::Write {
            port: "out".into(),
            src: Expr::Var("n".into()),
            nitems: 1,
        };
        assert!(!w.is_read());
    }

    #[test]
    fn has_port_ops_is_recursive() {
        let read = Stmt::Port(PortOp::Read {
            port: "p".into(),
            dest: LValue::Var("x".into()),
            nitems: 1,
        });
        let plain = Stmt::Assign {
            target: LValue::Var("x".into()),
            value: Expr::Int(0),
        };
        assert!(read.has_port_ops());
        assert!(!plain.has_port_ops());
        let wrapped = Stmt::While {
            cond: Expr::Int(1),
            body: vec![Stmt::If {
                cond: Expr::Var("c".into()),
                then_branch: vec![read],
                else_branch: vec![],
            }],
        };
        assert!(wrapped.has_port_ops());
        let no_ports = Stmt::While {
            cond: Expr::Int(1),
            body: vec![plain],
        };
        assert!(!no_ports.has_port_ops());
    }

    #[test]
    fn statement_pretty_printing() {
        let s = Stmt::Port(PortOp::Write {
            port: "max".into(),
            src: Expr::Var("i".into()),
            nitems: 1,
        });
        assert_eq!(s.to_code(), "WRITE_DATA(max, i, 1);");
        let d = Stmt::Decl {
            names: vec![("n".into(), None), ("buf".into(), Some(8))],
        };
        assert_eq!(d.to_code(), "int n, buf[8];");
    }

    #[test]
    fn process_port_lookup() {
        let p = Process {
            name: "p".into(),
            ports: vec![PortDecl {
                name: "in".into(),
                direction: PortDirection::In,
            }],
            body: vec![],
        };
        assert!(p.port("in").is_some());
        assert!(p.port("out").is_none());
    }
}
