//! FlowC front end for quasi-static scheduling.
//!
//! FlowC is the specification language of Cortadella et al. (DAC 2000): a
//! C subset extended with `READ_DATA`, `WRITE_DATA` and `SELECT` port
//! primitives. A system is a network of sequential FlowC processes
//! connected by point-to-point, possibly multi-rate channels; unconnected
//! ports talk to the environment and input ports are classified as
//! *controllable* or *uncontrollable*.
//!
//! This crate provides:
//!
//! * a lexer, parser and AST for FlowC processes ([`parse_process`]),
//! * a [`SystemSpec`] builder describing the network (processes, channels,
//!   environment ports), and a whole-system parser ([`parse_system`])
//!   that reads multi-process source files with a `SYSTEM` manifest
//!   block,
//! * *compilation* of each process into a Petri-net fragment at the
//!   leader-based granularity of the paper ([`compile()`]),
//! * *linking* of the per-process nets into a single Unique-Choice Petri
//!   net with channel places and environment source/sink transitions
//!   ([`link()`], [`LinkedSystem`]).
//!
//! # Example
//!
//! ```
//! use qss_flowc::{parse_process, SystemSpec, PortClass};
//!
//! let producer = parse_process(r#"
//!     PROCESS producer (Out DPORT data) {
//!         int i;
//!         i = 0;
//!         while (1) {
//!             i = i + 1;
//!             WRITE_DATA(data, i, 1);
//!         }
//!     }
//! "#)?;
//! let consumer = parse_process(r#"
//!     PROCESS consumer (In DPORT data, Out DPORT sum) {
//!         int x, s;
//!         s = 0;
//!         while (1) {
//!             READ_DATA(data, x, 1);
//!             s = s + x;
//!             WRITE_DATA(sum, s, 1);
//!         }
//!     }
//! "#)?;
//! let spec = SystemSpec::new("pipeline")
//!     .with_process(producer)
//!     .with_process(consumer)
//!     .with_channel("producer.data", "consumer.data", None)?
//!     .with_input_port_class("consumer.sum", PortClass::Uncontrollable);
//! let system = qss_flowc::link(&spec)?;
//! assert!(system.net.num_transitions() > 0);
//! # Ok::<(), qss_flowc::FlowCError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod examples;
pub mod leaders;
pub mod lexer;
pub mod link;
pub mod parser;
pub mod spec;

pub use ast::{BinOp, Expr, LValue, PortOp, Process, Stmt, UnOp};
pub use compile::{compile, CompiledProcess, TransitionCode};
pub use error::{FlowCError, Result};
pub use link::{link, ChannelInfo, EnvInputInfo, EnvOutputInfo, LinkedSystem};
pub use parser::{parse_process, parse_system};
pub use spec::{ChannelSpec, PortClass, SystemSpec};
