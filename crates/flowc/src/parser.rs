//! Recursive-descent parser for FlowC processes and whole-system files.

use crate::ast::*;
use crate::error::{FlowCError, Result};
use crate::lexer::{tokenize, Spanned, Token};
use crate::spec::{PortClass, SystemSpec};

/// Parses the source text of a single FlowC process.
///
/// # Errors
/// Returns [`FlowCError::Lex`] or [`FlowCError::Parse`] describing the
/// first problem found.
///
/// ```
/// let p = qss_flowc::parse_process(
///     "PROCESS echo (In DPORT a, Out DPORT b) {
///          int x;
///          while (1) { READ_DATA(a, x, 1); WRITE_DATA(b, x, 1); }
///      }")?;
/// assert_eq!(p.name, "echo");
/// assert_eq!(p.ports.len(), 2);
/// # Ok::<(), qss_flowc::FlowCError>(())
/// ```
pub fn parse_process(source: &str) -> Result<Process> {
    let tokens = tokenize(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let process = p.process()?;
    p.expect_eof()?;
    Ok(process)
}

/// Parses a whole-system FlowC file: any number of `PROCESS` definitions
/// plus an optional `SYSTEM` manifest block describing the network.
///
/// The manifest understands three declaration forms, each terminated by a
/// semicolon:
///
/// * `CHANNEL producer.data -> consumer.data;` — a point-to-point channel,
///   optionally bounded: `CHANNEL a.x -> b.y [4];`,
/// * `INPUT process.port CONTROLLABLE;` (or `UNCONTROLLABLE`) — the class
///   of an environment input port (unspecified ports are uncontrollable),
/// * `RATE process.port 2;` — items per firing of an environment port.
///
/// Without a `SYSTEM` block the file describes a single unconnected
/// network named after its first process (`<name>_system`), which matches
/// the convention the examples use for the Figure 1 `divisors` process.
///
/// The returned specification has already been
/// [validated](SystemSpec::validate).
///
/// # Errors
/// Returns [`FlowCError::Lex`] or [`FlowCError::Parse`] (with the source
/// line) on malformed input, and [`FlowCError::Semantic`] if the manifest
/// references unknown processes or ports, connects a port twice, or
/// duplicates a process name.
///
/// ```
/// let spec = qss_flowc::parse_system(r#"
///     SYSTEM pipeline {
///         CHANNEL producer.data -> consumer.data;
///     }
///     PROCESS producer (In DPORT trigger, Out DPORT data) {
///         int t;
///         while (1) { READ_DATA(trigger, t, 1); WRITE_DATA(data, t, 1); }
///     }
///     PROCESS consumer (In DPORT data, Out DPORT sum) {
///         int x, s;
///         while (1) { READ_DATA(data, x, 1); s = s + x; WRITE_DATA(sum, s, 1); }
///     }
/// "#)?;
/// assert_eq!(spec.name(), "pipeline");
/// assert_eq!(spec.processes().len(), 2);
/// assert_eq!(spec.channels().len(), 1);
/// # Ok::<(), qss_flowc::FlowCError>(())
/// ```
pub fn parse_system(source: &str) -> Result<SystemSpec> {
    let tokens = tokenize(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    p.system()
}

/// One declaration of a `SYSTEM` manifest block.
enum SystemDecl {
    Channel {
        from: String,
        to: String,
        bound: Option<u32>,
    },
    Input {
        port: String,
        class: PortClass,
    },
    Rate {
        port: String,
        rate: u32,
    },
}

/// Deepest statement/expression nesting the parser accepts. Recursive
/// descent recurses once per nesting level, so without a limit hostile
/// input like `((((…1…))))` overflows the thread stack (an abort, not a
/// catchable error). Real FlowC processes nest single digits deep.
const MAX_NEST_DEPTH: usize = 256;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Current statement/expression nesting depth (see [`MAX_NEST_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> FlowCError {
        FlowCError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<()> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected {what}, found {t:?}"))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.advance() {
            Some(Token::Ident(name)) if name == kw => Ok(()),
            other => Err(self.error(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<i64> {
        match self.advance() {
            Some(Token::Int(v)) => Ok(v),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input after process body"))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(name)) if name == kw)
    }

    fn system(&mut self) -> Result<SystemSpec> {
        let mut name: Option<String> = None;
        let mut processes: Vec<Process> = Vec::new();
        let mut decls: Vec<SystemDecl> = Vec::new();
        loop {
            if self.at_keyword("PROCESS") {
                processes.push(self.process()?);
            } else if self.at_keyword("SYSTEM") {
                if name.is_some() {
                    return Err(self.error("duplicate `SYSTEM` block"));
                }
                name = Some(self.system_block(&mut decls)?);
            } else if self.peek().is_none() {
                break;
            } else {
                return Err(self.error(format!(
                    "expected `PROCESS` or `SYSTEM`, found {:?}",
                    self.peek()
                )));
            }
        }
        let Some(first) = processes.first() else {
            return Err(self.error("a system file needs at least one `PROCESS`"));
        };
        let name = name.unwrap_or_else(|| format!("{}_system", first.name));
        let mut spec = SystemSpec::new(name);
        for process in processes {
            spec = spec.with_process(process);
        }
        for decl in decls {
            match decl {
                SystemDecl::Channel { from, to, bound } => {
                    spec = spec.with_channel(&from, &to, bound)?;
                }
                SystemDecl::Input { port, class } => {
                    spec = spec.with_input_port_class(&port, class);
                }
                SystemDecl::Rate { port, rate } => {
                    spec = spec.with_port_rate(&port, rate);
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Parses `SYSTEM name { ... }`, pushing the declarations into `decls`
    /// and returning the system name.
    fn system_block(&mut self, decls: &mut Vec<SystemDecl>) -> Result<String> {
        self.expect_keyword("SYSTEM")?;
        let name = self.expect_ident("system name")?;
        self.expect(&Token::LBrace, "`{`")?;
        while !matches!(self.peek(), Some(Token::RBrace)) {
            if self.peek().is_none() {
                return Err(self.error("unexpected end of input inside `SYSTEM { ... }`"));
            }
            let keyword = self.expect_ident("`CHANNEL`, `INPUT` or `RATE`")?;
            let decl = match keyword.as_str() {
                "CHANNEL" => {
                    let from = self.port_ref()?;
                    self.expect(&Token::Arrow, "`->`")?;
                    let to = self.port_ref()?;
                    let bound = if matches!(self.peek(), Some(Token::LBracket)) {
                        self.pos += 1;
                        let v = self.expect_int("channel bound")?;
                        self.expect(&Token::RBracket, "`]`")?;
                        Some(u32::try_from(v).map_err(|_| {
                            self.error(format!("channel bound `{v}` is out of range"))
                        })?)
                    } else {
                        None
                    };
                    SystemDecl::Channel { from, to, bound }
                }
                "INPUT" => {
                    let port = self.port_ref()?;
                    let class = self.expect_ident("`UNCONTROLLABLE` or `CONTROLLABLE`")?;
                    let class = match class.as_str() {
                        "UNCONTROLLABLE" => PortClass::Uncontrollable,
                        "CONTROLLABLE" => PortClass::Controllable,
                        other => return Err(self.error(format!("unknown input class `{other}`"))),
                    };
                    SystemDecl::Input { port, class }
                }
                "RATE" => {
                    let port = self.port_ref()?;
                    let v = self.expect_int("port rate")?;
                    let rate = u32::try_from(v).ok().filter(|r| *r > 0).ok_or_else(|| {
                        self.error(format!("port rate `{v}` must be a positive integer"))
                    })?;
                    SystemDecl::Rate { port, rate }
                }
                other => {
                    return Err(self.error(format!(
                    "unknown system declaration `{other}` (expected `CHANNEL`, `INPUT` or `RATE`)"
                )))
                }
            };
            self.expect(&Token::Semi, "`;`")?;
            decls.push(decl);
        }
        self.expect(&Token::RBrace, "`}`")?;
        Ok(name)
    }

    /// Parses a `process.port` reference and renders it back to the
    /// dotted form [`SystemSpec`]'s builder methods expect.
    fn port_ref(&mut self) -> Result<String> {
        let process = self.expect_ident("process name")?;
        self.expect(&Token::Dot, "`.`")?;
        let port = self.expect_ident("port name")?;
        Ok(format!("{process}.{port}"))
    }

    fn process(&mut self) -> Result<Process> {
        self.expect_keyword("PROCESS")?;
        let name = self.expect_ident("process name")?;
        self.expect(&Token::LParen, "`(`")?;
        let mut ports = Vec::new();
        if !matches!(self.peek(), Some(Token::RParen)) {
            loop {
                ports.push(self.port_decl()?);
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "`)`")?;
        let body = self.block()?;
        Ok(Process { name, ports, body })
    }

    fn port_decl(&mut self) -> Result<PortDecl> {
        let dir = self.expect_ident("port direction (`In` or `Out`)")?;
        let direction = match dir.as_str() {
            "In" => PortDirection::In,
            "Out" => PortDirection::Out,
            other => return Err(self.error(format!("unknown port direction `{other}`"))),
        };
        self.expect_keyword("DPORT")?;
        let name = self.expect_ident("port name")?;
        Ok(PortDecl { name, direction })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&Token::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Some(Token::RBrace)) {
            if self.peek().is_none() {
                return Err(self.error("unexpected end of input inside `{ ... }`"));
            }
            stmts.push(self.statement()?);
        }
        self.expect(&Token::RBrace, "`}`")?;
        Ok(stmts)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>> {
        if matches!(self.peek(), Some(Token::LBrace)) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    /// Increments the nesting depth, erroring out (instead of blowing the
    /// stack) past [`MAX_NEST_DEPTH`]. Paired with a `self.depth -= 1`
    /// in the callers that guard a recursion root.
    fn enter_nested(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_NEST_DEPTH {
            return Err(self.error(format!(
                "statements/expressions nested deeper than {MAX_NEST_DEPTH} levels"
            )));
        }
        Ok(())
    }

    fn statement(&mut self) -> Result<Stmt> {
        self.enter_nested()?;
        let result = self.statement_inner();
        self.depth -= 1;
        result
    }

    fn statement_inner(&mut self) -> Result<Stmt> {
        match self.peek() {
            Some(Token::Semi) => {
                self.pos += 1;
                Ok(Stmt::Nop)
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "int" => self.declaration(),
                "if" => self.if_statement(),
                "while" => self.while_statement(),
                "for" => self.for_statement(),
                "switch" => self.select_statement(),
                "READ_DATA" => self.read_statement(),
                "WRITE_DATA" => self.write_statement(),
                _ => {
                    let s = self.simple_statement()?;
                    self.expect(&Token::Semi, "`;`")?;
                    Ok(s)
                }
            },
            _ => {
                let s = self.simple_statement()?;
                self.expect(&Token::Semi, "`;`")?;
                Ok(s)
            }
        }
    }

    fn declaration(&mut self) -> Result<Stmt> {
        self.expect_keyword("int")?;
        let mut names = Vec::new();
        loop {
            let name = self.expect_ident("variable name")?;
            let size = if matches!(self.peek(), Some(Token::LBracket)) {
                self.pos += 1;
                let v = self.expect_int("array size")?;
                self.expect(&Token::RBracket, "`]`")?;
                if v <= 0 {
                    return Err(self.error("array size must be positive"));
                }
                Some(v as u32)
            } else {
                None
            };
            names.push((name, size));
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(&Token::Semi, "`;`")?;
        Ok(Stmt::Decl { names })
    }

    fn if_statement(&mut self) -> Result<Stmt> {
        self.expect_keyword("if")?;
        self.expect(&Token::LParen, "`(`")?;
        let cond = self.expression()?;
        self.expect(&Token::RParen, "`)`")?;
        let then_branch = self.stmt_or_block()?;
        let else_branch = if self.at_keyword("else") {
            self.pos += 1;
            if self.at_keyword("if") {
                // Recurse through `statement` so the chain counts against
                // the nesting guard: a long `else if` cascade recurses
                // once per arm and must not bypass MAX_NEST_DEPTH.
                vec![self.statement()?]
            } else {
                self.stmt_or_block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn while_statement(&mut self) -> Result<Stmt> {
        self.expect_keyword("while")?;
        self.expect(&Token::LParen, "`(`")?;
        let cond = self.expression()?;
        self.expect(&Token::RParen, "`)`")?;
        let body = self.stmt_or_block()?;
        Ok(Stmt::While { cond, body })
    }

    /// Desugars `for (init; cond; update) body` into
    /// `init; while (cond) { body; update; }`.
    fn for_statement(&mut self) -> Result<Stmt> {
        self.expect_keyword("for")?;
        self.expect(&Token::LParen, "`(`")?;
        let init = if matches!(self.peek(), Some(Token::Semi)) {
            None
        } else {
            Some(self.simple_statement()?)
        };
        self.expect(&Token::Semi, "`;` after for-init")?;
        let cond = if matches!(self.peek(), Some(Token::Semi)) {
            Expr::Int(1)
        } else {
            self.expression()?
        };
        self.expect(&Token::Semi, "`;` after for-condition")?;
        let update = if matches!(self.peek(), Some(Token::RParen)) {
            None
        } else {
            Some(self.simple_statement()?)
        };
        self.expect(&Token::RParen, "`)`")?;
        let mut body = self.stmt_or_block()?;
        if let Some(u) = update {
            body.push(u);
        }
        let while_loop = Stmt::While { cond, body };
        Ok(match init {
            // A for loop is represented as an `if (1)` wrapper holding the
            // init statement and the while loop so that a single Stmt is
            // returned; compilation flattens it again.
            Some(init_stmt) => Stmt::If {
                cond: Expr::Int(1),
                then_branch: vec![init_stmt, while_loop],
                else_branch: Vec::new(),
            },
            None => while_loop,
        })
    }

    fn read_statement(&mut self) -> Result<Stmt> {
        self.expect_keyword("READ_DATA")?;
        self.expect(&Token::LParen, "`(`")?;
        let port = self.expect_ident("port name")?;
        self.expect(&Token::Comma, "`,`")?;
        // Optional address-of on the destination, as in `&n`.
        if matches!(self.peek(), Some(Token::Amp)) {
            self.pos += 1;
        }
        let dest = self.lvalue()?;
        self.expect(&Token::Comma, "`,`")?;
        let nitems = self.expect_int("item count")?;
        if nitems <= 0 {
            return Err(self.error("READ_DATA item count must be positive"));
        }
        self.expect(&Token::RParen, "`)`")?;
        self.expect(&Token::Semi, "`;`")?;
        Ok(Stmt::Port(PortOp::Read {
            port,
            dest,
            nitems: nitems as u32,
        }))
    }

    fn write_statement(&mut self) -> Result<Stmt> {
        self.expect_keyword("WRITE_DATA")?;
        self.expect(&Token::LParen, "`(`")?;
        let port = self.expect_ident("port name")?;
        self.expect(&Token::Comma, "`,`")?;
        let src = self.expression()?;
        self.expect(&Token::Comma, "`,`")?;
        let nitems = self.expect_int("item count")?;
        if nitems <= 0 {
            return Err(self.error("WRITE_DATA item count must be positive"));
        }
        self.expect(&Token::RParen, "`)`")?;
        self.expect(&Token::Semi, "`;`")?;
        Ok(Stmt::Port(PortOp::Write {
            port,
            src,
            nitems: nitems as u32,
        }))
    }

    fn select_statement(&mut self) -> Result<Stmt> {
        self.expect_keyword("switch")?;
        self.expect(&Token::LParen, "`(`")?;
        self.expect_keyword("SELECT")?;
        self.expect(&Token::LParen, "`(`")?;
        let mut ports = Vec::new();
        loop {
            let port = self.expect_ident("port name")?;
            self.expect(&Token::Comma, "`,`")?;
            let n = self.expect_int("item count")?;
            if n <= 0 {
                return Err(self.error("SELECT item count must be positive"));
            }
            ports.push((port, n as u32));
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(&Token::RParen, "`)` closing SELECT")?;
        self.expect(&Token::RParen, "`)` closing switch")?;
        self.expect(&Token::LBrace, "`{`")?;
        let mut arms = Vec::new();
        while self.at_keyword("case") {
            self.pos += 1;
            let index = self.expect_int("case label")?;
            if index < 0 || index as usize >= ports.len() {
                return Err(self.error(format!(
                    "case label {index} does not match any SELECT port (0..{})",
                    ports.len() - 1
                )));
            }
            self.expect(&Token::Colon, "`:`")?;
            let mut body = Vec::new();
            loop {
                if self.at_keyword("break") {
                    self.pos += 1;
                    self.expect(&Token::Semi, "`;` after break")?;
                    break;
                }
                if self.at_keyword("case") || matches!(self.peek(), Some(Token::RBrace)) {
                    break;
                }
                body.push(self.statement()?);
            }
            arms.push(SelectArm {
                index: index as u32,
                body,
            });
        }
        self.expect(&Token::RBrace, "`}` closing switch body")?;
        if arms.len() != ports.len() {
            return Err(self.error(format!(
                "switch (SELECT(...)) must have one case per port: {} ports but {} cases",
                ports.len(),
                arms.len()
            )));
        }
        Ok(Stmt::Select { ports, arms })
    }

    /// Assignment, increment/decrement or bare expression (without the
    /// trailing `;`, which the caller consumes).
    fn simple_statement(&mut self) -> Result<Stmt> {
        // Look ahead for `ident =`, `ident[` ... `=`, `ident++`, `ident--`,
        // `++ident`, `--ident`.
        if matches!(self.peek(), Some(Token::PlusPlus | Token::MinusMinus)) {
            let op = self.advance().unwrap();
            let target = self.lvalue()?;
            return Ok(incdec(target, matches!(op, Token::PlusPlus)));
        }
        if let Some(Token::Ident(_)) = self.peek() {
            match self.peek2() {
                Some(Token::Assign) => {
                    let target = self.lvalue()?;
                    self.expect(&Token::Assign, "`=`")?;
                    let value = self.expression()?;
                    return Ok(Stmt::Assign { target, value });
                }
                Some(Token::PlusPlus) | Some(Token::MinusMinus) => {
                    let target = self.lvalue()?;
                    let op = self.advance().unwrap();
                    return Ok(incdec(target, matches!(op, Token::PlusPlus)));
                }
                Some(Token::LBracket) => {
                    // Could be `a[i] = e` or a bare expression; try lvalue
                    // assignment first by scanning for `=` after the `]`.
                    let save = self.pos;
                    if let Ok(target) = self.lvalue() {
                        if matches!(self.peek(), Some(Token::Assign)) {
                            self.pos += 1;
                            let value = self.expression()?;
                            return Ok(Stmt::Assign { target, value });
                        }
                    }
                    self.pos = save;
                }
                _ => {}
            }
        }
        let e = self.expression()?;
        Ok(Stmt::Expr(e))
    }

    fn lvalue(&mut self) -> Result<LValue> {
        let name = self.expect_ident("variable name")?;
        if matches!(self.peek(), Some(Token::LBracket)) {
            self.pos += 1;
            let idx = self.expression()?;
            self.expect(&Token::RBracket, "`]`")?;
            Ok(LValue::Index(name, idx))
        } else {
            Ok(LValue::Var(name))
        }
    }

    fn expression(&mut self) -> Result<Expr> {
        self.enter_nested()?;
        let result = self.or_expr();
        self.depth -= 1;
        result
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(Token::OrOr)) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.equality_expr()?;
        while matches!(self.peek(), Some(Token::AndAnd)) {
            self.pos += 1;
            let rhs = self.equality_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => BinOp::Eq,
                Some(Token::Ne) => BinOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.relational_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn relational_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.additive_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        // Guarded: `!!!…!x` recurses here without passing `expression`.
        self.enter_nested()?;
        let result = match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                self.unary_expr()
                    .map(|e| Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            Some(Token::Bang) => {
                self.pos += 1;
                self.unary_expr()
                    .map(|e| Expr::Unary(UnOp::Not, Box::new(e)))
            }
            _ => self.primary_expr(),
        };
        self.depth -= 1;
        result
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LBracket)) {
                    self.pos += 1;
                    let idx = self.expression()?;
                    self.expect(&Token::RBracket, "`]`")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Token::LParen) => {
                let e = self.expression()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

fn incdec(target: LValue, increment: bool) -> Stmt {
    let read_back = match &target {
        LValue::Var(n) => Expr::Var(n.clone()),
        LValue::Index(n, i) => Expr::Index(n.clone(), Box::new(i.clone())),
    };
    let op = if increment { BinOp::Add } else { BinOp::Sub };
    Stmt::Assign {
        target,
        value: Expr::binary(op, read_back, Expr::Int(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The divisors process of Figure 1.
    pub(crate) const DIVISORS: &str = r#"
        PROCESS divisors (In DPORT in, Out DPORT max, Out DPORT all) {
            int n, i;
            while (1) {
                READ_DATA(in, &n, 1);
                i = n / 2;
                while (n % i != 0)
                    i--;
                WRITE_DATA(max, i, 1);
                WRITE_DATA(all, i, 1);
                while (i > 1) {
                    i--;
                    if (n % i == 0)
                        WRITE_DATA(all, i, 1);
                }
            }
        }
    "#;

    #[test]
    fn parses_divisors_process() {
        let p = parse_process(DIVISORS).unwrap();
        assert_eq!(p.name, "divisors");
        assert_eq!(p.ports.len(), 3);
        assert_eq!(p.ports[0].direction, PortDirection::In);
        assert_eq!(p.ports[1].direction, PortDirection::Out);
        // Body: declaration + while(1).
        assert_eq!(p.body.len(), 2);
        match &p.body[1] {
            Stmt::While { cond, body } => {
                assert_eq!(cond.as_const(), Some(1));
                assert_eq!(body.len(), 6);
            }
            other => panic!("expected while loop, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let src = r#"
            PROCESS p (Out DPORT o) {
                int x;
                while (1) {
                    if (x == 0) WRITE_DATA(o, 1, 1);
                    else if (x == 1) WRITE_DATA(o, 2, 1);
                    else x = 0;
                }
            }
        "#;
        let p = parse_process(src).unwrap();
        let Stmt::While { body, .. } = &p.body[1] else {
            panic!()
        };
        let Stmt::If { else_branch, .. } = &body[0] else {
            panic!()
        };
        assert!(matches!(else_branch[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_for_loop_desugaring() {
        let src = r#"
            PROCESS p (Out DPORT o) {
                int i;
                while (1) {
                    for (i = 0; i < 10; i++)
                        WRITE_DATA(o, i, 1);
                }
            }
        "#;
        let p = parse_process(src).unwrap();
        let Stmt::While { body, .. } = &p.body[1] else {
            panic!()
        };
        // for-loop with init desugars to If { cond: 1, [init, while] }.
        let Stmt::If { then_branch, .. } = &body[0] else {
            panic!("expected desugared for, got {:?}", body[0])
        };
        assert!(matches!(then_branch[0], Stmt::Assign { .. }));
        let Stmt::While {
            body: loop_body, ..
        } = &then_branch[1]
        else {
            panic!()
        };
        // body then update
        assert_eq!(loop_body.len(), 2);
    }

    #[test]
    fn parses_select_switch() {
        let src = r#"
            PROCESS p (In DPORT c0, In DPORT done0, Out DPORT o) {
                int x, d, done;
                while (1) {
                    switch (SELECT(c0, 1, done0, 1)) {
                        case 0: READ_DATA(c0, x, 1); break;
                        case 1: READ_DATA(done0, d, 1); done = 1; break;
                    }
                    WRITE_DATA(o, x, 1);
                }
            }
        "#;
        let p = parse_process(src).unwrap();
        let Stmt::While { body, .. } = &p.body[1] else {
            panic!()
        };
        let Stmt::Select { ports, arms } = &body[0] else {
            panic!()
        };
        assert_eq!(ports.len(), 2);
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].body.len(), 2);
    }

    #[test]
    fn expression_precedence() {
        let src = r#"
            PROCESS p () {
                int a, b, c;
                a = 1 + 2 * 3;
                b = (1 + 2) * 3;
                c = a < b && b != 0 || !c;
            }
        "#;
        let p = parse_process(src).unwrap();
        let Stmt::Assign { value, .. } = &p.body[1] else {
            panic!()
        };
        assert_eq!(value.to_string(), "(1 + (2 * 3))");
        let Stmt::Assign { value, .. } = &p.body[2] else {
            panic!()
        };
        assert_eq!(value.to_string(), "((1 + 2) * 3)");
        let Stmt::Assign { value, .. } = &p.body[3] else {
            panic!()
        };
        assert!(matches!(value, Expr::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse_process("PROCESS p ( {").is_err());
        assert!(parse_process("PROCESS p () { int x }").is_err());
        assert!(parse_process("PROCESS p () { READ_DATA(a, x, 0); }").is_err());
        assert!(parse_process("PROCESS p () { x = ; }").is_err());
        assert!(parse_process("").is_err());
    }

    #[test]
    fn rejects_mismatched_select_cases() {
        let src = r#"
            PROCESS p (In DPORT a, In DPORT b) {
                int x;
                switch (SELECT(a, 1, b, 1)) {
                    case 0: READ_DATA(a, x, 1); break;
                }
            }
        "#;
        assert!(parse_process(src).is_err());
    }

    #[test]
    fn increments_and_decrements_desugar() {
        let src = "PROCESS p () { int i; i++; i--; ++i; }";
        let p = parse_process(src).unwrap();
        assert_eq!(p.body.len(), 4);
        let Stmt::Assign { value, .. } = &p.body[1] else {
            panic!()
        };
        assert_eq!(value.to_string(), "(i + 1)");
        let Stmt::Assign { value, .. } = &p.body[2] else {
            panic!()
        };
        assert_eq!(value.to_string(), "(i - 1)");
    }

    #[test]
    fn array_assignment_and_indexing() {
        let src = "PROCESS p () { int buf[4], i; buf[i] = buf[i - 1] + 1; }";
        let p = parse_process(src).unwrap();
        let Stmt::Assign { target, value } = &p.body[1] else {
            panic!()
        };
        assert!(matches!(target, LValue::Index(_, _)));
        assert_eq!(value.to_string(), "(buf[(i - 1)] + 1)");
    }

    const SYSTEM_FILE: &str = r#"
        SYSTEM pair {
            CHANNEL a.out -> b.data [3];
            INPUT a.trigger UNCONTROLLABLE;
            INPUT b.side CONTROLLABLE;
            RATE b.sum 2;
        }
        PROCESS a (In DPORT trigger, Out DPORT out) {
            int t;
            while (1) { READ_DATA(trigger, t, 1); WRITE_DATA(out, t, 1); }
        }
        PROCESS b (In DPORT data, In DPORT side, Out DPORT sum) {
            int x, y;
            while (1) {
                READ_DATA(data, x, 1);
                READ_DATA(side, y, 1);
                WRITE_DATA(sum, x + y, 1);
            }
        }
    "#;

    #[test]
    fn parses_system_files_with_manifest() {
        let spec = parse_system(SYSTEM_FILE).unwrap();
        assert_eq!(spec.name(), "pair");
        assert_eq!(spec.processes().len(), 2);
        assert_eq!(spec.channels().len(), 1);
        assert_eq!(spec.channels()[0].bound, Some(3));
        assert_eq!(spec.input_class("b", "side"), PortClass::Controllable);
        assert_eq!(spec.input_class("a", "trigger"), PortClass::Uncontrollable);
        assert_eq!(spec.port_rate("b", "sum"), 2);
        // The manifest can also follow the processes.
        let (manifest, processes) = SYSTEM_FILE.split_at(SYSTEM_FILE.find("PROCESS").unwrap());
        let swapped = format!("{processes}\n{manifest}");
        let spec2 = parse_system(&swapped).unwrap();
        assert_eq!(spec2.name(), "pair");
        assert_eq!(spec2.channels(), spec.channels());
    }

    #[test]
    fn system_file_without_manifest_uses_first_process_name() {
        let spec = parse_system(
            "PROCESS solo (In DPORT a, Out DPORT b) {
                 int x;
                 while (1) { READ_DATA(a, x, 1); WRITE_DATA(b, x, 1); }
             }",
        )
        .unwrap();
        assert_eq!(spec.name(), "solo_system");
        assert!(spec.channels().is_empty());
    }

    #[test]
    fn system_file_errors_are_reported() {
        // No processes at all.
        assert!(parse_system("").is_err());
        // Unknown declaration keyword.
        assert!(parse_system("SYSTEM s { BOGUS a.b; } PROCESS p () { int x; }").is_err());
        // Channel endpoints that do not exist are a semantic error.
        let err = parse_system("SYSTEM s { CHANNEL a.out -> b.in; } PROCESS p () { int x; }")
            .unwrap_err();
        assert!(matches!(err, FlowCError::Semantic(_)));
        // Duplicate SYSTEM blocks.
        assert!(parse_system("SYSTEM s { } SYSTEM t { } PROCESS p () { int x; }").is_err());
        // Parse errors carry the source line.
        let err = parse_system("SYSTEM s {\n  CHANNEL a.out b.in;\n}").unwrap_err();
        assert!(matches!(err, FlowCError::Parse { line: 2, .. }));
        // A SYSTEM block alone (no processes) is rejected.
        assert!(parse_system("SYSTEM s { }").is_err());
        // INPUT/RATE declarations with typo'd ports are semantic errors,
        // not silently applied defaults.
        let err = parse_system(
            "SYSTEM s { INPUT p.inn UNCONTROLLABLE; }
             PROCESS p (In DPORT in) { int x; while (1) { READ_DATA(in, x, 1); } }",
        )
        .unwrap_err();
        assert!(matches!(err, FlowCError::Semantic(_)), "{err}");
        let err = parse_system(
            "SYSTEM s { RATE q.out 2; }
             PROCESS p (In DPORT in) { int x; while (1) { READ_DATA(in, x, 1); } }",
        )
        .unwrap_err();
        assert!(matches!(err, FlowCError::Semantic(_)), "{err}");
    }
}
