//! Simulation inputs (environment events) and outputs (reports).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One occurrence of an environment input: a value arriving at an
/// uncontrollable (or controllable) input port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvEvent {
    /// Owning process of the port.
    pub process: String,
    /// Port name.
    pub port: String,
    /// Values delivered (one per item of the port's rate).
    pub values: Vec<i64>,
}

impl EnvEvent {
    /// Creates a single-value event for `process.port`.
    pub fn new(process: impl Into<String>, port: impl Into<String>, value: i64) -> Self {
        EnvEvent {
            process: process.into(),
            port: port.into(),
            values: vec![value],
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Total cycles charged by the cost model.
    pub cycles: u64,
    /// Number of context switches performed (multi-task executor only).
    pub context_switches: u64,
    /// Number of scheduling decisions taken by the RTOS.
    pub dispatches: u64,
    /// Number of communication operations executed.
    pub channel_ops: u64,
    /// Number of transitions (code fragments) executed.
    pub transitions_fired: u64,
    /// Number of environment events processed.
    pub events_processed: u64,
    /// Values written to each environment output port, in order.
    pub outputs: BTreeMap<String, Vec<i64>>,
}

impl SimReport {
    /// The values written to output port `process.port`, if any.
    pub fn output(&self, process: &str, port: &str) -> &[i64] {
        self.outputs
            .get(&format!("{process}.{port}"))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Records a value written to an environment output port.
    pub fn record_output(&mut self, process: &str, port: &str, value: i64) {
        self.outputs
            .entry(format!("{process}.{port}"))
            .or_default()
            .push(value);
    }

    /// Cycles in thousands, the unit used by Table 1 of the paper.
    pub fn kcycles(&self) -> u64 {
        self.cycles / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_constructor() {
        let e = EnvEvent::new("controller", "init", 7);
        assert_eq!(e.process, "controller");
        assert_eq!(e.values, vec![7]);
    }

    #[test]
    fn report_outputs_round_trip() {
        let mut r = SimReport::default();
        r.record_output("consumer", "out", 10);
        r.record_output("consumer", "out", 20);
        assert_eq!(r.output("consumer", "out"), &[10, 20]);
        assert_eq!(r.output("consumer", "missing"), &[] as &[i64]);
        r.cycles = 12_345;
        assert_eq!(r.kcycles(), 12);
    }
}
