//! Error handling for the execution substrate.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;

/// Errors produced while simulating a system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The simulation deadlocked: events remain but no task can make
    /// progress (e.g. a channel buffer is too small for a multi-rate
    /// write).
    Deadlock(String),
    /// An environment event refers to an unknown input port.
    UnknownPort(String),
    /// The schedule and the system are inconsistent.
    Schedule(String),
    /// A run-time guard or expression could not be evaluated.
    Evaluation(String),
    /// The simulation exceeded its step budget (runaway loop).
    StepBudgetExhausted(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(msg) => write!(f, "simulation deadlocked: {msg}"),
            SimError::UnknownPort(port) => write!(f, "unknown environment port `{port}`"),
            SimError::Schedule(msg) => write!(f, "schedule execution error: {msg}"),
            SimError::Evaluation(msg) => write!(f, "evaluation error: {msg}"),
            SimError::StepBudgetExhausted(steps) => {
                write!(f, "simulation exceeded its step budget of {steps}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        for e in [
            SimError::Deadlock("x".into()),
            SimError::UnknownPort("p".into()),
            SimError::Schedule("s".into()),
            SimError::Evaluation("e".into()),
            SimError::StepBudgetExhausted(10),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
