//! Cycle cost model standing in for the paper's R3000 measurements.
//!
//! The experiments of Sec. 8 report clock cycles measured on a MIPS R3000
//! workstation under three compiler settings (`pfc`, `pfc-O`, `pfc-O2`).
//! We replace the hardware with a deterministic cost model: every executed
//! statement, communication operation, RTOS dispatch and context switch is
//! charged a fixed number of cycles. Optimisation levels reduce the cost
//! of computation, while operating-system costs (context switches, RTOS
//! channel primitives) stay constant — which is exactly why the paper's
//! speed-up ratio grows from 3.9× (unoptimised) to 5.2× (`-O2`).

use serde::{Deserialize, Serialize};

/// Cycle costs per primitive operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleCostModel {
    /// Name of the profile (`pfc`, `pfc-O`, `pfc-O2`).
    pub name: &'static str,
    /// Cycles per executed C statement (assignment, arithmetic, test).
    pub cycles_per_statement: u64,
    /// Cycles per evaluated guard / loop condition.
    pub cycles_per_condition: u64,
    /// Cycles per item moved through an *inlined* intra-task buffer.
    pub cycles_per_inline_item: u64,
    /// Fixed cycles per RTOS communication primitive call
    /// (`READ_DATA`/`WRITE_DATA` between separate tasks).
    pub cycles_per_rtos_call: u64,
    /// Cycles per item moved by an RTOS communication primitive.
    pub cycles_per_rtos_item: u64,
    /// Cycles per context switch between tasks.
    pub cycles_per_context_switch: u64,
    /// Cycles per scheduling decision of the round-robin RTOS.
    pub cycles_per_dispatch: u64,
    /// Cycles to enter the ISR / react to an environment event.
    pub cycles_per_event: u64,
}

impl CycleCostModel {
    /// Unoptimised compilation (the paper's `pfc` column).
    pub fn unoptimized() -> Self {
        CycleCostModel {
            name: "pfc",
            cycles_per_statement: 12,
            cycles_per_condition: 8,
            cycles_per_inline_item: 8,
            cycles_per_rtos_call: 80,
            cycles_per_rtos_item: 12,
            cycles_per_context_switch: 180,
            cycles_per_dispatch: 30,
            cycles_per_event: 60,
        }
    }

    /// `-O` compilation (the paper's `pfc-O` column).
    pub fn optimized() -> Self {
        CycleCostModel {
            name: "pfc-O",
            cycles_per_statement: 5,
            cycles_per_condition: 3,
            cycles_per_inline_item: 3,
            cycles_per_rtos_call: 45,
            cycles_per_rtos_item: 7,
            cycles_per_context_switch: 170,
            cycles_per_dispatch: 28,
            cycles_per_event: 50,
        }
    }

    /// `-O2` compilation (the paper's `pfc-O2` column).
    pub fn optimized2() -> Self {
        CycleCostModel {
            name: "pfc-O2",
            cycles_per_statement: 4,
            cycles_per_condition: 3,
            cycles_per_inline_item: 3,
            cycles_per_rtos_call: 42,
            cycles_per_rtos_item: 6,
            cycles_per_context_switch: 168,
            cycles_per_dispatch: 27,
            cycles_per_event: 48,
        }
    }

    /// The three profiles used by the paper's evaluation, in order.
    pub fn profiles() -> [CycleCostModel; 3] {
        [Self::unoptimized(), Self::optimized(), Self::optimized2()]
    }

    /// Cycles for one RTOS communication primitive transferring `nitems`.
    pub fn rtos_comm(&self, nitems: u32) -> u64 {
        self.cycles_per_rtos_call + self.cycles_per_rtos_item * nitems as u64
    }

    /// Cycles for moving `nitems` through an inlined intra-task buffer.
    pub fn inline_comm(&self, nitems: u32) -> u64 {
        self.cycles_per_inline_item * nitems as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimisation_reduces_computation_but_not_os_costs() {
        let o0 = CycleCostModel::unoptimized();
        let o2 = CycleCostModel::optimized2();
        assert!(o0.cycles_per_statement > o2.cycles_per_statement);
        // OS costs stay in the same ballpark (< 10% difference).
        let diff = o0.cycles_per_context_switch as f64 - o2.cycles_per_context_switch as f64;
        assert!(diff / (o0.cycles_per_context_switch as f64) < 0.1);
    }

    #[test]
    fn communication_costs_scale_with_items() {
        let m = CycleCostModel::unoptimized();
        assert!(m.rtos_comm(10) > m.rtos_comm(1));
        assert!(m.inline_comm(10) > m.inline_comm(1));
        assert!(m.rtos_comm(1) > m.inline_comm(1));
    }

    #[test]
    fn profiles_are_named() {
        let names: Vec<_> = CycleCostModel::profiles().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["pfc", "pfc-O", "pfc-O2"]);
    }
}
