//! Code-size comparison between the multi-task and single-task
//! implementations (Table 2 of the paper).
//!
//! Sizes are estimated with the per-construct byte model of
//! [`qss_codegen::size`]: the four-process implementation pays for one
//! copy of the (large) communication primitives per `READ_DATA` /
//! `WRITE_DATA` plus per-task overhead, while the generated single task
//! replaces intra-task communication with plain variable copies and shares
//! code segments between threads.

use qss_codegen::{estimate_code_size, CodeCostModel, GeneratedTask};
use qss_flowc::{LinkedSystem, Process, Stmt};
use serde::{Deserialize, Serialize};

/// Per-construct counts of one FlowC process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessCounts {
    /// Plain statements (assignments, declarations, expression statements).
    pub statements: u64,
    /// Control-flow constructs (`if`, `while`, `switch(SELECT)`).
    pub conditionals: u64,
    /// Communication operations (`READ_DATA`, `WRITE_DATA`, SELECT arms).
    pub comm_ops: u64,
}

fn count_stmts(stmts: &[Stmt], counts: &mut ProcessCounts) {
    for stmt in stmts {
        match stmt {
            Stmt::Decl { .. } | Stmt::Nop => {}
            Stmt::Assign { .. } | Stmt::Expr(_) => counts.statements += 1,
            Stmt::Port(_) => counts.comm_ops += 1,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                counts.conditionals += 1;
                count_stmts(then_branch, counts);
                count_stmts(else_branch, counts);
            }
            Stmt::While { body, .. } => {
                counts.conditionals += 1;
                count_stmts(body, counts);
            }
            Stmt::Select { ports, arms } => {
                counts.conditionals += 1;
                counts.comm_ops += ports.len() as u64;
                for arm in arms {
                    count_stmts(&arm.body, counts);
                }
            }
        }
    }
}

/// Counts the constructs of one process.
pub fn process_counts(process: &Process) -> ProcessCounts {
    let mut counts = ProcessCounts::default();
    count_stmts(&process.body, &mut counts);
    counts
}

/// Estimated object-code size of one process when compiled as its own RTOS
/// task. `inline_comm` selects the paper's inlined-primitives variant
/// (faster but larger code).
pub fn process_size(process: &Process, model: &CodeCostModel, inline_comm: bool) -> u64 {
    let counts = process_counts(process);
    let comm_bytes = if inline_comm {
        // An inlined circular-buffer implementation of the primitive
        // (pointer arithmetic, wrap-around, blocking check) is roughly four
        // times the size of a plain function call.
        model.bytes_per_rtos_comm * 4
    } else {
        model.bytes_per_rtos_comm
    };
    model.bytes_task_overhead
        + counts.statements * model.bytes_per_statement
        + counts.conditionals * model.bytes_per_conditional
        + counts.comm_ops * comm_bytes
}

/// Estimated size of every process of a linked system, by process name.
pub fn process_network_size(
    system: &LinkedSystem,
    processes: &[Process],
    model: &CodeCostModel,
    inline_comm: bool,
) -> Vec<(String, u64)> {
    system
        .process_names
        .iter()
        .filter_map(|name| {
            processes
                .iter()
                .find(|p| &p.name == name)
                .map(|p| (name.clone(), process_size(p, model, inline_comm)))
        })
        .collect()
}

/// Estimated object-code size of a generated single task.
pub fn task_size(task: &GeneratedTask, model: &CodeCostModel) -> u64 {
    estimate_code_size(&task.stats, model)
}

/// A Table-2 style size comparison under one cost profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeReport {
    /// Cost profile name.
    pub profile: String,
    /// Per-process sizes of the multi-task implementation, in bytes.
    pub per_process: Vec<(String, u64)>,
    /// Total size of the multi-task implementation.
    pub processes_total: u64,
    /// Size of the generated single task.
    pub task: u64,
    /// `processes_total / task`.
    pub ratio: f64,
}

/// Builds the Table-2 comparison for one profile.
pub fn size_report(
    system: &LinkedSystem,
    processes: &[Process],
    task: &GeneratedTask,
    model: &CodeCostModel,
    inline_comm: bool,
) -> SizeReport {
    let per_process = process_network_size(system, processes, model, inline_comm);
    let processes_total: u64 = per_process.iter().map(|(_, s)| s).sum();
    let task_bytes = task_size(task, model);
    SizeReport {
        profile: model.name.to_string(),
        per_process,
        processes_total,
        task: task_bytes,
        ratio: processes_total as f64 / task_bytes.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_flowc::parse_process;

    #[test]
    fn counts_divisors_process() {
        let p = parse_process(qss_flowc::examples::DIVISORS).unwrap();
        let counts = process_counts(&p);
        // READ_DATA + 3 WRITE_DATA.
        assert_eq!(counts.comm_ops, 4);
        // while(1), while(n%i!=0), while(i>1), if(n%i==0).
        assert_eq!(counts.conditionals, 4);
        assert!(counts.statements >= 3);
    }

    #[test]
    fn inlined_primitives_are_larger() {
        let p = parse_process(qss_flowc::examples::DIVISORS).unwrap();
        let model = CodeCostModel::unoptimized();
        assert!(process_size(&p, &model, true) > process_size(&p, &model, false));
    }

    #[test]
    fn optimisation_reduces_process_size() {
        let p = parse_process(qss_flowc::examples::DIVISORS).unwrap();
        assert!(
            process_size(&p, &CodeCostModel::unoptimized(), true)
                > process_size(&p, &CodeCostModel::optimized2(), true)
        );
    }
}
