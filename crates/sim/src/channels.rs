//! FIFO channel state shared by the executors.
//!
//! Every channel place (and every environment input port place) is backed
//! by a FIFO of data values. The multi-task executor additionally enforces
//! per-channel capacities: a write blocks when it would overflow the
//! buffer, which is what makes small buffers expensive in Figure 20.

use qss_flowc::LinkedSystem;
use qss_petri::PlaceId;
use std::collections::{BTreeMap, VecDeque};

/// FIFO queues for the data carried by channel and port places.
#[derive(Debug, Clone, Default)]
pub struct ChannelState {
    queues: BTreeMap<PlaceId, VecDeque<i64>>,
    capacities: BTreeMap<PlaceId, usize>,
}

impl ChannelState {
    /// Creates the channel state for a linked system. If `capacity` is
    /// given, every inter-process channel gets that capacity (environment
    /// ports are unbounded); declared channel bounds override it.
    pub fn for_system(system: &LinkedSystem, capacity: Option<u32>) -> Self {
        let mut state = ChannelState::default();
        for channel in &system.channels {
            state.queues.insert(channel.place, VecDeque::new());
            let cap = channel.bound.or(capacity);
            if let Some(c) = cap {
                state.capacities.insert(channel.place, c as usize);
            }
        }
        for input in &system.env_inputs {
            state.queues.insert(input.place, VecDeque::new());
        }
        for output in &system.env_outputs {
            state.queues.insert(output.place, VecDeque::new());
        }
        state
    }

    /// Number of queued items at `place`.
    pub fn len(&self, place: PlaceId) -> usize {
        self.queues.get(&place).map(|q| q.len()).unwrap_or(0)
    }

    /// Returns `true` if no place holds any queued data.
    pub fn is_empty(&self) -> bool {
        self.queues.values().all(|q| q.is_empty())
    }

    /// The configured capacity of `place`, if bounded.
    pub fn capacity(&self, place: PlaceId) -> Option<usize> {
        self.capacities.get(&place).copied()
    }

    /// Returns `true` if `n` more items fit into `place`.
    pub fn can_accept(&self, place: PlaceId, n: usize) -> bool {
        match self.capacity(place) {
            Some(cap) => self.len(place) + n <= cap,
            None => true,
        }
    }

    /// Appends values to the queue of `place`.
    pub fn push(&mut self, place: PlaceId, values: &[i64]) {
        self.queues
            .entry(place)
            .or_default()
            .extend(values.iter().copied());
    }

    /// Removes and returns `n` values from the queue of `place`; returns
    /// `None` if fewer than `n` values are available.
    pub fn pop(&mut self, place: PlaceId, n: usize) -> Option<Vec<i64>> {
        let queue = self.queues.entry(place).or_default();
        if queue.len() < n {
            return None;
        }
        Some(queue.drain(..n).collect())
    }

    /// Drains the whole queue of `place`.
    pub fn drain(&mut self, place: PlaceId) -> Vec<i64> {
        self.queues.entry(place).or_default().drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_and_capacity() {
        let mut state = ChannelState::default();
        let p = PlaceId::new(0);
        state.capacities.insert(p, 3);
        assert!(state.can_accept(p, 3));
        state.push(p, &[1, 2, 3]);
        assert!(!state.can_accept(p, 1));
        assert_eq!(state.len(p), 3);
        assert_eq!(state.pop(p, 2), Some(vec![1, 2]));
        assert_eq!(state.pop(p, 2), None);
        assert_eq!(state.drain(p), vec![3]);
        assert!(state.is_empty());
    }

    #[test]
    fn unbounded_place_accepts_everything() {
        let mut state = ChannelState::default();
        let p = PlaceId::new(1);
        assert!(state.can_accept(p, 1_000));
        state.push(p, &[0; 100]);
        assert_eq!(state.len(p), 100);
        assert_eq!(state.capacity(p), None);
    }
}
