//! The PFC video application of Sec. 8.2, written in FlowC.
//!
//! Four processes: a `producer` generating frames of pixels, a `filter`
//! scaling them by a coefficient, a `consumer` accumulating the filtered
//! frame, and a soft real-time `controller` triggered by the only
//! uncontrollable input `init`. Pixels travel one by one; end-of-frame is
//! signalled with dedicated `done` channels and consumed through `SELECT`,
//! the schedulable idiom of Sec. 7.2; coefficients are read through
//! `SELECT` only when available, otherwise the previous frame's
//! coefficient is reused — exactly the behaviour described in the paper.
//!
//! The authors' original FlowC sources are not public; this
//! re-implementation preserves the structure the paper describes (process
//! topology, uncontrollable `init` trigger, per-pixel data path, per-frame
//! coefficient path, 10×10-pixel frames) so that the scheduling and cost
//! behaviour match.

use crate::report::EnvEvent;
use qss_flowc::{link, parse_process, LinkedSystem, SystemSpec};
use serde::{Deserialize, Serialize};

/// Parameters of the PFC workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PfcParams {
    /// Number of pixels per frame (the paper uses 10 lines × 10 pixels).
    pub pixels_per_frame: u32,
}

impl Default for PfcParams {
    fn default() -> Self {
        PfcParams {
            pixels_per_frame: 100,
        }
    }
}

impl PfcParams {
    /// A small frame size useful for fast unit tests.
    pub fn tiny() -> Self {
        PfcParams {
            pixels_per_frame: 4,
        }
    }
}

fn controller_source() -> String {
    r#"
PROCESS controller (In DPORT init, Out DPORT req, Out DPORT coeff, In DPORT ack) {
    int v, s;
    while (1) {
        READ_DATA(init, &v, 1);
        if (v % 2 == 0)
            WRITE_DATA(coeff, v + 2, 1);
        WRITE_DATA(req, v, 1);
        READ_DATA(ack, s, 1);
    }
}
"#
    .to_string()
}

fn producer_source(params: &PfcParams) -> String {
    format!(
        r#"
PROCESS producer (In DPORT req, Out DPORT pix, Out DPORT pdone) {{
    int r, i;
    while (1) {{
        READ_DATA(req, &r, 1);
        i = 0;
        while (i < {pixels}) {{
            WRITE_DATA(pix, r + i, 1);
            i++;
        }}
        WRITE_DATA(pdone, 0, 1);
    }}
}}
"#,
        pixels = params.pixels_per_frame
    )
}

fn filter_source() -> String {
    r#"
PROCESS filter (In DPORT pix, In DPORT pdone, In DPORT coeff, Out DPORT fpix, Out DPORT fdone) {
    int p, c, d;
    c = 1;
    while (1) {
        switch (SELECT(coeff, 1, pix, 1, pdone, 1)) {
            case 0: READ_DATA(coeff, c, 1); break;
            case 1: READ_DATA(pix, p, 1); WRITE_DATA(fpix, p * c, 1); break;
            case 2: READ_DATA(pdone, d, 1); WRITE_DATA(fdone, 0, 1); break;
        }
    }
}
"#
    .to_string()
}

fn consumer_source() -> String {
    r#"
PROCESS consumer (In DPORT fpix, In DPORT fdone, Out DPORT out, Out DPORT ack) {
    int q, s, d;
    while (1) {
        switch (SELECT(fpix, 1, fdone, 1)) {
            case 0: READ_DATA(fpix, q, 1); s = s + q; break;
            case 1: READ_DATA(fdone, d, 1); WRITE_DATA(out, s, 1); WRITE_DATA(ack, s, 1); s = 0; break;
        }
    }
}
"#
    .to_string()
}

/// Builds the PFC network specification.
///
/// # Panics
/// Panics only if the embedded FlowC sources fail to parse, which would be
/// a bug in this crate.
pub fn pfc_spec(params: &PfcParams) -> SystemSpec {
    let controller = parse_process(&controller_source()).expect("controller parses");
    let producer = parse_process(&producer_source(params)).expect("producer parses");
    let filter = parse_process(&filter_source()).expect("filter parses");
    let consumer = parse_process(&consumer_source()).expect("consumer parses");
    SystemSpec::new("pfc")
        .with_process(controller)
        .with_process(producer)
        .with_process(filter)
        .with_process(consumer)
        .with_channel("controller.req", "producer.req", None)
        .expect("req channel")
        .with_channel("controller.coeff", "filter.coeff", None)
        .expect("coeff channel")
        .with_channel("producer.pix", "filter.pix", None)
        .expect("pix channel")
        .with_channel("producer.pdone", "filter.pdone", None)
        .expect("pdone channel")
        .with_channel("filter.fpix", "consumer.fpix", None)
        .expect("fpix channel")
        .with_channel("filter.fdone", "consumer.fdone", None)
        .expect("fdone channel")
        .with_channel("consumer.ack", "controller.ack", None)
        .expect("ack channel")
}

/// Builds and links the PFC system.
///
/// # Errors
/// Propagates linking errors (none are expected for the embedded sources).
pub fn pfc_system(params: &PfcParams) -> qss_flowc::Result<LinkedSystem> {
    link(&pfc_spec(params))
}

/// The environment workload: `frames` occurrences of the `init` event,
/// with alternating even/odd frame identifiers so that the coefficient
/// path is exercised on every other frame.
pub fn pfc_events(frames: usize) -> Vec<EnvEvent> {
    (0..frames)
        .map(|i| EnvEvent::new("controller", "init", i as i64))
        .collect()
}

/// The reference output of the PFC application computed directly from its
/// semantics (used to check both executors): for frame `v`, every pixel is
/// `v + i` scaled by the coefficient in effect (`v + 2` on even frames,
/// carried over on odd frames), and the consumer outputs the frame sum.
pub fn pfc_expected_outputs(params: &PfcParams, frames: usize) -> Vec<i64> {
    let n = params.pixels_per_frame as i64;
    let mut coeff = 1i64;
    let mut outputs = Vec::new();
    for frame in 0..frames as i64 {
        if frame % 2 == 0 {
            coeff = frame + 2;
        }
        let sum: i64 = (0..n).map(|i| (frame + i) * coeff).sum();
        outputs.push(sum);
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_petri::EcsInfo;

    #[test]
    fn pfc_spec_validates_and_links() {
        let params = PfcParams::tiny();
        let spec = pfc_spec(&params);
        assert!(spec.validate().is_ok());
        let system = pfc_system(&params).unwrap();
        assert_eq!(system.process_names.len(), 4);
        assert_eq!(system.channels.len(), 7);
        // Exactly one uncontrollable input (init) and one environment
        // output (consumer.out).
        assert_eq!(system.uncontrollable_sources().len(), 1);
        assert_eq!(system.env_outputs.len(), 1);
        // SELECT makes the net non-Equal-Choice, as the paper notes.
        let ecs = EcsInfo::compute(&system.net);
        assert!(!ecs.is_equal_choice(&system.net));
    }

    #[test]
    fn workload_and_reference_outputs() {
        let events = pfc_events(3);
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].values, vec![2]);
        let expected = pfc_expected_outputs(&PfcParams::tiny(), 3);
        // frame 0: coeff 2, pixels 0..4 => (0+1+2+3)*2 = 12
        // frame 1: coeff 2, pixels 1..5 => (1+2+3+4)*2 = 20
        // frame 2: coeff 4, pixels 2..6 => (2+3+4+5)*4 = 56
        assert_eq!(expected, vec![12, 20, 56]);
    }

    #[test]
    fn frame_size_is_configurable() {
        let src = producer_source(&PfcParams {
            pixels_per_frame: 7,
        });
        assert!(src.contains("i < 7"));
        assert!(parse_process(&src).is_ok());
    }
}
