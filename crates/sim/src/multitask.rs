//! The multi-task baseline: one RTOS task per FlowC process.
//!
//! This is the implementation the paper compares against: every process of
//! the specification becomes a separate task, channels are bounded FIFO
//! buffers managed by the RTOS, and a round-robin scheduler runs each task
//! until it blocks on a read (not enough data) or a write (not enough
//! space). Context switches and RTOS communication primitives are charged
//! according to the cost model, which is what makes this implementation
//! 4–10× slower than the generated single task (Figure 20 / Table 1).

use crate::channels::ChannelState;
use crate::cost::CycleCostModel;
use crate::env::{ChannelIo, ExecCounters, ProcessEnv};
use crate::error::{Result, SimError};
use crate::report::{EnvEvent, SimReport};
use qss_flowc::LinkedSystem;
use qss_petri::{Marking, PlaceId, TransitionId, TransitionKind};
use std::collections::BTreeMap;

/// Configuration of the multi-task executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiTaskConfig {
    /// Capacity of every inter-process channel buffer (the x axis of
    /// Figure 20).
    pub buffer_size: u32,
    /// Cycle cost model (compiler-optimisation profile).
    pub cost: CycleCostModel,
    /// Model the communication primitives as inlined code (the paper's
    /// faster variant) instead of RTOS function calls.
    pub inline_communication: bool,
    /// Safety bound on the number of fired transitions.
    pub max_steps: u64,
}

impl MultiTaskConfig {
    /// A configuration with the given buffer size and cost profile.
    pub fn new(buffer_size: u32, cost: CycleCostModel) -> Self {
        MultiTaskConfig {
            buffer_size,
            cost,
            inline_communication: true,
            max_steps: 200_000_000,
        }
    }
}

/// Runs the system as one task per process under a round-robin RTOS.
///
/// # Errors
/// Returns [`SimError`] on deadlock (e.g. a multi-rate write larger than
/// the configured buffers), unknown event ports, or when the step budget
/// is exhausted.
pub fn run_multitask(
    system: &LinkedSystem,
    events: &[EnvEvent],
    config: &MultiTaskConfig,
) -> Result<SimReport> {
    let mut sim = MultiSim::new(system, config);
    sim.run(events)?;
    Ok(sim.report)
}

/// Data movement context handed to the statement interpreter.
struct IoCtx<'a> {
    system: &'a LinkedSystem,
    channels: &'a mut ChannelState,
    report: &'a mut SimReport,
}

impl<'a> ChannelIo for IoCtx<'a> {
    fn read_port(&mut self, process: &str, port: &str, n: u32) -> Result<Vec<i64>> {
        let place = self
            .system
            .port_place(process, port)
            .ok_or_else(|| SimError::UnknownPort(format!("{process}.{port}")))?;
        self.channels.pop(place, n as usize).ok_or_else(|| {
            SimError::Deadlock(format!(
                "read of {n} items from `{process}.{port}` with insufficient data"
            ))
        })
    }

    fn write_port(&mut self, process: &str, port: &str, values: &[i64]) -> Result<()> {
        let place = self
            .system
            .port_place(process, port)
            .ok_or_else(|| SimError::UnknownPort(format!("{process}.{port}")))?;
        if self.system.env_output(process, port).is_some() {
            for v in values {
                self.report.record_output(process, port, *v);
            }
        } else {
            self.channels.push(place, values);
        }
        Ok(())
    }
}

struct MultiSim<'a> {
    system: &'a LinkedSystem,
    config: &'a MultiTaskConfig,
    marking: Marking,
    envs: BTreeMap<String, ProcessEnv>,
    channels: ChannelState,
    report: SimReport,
    steps: u64,
}

impl<'a> MultiSim<'a> {
    fn new(system: &'a LinkedSystem, config: &'a MultiTaskConfig) -> Self {
        let envs = system
            .process_names
            .iter()
            .map(|name| {
                let decls = system.declarations.get(name).cloned().unwrap_or_default();
                (name.clone(), ProcessEnv::new(name.clone(), &decls))
            })
            .collect();
        MultiSim {
            system,
            config,
            marking: system.net.initial_marking(),
            envs,
            channels: ChannelState::for_system(system, Some(config.buffer_size)),
            report: SimReport::default(),
            steps: 0,
        }
    }

    fn run(&mut self, events: &[EnvEvent]) -> Result<()> {
        // Run the per-process initialisation code once, as the start-up
        // phase outside the cyclic schedules.
        self.run_init_code()?;
        let order = self.system.process_names.clone();
        let mut current = 0usize;
        let mut next_event = 0usize;
        loop {
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return Err(SimError::StepBudgetExhausted(self.config.max_steps));
            }
            if let Some(t) = self.pick_runnable(&order[current]) {
                self.fire(t)?;
                self.drain_sinks();
                continue;
            }
            // The current task is blocked: look for another runnable task.
            let mut switched = false;
            for offset in 1..order.len() {
                let candidate = (current + offset) % order.len();
                if self.pick_runnable(&order[candidate]).is_some() {
                    self.report.context_switches += 1;
                    self.report.dispatches += 1;
                    self.report.cycles += self.config.cost.cycles_per_context_switch
                        + self.config.cost.cycles_per_dispatch;
                    current = candidate;
                    switched = true;
                    break;
                }
            }
            if switched {
                continue;
            }
            // Nothing can run anywhere: deliver the next environment event.
            if next_event < events.len() {
                self.inject(&events[next_event])?;
                next_event += 1;
                continue;
            }
            break;
        }
        Ok(())
    }

    fn run_init_code(&mut self) -> Result<()> {
        for process in &self.system.process_names.clone() {
            let Some(init) = self.system.init_code.get(process).cloned() else {
                continue;
            };
            if init.is_empty() {
                continue;
            }
            let mut counters = ExecCounters::default();
            let mut env = self
                .envs
                .remove(process)
                .expect("every process has an environment");
            let mut io = IoCtx {
                system: self.system,
                channels: &mut self.channels,
                report: &mut self.report,
            };
            let result = env.exec_stmts(&init, &mut io, &mut counters);
            self.envs.insert(process.clone(), env);
            result?;
            self.charge(&counters, false);
        }
        Ok(())
    }

    /// The next transition of `process` that can fire, if any: it must be
    /// enabled in the net, its guard must hold, and its writes must fit
    /// into the channel buffers. SELECT arms are prioritised as declared.
    fn pick_runnable(&self, process: &str) -> Option<TransitionId> {
        let mut candidates: Vec<(u32, TransitionId)> = Vec::new();
        for (&t, code) in &self.system.transition_code {
            if code.process != process {
                continue;
            }
            if !self.system.net.is_enabled(t, &self.marking) {
                continue;
            }
            if let Some((expr, branch)) = &code.guard {
                let env = &self.envs[process];
                match env.eval_guard(expr) {
                    Ok(value) if value == *branch => {}
                    _ => continue,
                }
            }
            if !self.writes_fit(t) {
                continue;
            }
            let priority = code.select.as_ref().map(|(_, _, p)| *p).unwrap_or(0);
            candidates.push((priority, t));
        }
        candidates.sort();
        candidates.first().map(|(_, t)| *t)
    }

    /// Checks the blocking-write rule: the net data increase on every
    /// bounded channel place must fit in the remaining buffer space.
    fn writes_fit(&self, t: TransitionId) -> bool {
        let net = &self.system.net;
        let mut delta: BTreeMap<PlaceId, i64> = BTreeMap::new();
        for (p, w) in net.postset(t) {
            *delta.entry(*p).or_insert(0) += *w as i64;
        }
        for (p, w) in net.preset(t) {
            *delta.entry(*p).or_insert(0) -= *w as i64;
        }
        delta.iter().all(|(p, d)| {
            if *d <= 0 || self.system.channel_by_place(*p).is_none() {
                true
            } else {
                self.channels.can_accept(*p, *d as usize)
            }
        })
    }

    fn fire(&mut self, t: TransitionId) -> Result<()> {
        self.marking = self
            .system
            .net
            .fire(t, &self.marking)
            .map_err(|e| SimError::Schedule(e.to_string()))?;
        self.report.transitions_fired += 1;
        let Some(code) = self.system.transition_code.get(&t).cloned() else {
            return Ok(());
        };
        let mut counters = ExecCounters::default();
        if code.guard.is_some() {
            counters.conditions += 1;
        }
        let mut env = self
            .envs
            .remove(&code.process)
            .expect("every process has an environment");
        let mut io = IoCtx {
            system: self.system,
            channels: &mut self.channels,
            report: &mut self.report,
        };
        let result = env.exec_stmts(&code.stmts, &mut io, &mut counters);
        self.envs.insert(code.process.clone(), env);
        result?;
        self.charge(&counters, true);
        Ok(())
    }

    /// Charges the cost of one executed fragment.
    fn charge(&mut self, counters: &ExecCounters, rtos_comm: bool) {
        let cost = &self.config.cost;
        let mut cycles = counters.statements * cost.cycles_per_statement
            + counters.conditions * cost.cycles_per_condition;
        if rtos_comm {
            let mut comm = counters.port_ops * cost.cycles_per_rtos_call
                + counters.port_items * cost.cycles_per_rtos_item;
            if self.config.inline_communication {
                // Inlining the primitives removes the call overhead
                // (roughly the 30% improvement reported in Sec. 8.2).
                comm = comm * 7 / 10;
            }
            cycles += comm;
        } else {
            cycles += counters.port_items * cost.cycles_per_inline_item;
        }
        self.report.cycles += cycles;
        self.report.channel_ops += counters.port_ops;
    }

    /// Fires every enabled environment sink transition (the environment is
    /// always ready to accept outputs) and discards the drained tokens.
    fn drain_sinks(&mut self) {
        loop {
            let mut fired = false;
            for output in &self.system.env_outputs {
                let t = output.sink;
                if self.system.net.transition(t).kind == TransitionKind::Sink
                    && self.system.net.is_enabled(t, &self.marking)
                {
                    self.marking = self.system.net.fire_unchecked(t, &self.marking);
                    self.channels.drain(output.place);
                    fired = true;
                }
            }
            if !fired {
                break;
            }
        }
    }

    fn inject(&mut self, event: &EnvEvent) -> Result<()> {
        let input = self
            .system
            .env_input(&event.process, &event.port)
            .ok_or_else(|| SimError::UnknownPort(format!("{}.{}", event.process, event.port)))?
            .clone();
        if !self.system.net.is_enabled(input.source, &self.marking) {
            return Err(SimError::Deadlock(format!(
                "environment source for `{}.{}` is not enabled",
                event.process, event.port
            )));
        }
        self.marking = self.system.net.fire_unchecked(input.source, &self.marking);
        let mut values = event.values.clone();
        values.resize(input.rate as usize, 0);
        self.channels.push(input.place, &values);
        self.report.cycles += self.config.cost.cycles_per_event;
        self.report.events_processed += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfc::{pfc_events, pfc_expected_outputs, pfc_system, PfcParams};
    use qss_flowc::{parse_process, SystemSpec};

    fn pipeline_system() -> LinkedSystem {
        let producer = parse_process(
            "PROCESS producer (In DPORT trigger, Out DPORT data) {
                 int t;
                 while (1) {
                     READ_DATA(trigger, t, 1);
                     WRITE_DATA(data, t * 2, 1);
                 }
             }",
        )
        .unwrap();
        let consumer = parse_process(
            "PROCESS consumer (In DPORT data, Out DPORT sum) {
                 int x, s;
                 while (1) {
                     READ_DATA(data, x, 1);
                     s = s + x;
                     WRITE_DATA(sum, s, 1);
                 }
             }",
        )
        .unwrap();
        let spec = SystemSpec::new("pipeline")
            .with_process(producer)
            .with_process(consumer)
            .with_channel("producer.data", "consumer.data", None)
            .unwrap();
        qss_flowc::link(&spec).unwrap()
    }

    #[test]
    fn pipeline_functional_output() {
        let system = pipeline_system();
        let events: Vec<EnvEvent> = (1..=4)
            .map(|i| EnvEvent::new("producer", "trigger", i))
            .collect();
        let config = MultiTaskConfig::new(4, CycleCostModel::unoptimized());
        let report = run_multitask(&system, &events, &config).unwrap();
        // Running sums of 2, 4, 6, 8.
        assert_eq!(report.output("consumer", "sum"), &[2, 6, 12, 20]);
        assert_eq!(report.events_processed, 4);
        assert!(report.cycles > 0);
        assert!(report.context_switches >= 4);
    }

    #[test]
    fn pfc_multitask_matches_reference_outputs() {
        let params = PfcParams::tiny();
        let system = pfc_system(&params).unwrap();
        let events = pfc_events(4);
        let config = MultiTaskConfig::new(8, CycleCostModel::unoptimized());
        let report = run_multitask(&system, &events, &config).unwrap();
        assert_eq!(
            report.output("consumer", "out"),
            pfc_expected_outputs(&params, 4).as_slice()
        );
        assert!(report.context_switches > 0);
    }

    #[test]
    fn smaller_buffers_cause_more_context_switches() {
        let params = PfcParams::tiny();
        let system = pfc_system(&params).unwrap();
        let events = pfc_events(3);
        let small = run_multitask(
            &system,
            &events,
            &MultiTaskConfig::new(1, CycleCostModel::unoptimized()),
        )
        .unwrap();
        let large = run_multitask(
            &system,
            &events,
            &MultiTaskConfig::new(16, CycleCostModel::unoptimized()),
        )
        .unwrap();
        assert_eq!(
            small.output("consumer", "out"),
            large.output("consumer", "out")
        );
        assert!(small.context_switches > large.context_switches);
        assert!(small.cycles > large.cycles);
    }

    #[test]
    fn optimization_profiles_reduce_cycles() {
        let params = PfcParams::tiny();
        let system = pfc_system(&params).unwrap();
        let events = pfc_events(2);
        let o0 = run_multitask(
            &system,
            &events,
            &MultiTaskConfig::new(8, CycleCostModel::unoptimized()),
        )
        .unwrap();
        let o2 = run_multitask(
            &system,
            &events,
            &MultiTaskConfig::new(8, CycleCostModel::optimized2()),
        )
        .unwrap();
        assert!(o0.cycles > o2.cycles);
        assert_eq!(o0.output("consumer", "out"), o2.output("consumer", "out"));
    }

    #[test]
    fn unknown_event_port_is_rejected() {
        let system = pipeline_system();
        let events = vec![EnvEvent::new("producer", "missing", 1)];
        let config = MultiTaskConfig::new(4, CycleCostModel::unoptimized());
        assert!(matches!(
            run_multitask(&system, &events, &config),
            Err(SimError::UnknownPort(_))
        ));
    }
}
