//! Execution and cost-model substrate for the QSS reproduction.
//!
//! The paper evaluates its synthesis flow on an R3000 workstation running
//! a multimedia application (producer / filter / consumer / controller,
//! "PFC"), comparing the single generated task against the naive
//! implementation in which every FlowC process becomes its own RTOS task.
//! We do not have that testbed, so this crate provides a deterministic
//! substitute:
//!
//! * a cycle-count **cost model** ([`cost::CycleCostModel`]) with three
//!   profiles standing in for the `pfc`, `pfc-O` and `pfc-O2` compiler
//!   options,
//! * a **multi-task executor** ([`multitask`]) that interprets the linked
//!   Petri net process by process under a round-robin RTOS with bounded
//!   FIFO channels, charging context switches and RTOS communication
//!   calls,
//! * a **single-task executor** ([`singletask`]) that drives the system
//!   through its quasi-static schedule, charging only the inlined
//!   communication of the generated task,
//! * the **PFC application** itself, written in FlowC ([`pfc`]), together
//!   with a frame-based workload generator,
//! * a **code-size model** ([`codesize`]) reproducing the Table 2
//!   comparison.
//!
//! Both executors compute the values written to the environment output
//! ports, so functional equivalence of the two implementations can be
//! asserted — the role VCC simulation played in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channels;
pub mod codesize;
pub mod cost;
pub mod env;
pub mod error;
pub mod multitask;
pub mod pfc;
pub mod report;
pub mod singletask;

pub use channels::ChannelState;
pub use codesize::{process_network_size, size_report, task_size, SizeReport};
pub use cost::CycleCostModel;
pub use env::{ChannelIo, ProcessEnv};
pub use error::{Result, SimError};
pub use multitask::{run_multitask, MultiTaskConfig};
pub use pfc::{pfc_events, pfc_expected_outputs, pfc_spec, pfc_system, PfcParams};
pub use report::{EnvEvent, SimReport};
pub use singletask::{run_singletask, SingleTaskConfig};
