//! The single-task executor: running the system through its quasi-static
//! schedules.
//!
//! Each reaction to an environment event traverses the corresponding
//! schedule from its current await node to the next await node, executing
//! the code attached to the traversed transitions. Data-dependent choices
//! are resolved by evaluating the guards against the live process
//! variables — the only run-time decisions left by the scheduler. There
//! are no context switches and intra-task channels are plain buffer
//! copies, which is where the 4–10× advantage over the multi-task baseline
//! comes from.

use crate::channels::ChannelState;
use crate::cost::CycleCostModel;
use crate::env::{ChannelIo, ExecCounters, ProcessEnv};
use crate::error::{Result, SimError};
use crate::report::{EnvEvent, SimReport};
use qss_core::{NodeId, Schedule};
use qss_flowc::LinkedSystem;
use qss_petri::TransitionId;
use std::collections::BTreeMap;

/// Configuration of the single-task executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleTaskConfig {
    /// Cycle cost model (compiler-optimisation profile).
    pub cost: CycleCostModel,
    /// Safety bound on the number of traversed schedule edges.
    pub max_steps: u64,
}

impl SingleTaskConfig {
    /// A configuration with the given cost profile.
    pub fn new(cost: CycleCostModel) -> Self {
        SingleTaskConfig {
            cost,
            max_steps: 200_000_000,
        }
    }
}

/// Runs the system as generated tasks driven by `schedules`.
///
/// # Errors
/// Returns [`SimError`] if an event has no schedule, a data-dependent
/// choice cannot be resolved, or the step budget is exhausted.
pub fn run_singletask(
    system: &LinkedSystem,
    schedules: &[Schedule],
    events: &[EnvEvent],
    config: &SingleTaskConfig,
) -> Result<SimReport> {
    let mut sim = SingleSim::new(system, schedules, config);
    sim.run(events)?;
    Ok(sim.report)
}

struct IoCtx<'a> {
    system: &'a LinkedSystem,
    channels: &'a mut ChannelState,
    report: &'a mut SimReport,
    /// Items moved through environment ports (charged at RTOS cost, since
    /// they still cross the task boundary).
    env_items: u64,
    env_ops: u64,
}

impl<'a> ChannelIo for IoCtx<'a> {
    fn read_port(&mut self, process: &str, port: &str, n: u32) -> Result<Vec<i64>> {
        let place = self
            .system
            .port_place(process, port)
            .ok_or_else(|| SimError::UnknownPort(format!("{process}.{port}")))?;
        if self.system.env_input(process, port).is_some() {
            self.env_ops += 1;
            self.env_items += n as u64;
        }
        self.channels.pop(place, n as usize).ok_or_else(|| {
            SimError::Schedule(format!(
                "schedule read {n} items from `{process}.{port}` but the buffer is empty"
            ))
        })
    }

    fn write_port(&mut self, process: &str, port: &str, values: &[i64]) -> Result<()> {
        let place = self
            .system
            .port_place(process, port)
            .ok_or_else(|| SimError::UnknownPort(format!("{process}.{port}")))?;
        if self.system.env_output(process, port).is_some() {
            self.env_ops += 1;
            self.env_items += values.len() as u64;
            for v in values {
                self.report.record_output(process, port, *v);
            }
        } else {
            self.channels.push(place, values);
        }
        Ok(())
    }
}

struct SingleSim<'a> {
    system: &'a LinkedSystem,
    schedules: &'a [Schedule],
    config: &'a SingleTaskConfig,
    envs: BTreeMap<String, ProcessEnv>,
    channels: ChannelState,
    positions: Vec<NodeId>,
    report: SimReport,
    steps: u64,
}

impl<'a> SingleSim<'a> {
    fn new(
        system: &'a LinkedSystem,
        schedules: &'a [Schedule],
        config: &'a SingleTaskConfig,
    ) -> Self {
        let envs = system
            .process_names
            .iter()
            .map(|name| {
                let decls = system.declarations.get(name).cloned().unwrap_or_default();
                (name.clone(), ProcessEnv::new(name.clone(), &decls))
            })
            .collect();
        SingleSim {
            system,
            schedules,
            config,
            envs,
            channels: ChannelState::for_system(system, None),
            positions: schedules.iter().map(|s| s.root()).collect(),
            report: SimReport::default(),
            steps: 0,
        }
    }

    fn run(&mut self, events: &[EnvEvent]) -> Result<()> {
        self.run_init_code()?;
        for event in events {
            self.react(event)?;
        }
        Ok(())
    }

    fn run_init_code(&mut self) -> Result<()> {
        for process in &self.system.process_names.clone() {
            let Some(init) = self.system.init_code.get(process).cloned() else {
                continue;
            };
            if init.is_empty() {
                continue;
            }
            let mut counters = ExecCounters::default();
            self.exec_in_process(process, &init, &mut counters)?;
            self.charge(&counters, 0, 0);
        }
        Ok(())
    }

    fn exec_in_process(
        &mut self,
        process: &str,
        stmts: &[qss_flowc::Stmt],
        counters: &mut ExecCounters,
    ) -> Result<(u64, u64)> {
        let mut env = self
            .envs
            .remove(process)
            .ok_or_else(|| SimError::Schedule(format!("unknown process `{process}`")))?;
        let mut io = IoCtx {
            system: self.system,
            channels: &mut self.channels,
            report: &mut self.report,
            env_items: 0,
            env_ops: 0,
        };
        let result = env.exec_stmts(stmts, &mut io, counters);
        let env_stats = (io.env_ops, io.env_items);
        self.envs.insert(process.to_string(), env);
        result?;
        Ok(env_stats)
    }

    fn charge(&mut self, counters: &ExecCounters, env_ops: u64, env_items: u64) {
        let cost = &self.config.cost;
        let intra_items = counters.port_items.saturating_sub(env_items);
        let cycles = counters.statements * cost.cycles_per_statement
            + counters.conditions * cost.cycles_per_condition
            + intra_items * cost.cycles_per_inline_item
            + env_ops * cost.cycles_per_rtos_call
            + env_items * cost.cycles_per_rtos_item;
        self.report.cycles += cycles;
        self.report.channel_ops += counters.port_ops;
    }

    /// Reacts to one environment event by traversing the schedule of the
    /// corresponding uncontrollable source.
    fn react(&mut self, event: &EnvEvent) -> Result<()> {
        let input = self
            .system
            .env_input(&event.process, &event.port)
            .ok_or_else(|| SimError::UnknownPort(format!("{}.{}", event.process, event.port)))?
            .clone();
        let index = self
            .schedules
            .iter()
            .position(|s| s.source() == input.source)
            .ok_or_else(|| {
                SimError::Schedule(format!(
                    "no schedule serves the uncontrollable input `{}.{}`",
                    event.process, event.port
                ))
            })?;
        // Latch the input values and charge the ISR entry.
        let mut values = event.values.clone();
        values.resize(input.rate as usize, 0);
        self.channels.push(input.place, &values);
        self.report.cycles += self.config.cost.cycles_per_event;
        self.report.events_processed += 1;

        let schedule = &self.schedules[index];
        let mut node = self.positions[index];
        // First edge: the source transition itself (no code attached).
        let (first, target) = schedule
            .edges(node)
            .iter()
            .find(|(t, _)| *t == schedule.source())
            .copied()
            .ok_or_else(|| {
                SimError::Schedule("schedule is not resting at one of its await nodes".into())
            })?;
        debug_assert_eq!(first, schedule.source());
        node = target;
        self.report.transitions_fired += 1;

        // Traverse until the next await node.
        while !schedule.is_await_node(&self.system.net, node) {
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return Err(SimError::StepBudgetExhausted(self.config.max_steps));
            }
            let edges = schedule.edges(node);
            let (transition, next) = if edges.len() == 1 {
                edges[0]
            } else {
                self.resolve_choice(edges)?
            };
            self.execute_transition(transition)?;
            node = next;
        }
        self.positions[index] = node;
        Ok(())
    }

    /// Resolves a data-dependent choice by evaluating the guards of the
    /// candidate transitions against the live process variables.
    fn resolve_choice(&self, edges: &[(TransitionId, NodeId)]) -> Result<(TransitionId, NodeId)> {
        for (t, target) in edges {
            let Some(code) = self.system.transition_code.get(t) else {
                continue;
            };
            let Some((expr, branch)) = &code.guard else {
                continue;
            };
            let env = self
                .envs
                .get(&code.process)
                .ok_or_else(|| SimError::Schedule(format!("unknown process `{}`", code.process)))?;
            if env.eval_guard(expr)? == *branch {
                return Ok((*t, *target));
            }
        }
        Err(SimError::Schedule(
            "no guard of a data-dependent choice evaluated to true".into(),
        ))
    }

    fn execute_transition(&mut self, t: TransitionId) -> Result<()> {
        self.report.transitions_fired += 1;
        let Some(code) = self.system.transition_code.get(&t).cloned() else {
            // Environment source/sink transitions carry no code.
            return Ok(());
        };
        let mut counters = ExecCounters::default();
        if code.guard.is_some() {
            counters.conditions += 1;
        }
        let (env_ops, env_items) =
            self.exec_in_process(&code.process, &code.stmts, &mut counters)?;
        self.charge(&counters, env_ops, env_items);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multitask::{run_multitask, MultiTaskConfig};
    use crate::pfc::{pfc_events, pfc_expected_outputs, pfc_system, PfcParams};
    use qss_core::{schedule_system, ScheduleOptions};
    use qss_flowc::{parse_process, SystemSpec};

    fn pipeline_system() -> LinkedSystem {
        let producer = parse_process(
            "PROCESS producer (In DPORT trigger, Out DPORT data) {
                 int t;
                 while (1) {
                     READ_DATA(trigger, t, 1);
                     WRITE_DATA(data, t * 2, 1);
                 }
             }",
        )
        .unwrap();
        let consumer = parse_process(
            "PROCESS consumer (In DPORT data, Out DPORT sum) {
                 int x, s;
                 while (1) {
                     READ_DATA(data, x, 1);
                     s = s + x;
                     WRITE_DATA(sum, s, 1);
                 }
             }",
        )
        .unwrap();
        let spec = SystemSpec::new("pipeline")
            .with_process(producer)
            .with_process(consumer)
            .with_channel("producer.data", "consumer.data", None)
            .unwrap();
        qss_flowc::link(&spec).unwrap()
    }

    #[test]
    fn pipeline_single_task_matches_multitask() {
        let system = pipeline_system();
        let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
        let events: Vec<EnvEvent> = (1..=5)
            .map(|i| EnvEvent::new("producer", "trigger", i))
            .collect();
        let single = run_singletask(
            &system,
            &schedules.schedules,
            &events,
            &SingleTaskConfig::new(CycleCostModel::unoptimized()),
        )
        .unwrap();
        let multi = run_multitask(
            &system,
            &events,
            &MultiTaskConfig::new(4, CycleCostModel::unoptimized()),
        )
        .unwrap();
        assert_eq!(single.outputs, multi.outputs);
        assert_eq!(single.context_switches, 0);
        assert!(single.cycles < multi.cycles);
    }

    #[test]
    fn pfc_single_task_is_functionally_correct_and_faster() {
        let params = PfcParams::tiny();
        let system = pfc_system(&params).unwrap();
        let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
        let events = pfc_events(4);
        let single = run_singletask(
            &system,
            &schedules.schedules,
            &events,
            &SingleTaskConfig::new(CycleCostModel::unoptimized()),
        )
        .unwrap();
        assert_eq!(
            single.output("consumer", "out"),
            pfc_expected_outputs(&params, 4).as_slice()
        );
        let multi = run_multitask(
            &system,
            &events,
            &MultiTaskConfig::new(8, CycleCostModel::unoptimized()),
        )
        .unwrap();
        assert_eq!(single.outputs, multi.outputs);
        // The headline claim: the generated task is several times faster.
        assert!(multi.cycles > 2 * single.cycles);
    }

    #[test]
    fn event_without_schedule_is_rejected() {
        let system = pipeline_system();
        let events = vec![EnvEvent::new("producer", "trigger", 1)];
        let err = run_singletask(
            &system,
            &[],
            &events,
            &SingleTaskConfig::new(CycleCostModel::unoptimized()),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Schedule(_)));
    }
}
