//! Per-process variable environments and FlowC statement execution.

use crate::error::{Result, SimError};
use qss_flowc::{BinOp, Expr, LValue, PortOp, Stmt, UnOp};
use std::collections::BTreeMap;

/// Callback used by the interpreter to move data through ports. The
/// executor implementing it decides whether the port is an intra-task
/// buffer, an inter-task channel or an environment port, and charges the
/// corresponding communication cost.
pub trait ChannelIo {
    /// Reads `n` items from `port` of `process`.
    ///
    /// # Errors
    /// Returns an error if the data is not available (the executors only
    /// execute a read when the firing rule guarantees availability, so this
    /// indicates an internal inconsistency).
    fn read_port(&mut self, process: &str, port: &str, n: u32) -> Result<Vec<i64>>;

    /// Writes `values` to `port` of `process`.
    ///
    /// # Errors
    /// Returns an error if the channel cannot accept the data.
    fn write_port(&mut self, process: &str, port: &str, values: &[i64]) -> Result<()>;
}

/// Counters accumulated while executing statements (used by the cost
/// models).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Plain statements executed (assignments, expression statements).
    pub statements: u64,
    /// Conditions evaluated (`if`, `while` tests).
    pub conditions: u64,
    /// Port operations executed.
    pub port_ops: u64,
    /// Items moved through ports.
    pub port_items: u64,
}

impl ExecCounters {
    /// Adds another set of counters to this one.
    pub fn add(&mut self, other: &ExecCounters) {
        self.statements += other.statements;
        self.conditions += other.conditions;
        self.port_ops += other.port_ops;
        self.port_items += other.port_items;
    }
}

/// Safety bound on loop iterations inside a single code fragment.
const MAX_LOOP_ITERATIONS: u64 = 10_000_000;

/// The variables of one FlowC process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessEnv {
    process: String,
    scalars: BTreeMap<String, i64>,
    arrays: BTreeMap<String, Vec<i64>>,
}

impl ProcessEnv {
    /// Creates an environment for `process` with the given declarations,
    /// all initialised to zero.
    pub fn new(process: impl Into<String>, declarations: &[(String, Option<u32>)]) -> Self {
        let mut env = ProcessEnv {
            process: process.into(),
            scalars: BTreeMap::new(),
            arrays: BTreeMap::new(),
        };
        for (name, size) in declarations {
            match size {
                Some(s) => {
                    env.arrays.insert(name.clone(), vec![0; *s as usize]);
                }
                None => {
                    env.scalars.insert(name.clone(), 0);
                }
            }
        }
        env
    }

    /// Name of the owning process.
    pub fn process(&self) -> &str {
        &self.process
    }

    /// Current value of a scalar variable (0 if never written).
    pub fn get(&self, name: &str) -> i64 {
        self.scalars.get(name).copied().unwrap_or(0)
    }

    /// Sets a scalar variable.
    pub fn set(&mut self, name: &str, value: i64) {
        self.scalars.insert(name.to_string(), value);
    }

    /// Current contents of an array variable.
    pub fn array(&self, name: &str) -> Option<&[i64]> {
        self.arrays.get(name).map(|v| v.as_slice())
    }

    fn array_get(&self, name: &str, index: i64) -> Result<i64> {
        let arr = self.arrays.get(name).ok_or_else(|| {
            SimError::Evaluation(format!(
                "`{name}` is not an array in process {}",
                self.process
            ))
        })?;
        arr.get(index as usize).copied().ok_or_else(|| {
            SimError::Evaluation(format!(
                "index {index} out of bounds for `{name}[{}]`",
                arr.len()
            ))
        })
    }

    fn array_set(&mut self, name: &str, index: i64, value: i64) -> Result<()> {
        let process = self.process.clone();
        let arr = self.arrays.get_mut(name).ok_or_else(|| {
            SimError::Evaluation(format!("`{name}` is not an array in process {process}"))
        })?;
        let len = arr.len();
        let slot = arr.get_mut(index as usize).ok_or_else(|| {
            SimError::Evaluation(format!("index {index} out of bounds for `{name}[{len}]`"))
        })?;
        *slot = value;
        Ok(())
    }

    /// Evaluates an expression.
    ///
    /// # Errors
    /// Returns [`SimError::Evaluation`] on division by zero or bad array
    /// accesses.
    pub fn eval(&self, expr: &Expr) -> Result<i64> {
        match expr {
            Expr::Int(v) => Ok(*v),
            Expr::Var(name) => Ok(self.get(name)),
            Expr::Index(name, index) => {
                let i = self.eval(index)?;
                self.array_get(name, i)
            }
            Expr::Unary(UnOp::Neg, e) => Ok(-self.eval(e)?),
            Expr::Unary(UnOp::Not, e) => Ok((self.eval(e)? == 0) as i64),
            Expr::Binary(op, a, b) => {
                let a = self.eval(a)?;
                let b = self.eval(b)?;
                match op {
                    BinOp::Add => Ok(a.wrapping_add(b)),
                    BinOp::Sub => Ok(a.wrapping_sub(b)),
                    BinOp::Mul => Ok(a.wrapping_mul(b)),
                    BinOp::Div => {
                        if b == 0 {
                            Err(SimError::Evaluation("division by zero".into()))
                        } else {
                            Ok(a / b)
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            Err(SimError::Evaluation("modulo by zero".into()))
                        } else {
                            Ok(a % b)
                        }
                    }
                    BinOp::Lt => Ok((a < b) as i64),
                    BinOp::Le => Ok((a <= b) as i64),
                    BinOp::Gt => Ok((a > b) as i64),
                    BinOp::Ge => Ok((a >= b) as i64),
                    BinOp::Eq => Ok((a == b) as i64),
                    BinOp::Ne => Ok((a != b) as i64),
                    BinOp::And => Ok(((a != 0) && (b != 0)) as i64),
                    BinOp::Or => Ok(((a != 0) || (b != 0)) as i64),
                }
            }
        }
    }

    /// Evaluates a guard expression as a boolean.
    pub fn eval_guard(&self, expr: &Expr) -> Result<bool> {
        Ok(self.eval(expr)? != 0)
    }

    fn assign(&mut self, target: &LValue, value: i64) -> Result<()> {
        match target {
            LValue::Var(name) => {
                if self.arrays.contains_key(name) {
                    return Err(SimError::Evaluation(format!(
                        "cannot assign a scalar to array `{name}`"
                    )));
                }
                self.set(name, value);
                Ok(())
            }
            LValue::Index(name, index) => {
                let i = self.eval(index)?;
                self.array_set(name, i, value)
            }
        }
    }

    /// Stores `values` into the destination of a `READ_DATA`.
    fn store_read(&mut self, dest: &LValue, values: &[i64]) -> Result<()> {
        match dest {
            LValue::Var(name) if self.arrays.contains_key(name) => {
                let process = self.process.clone();
                let arr = self.arrays.get_mut(name).expect("checked above");
                if values.len() > arr.len() {
                    return Err(SimError::Evaluation(format!(
                        "read of {} items overflows array `{name}` in {process}",
                        values.len()
                    )));
                }
                arr[..values.len()].copy_from_slice(values);
                Ok(())
            }
            LValue::Var(name) => {
                // Scalar destination: keep the last value (items arrive in
                // order, the previous ones are overwritten).
                if let Some(last) = values.last() {
                    self.set(name, *last);
                }
                Ok(())
            }
            LValue::Index(name, index) => {
                let i = self.eval(index)?;
                if let Some(last) = values.last() {
                    self.array_set(name, i, *last)?;
                }
                Ok(())
            }
        }
    }

    /// Produces the `nitems` values sent by a `WRITE_DATA`.
    fn load_write(&self, src: &Expr, nitems: u32) -> Result<Vec<i64>> {
        if let Expr::Var(name) = src {
            if let Some(arr) = self.arrays.get(name) {
                if (nitems as usize) <= arr.len() {
                    return Ok(arr[..nitems as usize].to_vec());
                }
                return Err(SimError::Evaluation(format!(
                    "write of {nitems} items exceeds array `{name}`"
                )));
            }
        }
        let value = self.eval(src)?;
        Ok(vec![value; nitems as usize])
    }

    /// Executes a straight-line statement list, performing port operations
    /// through `io` and accumulating execution counters.
    ///
    /// # Errors
    /// Propagates evaluation and I/O errors; loops are bounded by an
    /// internal iteration cap.
    pub fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        io: &mut dyn ChannelIo,
        counters: &mut ExecCounters,
    ) -> Result<()> {
        for stmt in stmts {
            self.exec_stmt(stmt, io, counters)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        io: &mut dyn ChannelIo,
        counters: &mut ExecCounters,
    ) -> Result<()> {
        match stmt {
            Stmt::Decl { names } => {
                for (name, size) in names {
                    match size {
                        Some(s) => {
                            self.arrays
                                .entry(name.clone())
                                .or_insert(vec![0; *s as usize]);
                        }
                        None => {
                            self.scalars.entry(name.clone()).or_insert(0);
                        }
                    }
                }
                Ok(())
            }
            Stmt::Nop => Ok(()),
            Stmt::Assign { target, value } => {
                counters.statements += 1;
                let v = self.eval(value)?;
                self.assign(target, v)
            }
            Stmt::Expr(e) => {
                counters.statements += 1;
                self.eval(e)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                counters.conditions += 1;
                if self.eval_guard(cond)? {
                    self.exec_stmts(then_branch, io, counters)
                } else {
                    self.exec_stmts(else_branch, io, counters)
                }
            }
            Stmt::While { cond, body } => {
                let mut iterations = 0u64;
                loop {
                    counters.conditions += 1;
                    if !self.eval_guard(cond)? {
                        return Ok(());
                    }
                    self.exec_stmts(body, io, counters)?;
                    iterations += 1;
                    if iterations > MAX_LOOP_ITERATIONS {
                        return Err(SimError::StepBudgetExhausted(MAX_LOOP_ITERATIONS));
                    }
                }
            }
            Stmt::Port(op) => self.exec_port_op(op, io, counters),
            Stmt::Select { .. } => Err(SimError::Evaluation(
                "SELECT must be resolved by the scheduler, not executed inline".into(),
            )),
        }
    }

    fn exec_port_op(
        &mut self,
        op: &PortOp,
        io: &mut dyn ChannelIo,
        counters: &mut ExecCounters,
    ) -> Result<()> {
        counters.port_ops += 1;
        counters.port_items += op.nitems() as u64;
        let process = self.process.clone();
        match op {
            PortOp::Read { port, dest, nitems } => {
                let values = io.read_port(&process, port, *nitems)?;
                self.store_read(dest, &values)
            }
            PortOp::Write { port, src, nitems } => {
                let values = self.load_write(src, *nitems)?;
                io.write_port(&process, port, &values)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_flowc::parse_process;

    /// A ChannelIo backed by simple per-port queues, for tests.
    #[derive(Default)]
    struct TestIo {
        queues: BTreeMap<String, Vec<i64>>,
        written: BTreeMap<String, Vec<i64>>,
    }

    impl ChannelIo for TestIo {
        fn read_port(&mut self, _process: &str, port: &str, n: u32) -> Result<Vec<i64>> {
            let q = self.queues.entry(port.to_string()).or_default();
            if q.len() < n as usize {
                return Err(SimError::Evaluation(format!("no data on {port}")));
            }
            Ok(q.drain(..n as usize).collect())
        }

        fn write_port(&mut self, _process: &str, port: &str, values: &[i64]) -> Result<()> {
            self.written
                .entry(port.to_string())
                .or_default()
                .extend_from_slice(values);
            Ok(())
        }
    }

    #[test]
    fn arithmetic_and_guards() {
        let env = ProcessEnv::new("p", &[("x".into(), None)]);
        let p = parse_process("PROCESS p () { int x; x = (3 + 4) * 2 % 5; }").unwrap();
        let Stmt::Assign { value, .. } = &p.body[1] else {
            panic!()
        };
        assert_eq!(env.eval(value).unwrap(), 4);
        let guard = Expr::binary(BinOp::Lt, Expr::Var("x".into()), Expr::Int(1));
        assert!(env.eval_guard(&guard).unwrap());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let env = ProcessEnv::new("p", &[]);
        let e = Expr::binary(BinOp::Div, Expr::Int(1), Expr::Int(0));
        assert!(env.eval(&e).is_err());
        let e = Expr::binary(BinOp::Mod, Expr::Int(1), Expr::Int(0));
        assert!(env.eval(&e).is_err());
    }

    #[test]
    fn executes_divisors_body_fragment() {
        // Execute the divisors computation for n = 12 and check the values
        // written to `all` and `max`.
        let p = parse_process(qss_flowc::examples::DIVISORS).unwrap();
        let Stmt::While { body, .. } = &p.body[1] else {
            panic!()
        };
        let mut env = ProcessEnv::new("divisors", &[("n".into(), None), ("i".into(), None)]);
        let mut io = TestIo::default();
        io.queues.insert("in".into(), vec![12]);
        let mut counters = ExecCounters::default();
        env.exec_stmts(body, &mut io, &mut counters).unwrap();
        assert_eq!(io.written["max"], vec![6]);
        assert_eq!(io.written["all"], vec![6, 4, 3, 2, 1]);
        assert!(counters.statements > 0);
        assert!(counters.conditions > 0);
        assert_eq!(counters.port_ops, 1 + 1 + 5);
    }

    #[test]
    fn array_reads_and_writes() {
        let mut env = ProcessEnv::new("p", &[("buf".into(), Some(4)), ("x".into(), None)]);
        let mut io = TestIo::default();
        io.queues.insert("in".into(), vec![1, 2, 3, 4]);
        let read = Stmt::Port(PortOp::Read {
            port: "in".into(),
            dest: LValue::Var("buf".into()),
            nitems: 4,
        });
        let write = Stmt::Port(PortOp::Write {
            port: "out".into(),
            src: Expr::Var("buf".into()),
            nitems: 4,
        });
        let mut counters = ExecCounters::default();
        env.exec_stmts(&[read, write], &mut io, &mut counters)
            .unwrap();
        assert_eq!(io.written["out"], vec![1, 2, 3, 4]);
        assert_eq!(env.array("buf").unwrap(), &[1, 2, 3, 4]);
        assert_eq!(counters.port_items, 8);
    }

    #[test]
    fn scalar_write_replicates_value() {
        let mut env = ProcessEnv::new("p", &[("v".into(), None)]);
        env.set("v", 9);
        let values = env.load_write(&Expr::Var("v".into()), 3).unwrap();
        assert_eq!(values, vec![9, 9, 9]);
    }

    #[test]
    fn out_of_bounds_index_is_an_error() {
        let mut env = ProcessEnv::new("p", &[("buf".into(), Some(2))]);
        assert!(env.array_set("buf", 5, 1).is_err());
        assert!(env.array_get("buf", 5).is_err());
        assert!(env.array_get("nope", 0).is_err());
    }

    #[test]
    fn select_cannot_be_executed_inline() {
        let mut env = ProcessEnv::new("p", &[]);
        let mut io = TestIo::default();
        let mut counters = ExecCounters::default();
        let select = Stmt::Select {
            ports: vec![("a".into(), 1)],
            arms: vec![],
        };
        assert!(env.exec_stmts(&[select], &mut io, &mut counters).is_err());
    }
}
